"""High-frequency trading analytics over an untrusted cloud.

The paper's motivating scenario (Section 1): a trading firm outsources
price data to cloud servers "to test trading strategies, run time
series analysis, assess risks ... while collecting financial data
daily", but the prices are sensitive — the cloud must index and filter
them without ever learning them.

This example builds a day of synthetic tick data, outsources the price
column encrypted (with ambiguity on — counterfeit prices muddy any
adversary's view), and runs a realistic analyst session:

* price-band screens (which ticks traded inside a band?),
* a zooming drill-down (repeatedly narrowing the band — adaptive
  indexing's best case: only the hot band gets indexed),
* end-of-day ingestion of a late batch of ticks via the update path.

Timestamps and volumes stay on a plaintext table side by side: the
select runs on the encrypted price column, then tuple reconstruction
fetches the other attributes by position — the column-store flow of
Section 2.2.

Run:  python examples/hft_trading.py
"""

import time

import numpy as np

from repro import OutsourcedDatabase
from repro.store.table import Table


def make_tick_data(count, seed=0):
    """A synthetic day of ticks: a price random walk plus volumes."""
    rng = np.random.default_rng(seed)
    steps = rng.integers(-50, 51, size=count)
    prices = 1_000_000 + np.cumsum(steps)  # fixed-point cents * 100
    volumes = rng.integers(1, 1000, size=count)
    timestamps = np.arange(count) * 250  # one tick per 250ms
    return prices.astype(np.int64), volumes.astype(np.int64), timestamps


def main():
    ticks = 20000
    prices, volumes, timestamps = make_tick_data(ticks, seed=3)
    side_table = Table({"volume": volumes, "timestamp": timestamps})

    print("outsourcing %d encrypted prices (ambiguity on)..." % ticks)
    tick = time.perf_counter()
    db = OutsourcedDatabase(prices, ambiguity=True, seed=99)
    print("  done in %.1fs — server holds %d physical rows, knows no price"
          % (time.perf_counter() - tick, 2 * ticks))

    print("\n--- price-band screens ---")
    bands = [
        (int(prices.min()), int(np.percentile(prices, 10))),
        (int(np.percentile(prices, 45)), int(np.percentile(prices, 55))),
        (int(np.percentile(prices, 90)), int(prices.max())),
    ]
    for low, high in bands:
        tick = time.perf_counter()
        result = db.query(low, high)
        elapsed = time.perf_counter() - tick
        rows = side_table.fetch(result.logical_ids, ["volume"])
        print(
            "  band [%d, %d]: %d ticks, %d shares traded "
            "(%.3fs, %d counterfeits dropped)"
            % (low, high, len(result.values), int(rows["volume"].sum()),
               elapsed, result.false_positives)
        )
        expected = np.flatnonzero((prices >= low) & (prices <= high))
        assert np.array_equal(np.sort(result.logical_ids), expected)

    print("\n--- zooming drill-down around the median ---")
    center = int(np.median(prices))
    half_width = (int(prices.max()) - int(prices.min())) // 2
    while half_width > 100:
        tick = time.perf_counter()
        result = db.query(center - half_width, center + half_width)
        print(
            "  +/-%6d: %5d ticks in %.4fs"
            % (half_width, len(result.values), time.perf_counter() - tick)
        )
        half_width //= 4
    print("  index refined only around the queried band: %d crack bounds"
          % len(db.server.engine.tree))

    print("\n--- late batch ingestion ---")
    late_prices = [int(prices[-1]) + delta for delta in (-30, 5, 42)]
    for price in late_prices:
        db.insert(price)
    check_low, check_high = min(late_prices) - 1, max(late_prices) + 1
    before_merge = db.query(check_low, check_high)
    db.merge()
    after_merge = db.query(check_low, check_high)
    assert set(late_prices) <= set(before_merge.values.tolist())
    assert set(late_prices) <= set(after_merge.values.tolist())
    print("  3 late ticks visible before the merge and after it; "
          "index invariants hold:")
    db.server.engine.check_invariants()
    print("  OK")

    fpr = np.mean([r.false_positive_rate for r in db.client_stats])
    print("\nsession false-positive rate (counterfeit shield): %.0f%%"
          % (100 * fpr))


if __name__ == "__main__":
    main()
