"""Operating an encrypted multi-column table in the cloud, end to end.

A portfolio table with three sensitive numeric attributes — position
size, cost basis, and unrealised PnL — outsourced column-at-a-time,
every column encrypted (with counterfeit ambiguity) and independently
crackable.  The session walks through the operational lifecycle a real
deployment needs beyond single queries:

1. selection on one attribute + positional *tuple reconstruction* of
   the others (the column-store flow of Section 2.2, over ciphertexts);
2. a server restart: snapshot the cracked state, restore it, and show
   the index survives (no re-cracking of known bounds);
3. key rotation after a suspected leak: re-encrypt everything under a
   fresh key in one round, index restarts clean by design.

Run:  python examples/portfolio_table.py
"""

import time

import numpy as np

from repro import OutsourcedDatabase
from repro.core.encrypted_table import OutsourcedTable
from repro.core.persistence import restore_server, snapshot_server


def make_portfolio(count, seed=0):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(100, 100_000, count)
    basis = rng.integers(1_000, 500_000, count)
    pnl = rng.integers(-50_000, 80_000, count)
    return {
        "position_size": sizes.astype(np.int64),
        "cost_basis": basis.astype(np.int64),
        "pnl": pnl.astype(np.int64),
    }


def main():
    rows = 3000
    columns = make_portfolio(rows, seed=11)

    print("=== outsourcing a %d-row, 3-column portfolio (ambiguity on) ==="
          % rows)
    tick = time.perf_counter()
    table = OutsourcedTable(columns, ambiguity=True, seed=21)
    print("encrypted 3 x %d values in %.1fs" % (rows, time.perf_counter() - tick))

    print("\n--- which losing positions are large? ---")
    losers = table.select("pnl", -50_000, -10_000)
    sizes = table.fetch("position_size", losers.logical_ids)
    big_losers = losers.logical_ids[sizes > 50_000]
    print("positions with pnl in [-50k, -10k]: %d; of these, %d are >50k units"
          % (len(losers.logical_ids), len(big_losers)))
    expected = np.flatnonzero(
        (columns["pnl"] >= -50_000) & (columns["pnl"] <= -10_000)
    )
    assert np.array_equal(np.sort(losers.logical_ids), expected)
    assert np.array_equal(sizes, columns["position_size"][losers.logical_ids])
    print("verified against plaintext; round trips so far:",
          table.round_trips)
    print("pnl column crack bounds: %d; cost_basis column untouched: %d"
          % (len(table.server.engine("pnl").tree),
             len(table.server.engine("cost_basis").tree)))

    print("\n=== server restart: snapshot -> restore ===")
    db = OutsourcedDatabase(columns["pnl"], seed=31)
    for low in (-40_000, -10_000, 20_000, 50_000):
        db.query(low, low + 15_000)
    cracks_before = len(db.server.engine.tree)
    snapshot = snapshot_server(db.server)
    restored = restore_server(snapshot)
    print("snapshot carries %d rows + %d crack bounds"
          % (len(snapshot["rows"]), len(snapshot["tree"])))
    restored.execute(db.client.make_query(-40_000, -25_000))
    print("restored server answered a known range with %d new cracks "
          "(index survived the restart)"
          % restored.stats_log[-1].cracks)
    assert len(restored.engine.tree) == cracks_before

    print("\n=== key rotation after a suspected plaintext leak ===")
    before = sorted(db.query(-(10 ** 8), 10 ** 8).values.tolist())
    old_key = db.client.key
    tick = time.perf_counter()
    db.rotate_key(new_seed=77)
    print("re-encrypted %d rows under a fresh key in %.1fs"
          % (len(before), time.perf_counter() - tick))
    after = sorted(db.query(-(10 ** 8), 10 ** 8).values.tolist())
    assert before == after
    assert db.client.key != old_key
    print("data intact, old-key ciphertexts now worthless, index rebuilt "
          "from zero (%d bounds)" % len(db.server.engine.tree))


if __name__ == "__main__":
    main()
