"""Security audit: run the paper's own attacks against the scheme.

Section 3.5 of the paper sketches what an honest-but-curious adversary
can do; this example executes every sketch and measures where the
scheme holds and where it bends:

1. *Known-ciphertext attack on the noise layer* — strip the matrix
   layer (simulated breach) and recover the secret payload positions
   in C(l, 2) hypotheses.  The paper: "the noise layer of our scheme
   is easy to break"; confirmed.
2. *Known-plaintext attack on values* — leaked (value, Ev) pairs yield
   a decryption functional after O(l) pairs.  The paper: security
   "strongly depends on the chosen ciphertext size l"; confirmed, and
   quantified per l.
3. *Known-plaintext attack on bounds* — leaked (bound, Eb) pairs break
   in a CONSTANT ~3 pairs at any l, because bound noise spans a single
   direction.  Stronger than the paper's sketch; a finding of this
   reproduction.
4. *Order leakage by structure* — watch the resolved-order fraction
   climb as cracking refines the index (Section 4.1), and see the
   ambiguity layer keep logical order uncertain (Section 4.2).

Run:  python examples/security_audit.py
"""

import random

from repro.analysis.leakage import resolved_order_fraction
from repro.bench.figures import ablation_leakage
from repro.crypto.attacks import (
    BoundRecoveryAttack,
    ValueRecoveryAttack,
    pairs_needed_to_break,
    recover_payload_positions,
)
from repro.crypto.key import generate_key
from repro.crypto.scheme import Encryptor


def audit_noise_layer(length, seed=0):
    key = generate_key(length, seed=seed)
    encryptor = Encryptor(key, seed=seed + 1)
    rng = random.Random(seed)
    observations = [
        (
            encryptor.bound_pre_image(
                encryptor.encrypt_bound(rng.randrange(2 ** 31))
            ),
            encryptor.pre_image(
                encryptor.encrypt_value(rng.randrange(2 ** 31))
            )[0],
        )
        for _ in range(6)
    ]
    result = recover_payload_positions(observations)
    recovered = result.unique and set(result.consistent_hypotheses[0]) == set(
        key.payload_positions
    )
    return result.hypotheses_tested, recovered


def audit_known_plaintext(length, seed=0):
    key = generate_key(length, seed=seed)
    encryptor = Encryptor(key, seed=seed + 1)
    rng = random.Random(seed + 2)

    value_holdout = [
        (v, encryptor.encrypt_value(v))
        for v in (rng.randrange(2 ** 31) for _ in range(15))
    ]
    value_pairs = pairs_needed_to_break(
        ValueRecoveryAttack(),
        ((v, encryptor.encrypt_value(v))
         for v in iter(lambda: rng.randrange(2 ** 31), None)),
        value_holdout,
        limit=4 * length + 8,
    )
    bound_holdout = [
        (b, encryptor.encrypt_bound(b))
        for b in (rng.randrange(2 ** 31) for _ in range(15))
    ]
    bound_pairs = pairs_needed_to_break(
        BoundRecoveryAttack(),
        ((b, encryptor.encrypt_bound(b))
         for b in iter(lambda: rng.randrange(2 ** 31), None)),
        bound_holdout,
        limit=12,
    )
    return value_pairs, bound_pairs


def main():
    print("=" * 64)
    print("1. Known-ciphertext attack on the noise layer (Section 3.5)")
    print("=" * 64)
    for length in (4, 8, 16):
        hypotheses, recovered = audit_noise_layer(length)
        print(
            "  l=%2d: tested C(l,2)=%3d hypotheses -> payload positions "
            "recovered: %s" % (length, hypotheses, recovered)
        )
    print("  => without the matrix layer the scheme falls in polynomial "
          "time, as the paper states.")

    print()
    print("=" * 64)
    print("2-3. Known-plaintext attacks (Section 3.5)")
    print("=" * 64)
    print("  %-6s %-28s %-28s" % ("l", "value pairs to break (O(l))",
                                  "bound pairs to break (const!)"))
    for length in (4, 6, 8, 12):
        value_pairs, bound_pairs = audit_known_plaintext(length)
        print("  %-6d %-28s %-28s" % (length, value_pairs, bound_pairs))
    print("  => value security grows with l (pick l generously);")
    print("     bound ciphertexts leak after ~3 known pairs at ANY l —")
    print("     never let query bounds leak alongside their plaintexts.")

    print()
    print("=" * 64)
    print("4. Order leakage by structure (Sections 4.1-4.2)")
    print("=" * 64)
    series = ablation_leakage(size=800, query_count=200,
                              checkpoints=(1, 10, 50, 200), seed=0)
    print("  %-8s %-22s %-22s %-22s" % (
        "queries", "resolved (encrypted)", "resolved (ambig.phys)",
        "resolved (ambig.logical)"))
    for i, (count, frac) in enumerate(series["encrypted_physical"]):
        amb_phys = series["ambiguous_physical"][i][1]
        amb_log = series["ambiguous_logical"][i][1]
        print("  %-8d %-22.3f %-22.3f %-22.3f" % (count, frac, amb_phys, amb_log))
    print("  => structure leaks order as the index refines; ambiguity")
    print("     keeps logical pair order strictly less certain.")
    print("  (An OPES column leaks fraction %.1f before any query runs.)"
          % resolved_order_fraction(list(range(801)), 800))


if __name__ == "__main__":
    main()
