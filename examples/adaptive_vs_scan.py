"""Adaptive secure indexing vs SecureScan: watch the crossover.

The paper's headline result (Figures 6-7): a secure scan pays the full
column cost on every query forever, while secure cracking pays heavily
for the first few queries and then almost nothing — so cumulative cost
curves cross, and from there cracking wins by a growing margin.

This example replays the same workload through both engines, prints
the cumulative race, finds the crossover query, and then shows the
skewed-workload effect: when queries concentrate on a hot range, the
adaptive index only ever builds itself there ("only those data which
are queried get indexed").

Run:  python examples/adaptive_vs_scan.py
"""

import time

import numpy as np

from repro.bench.harness import build_session
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import random_workload, skewed_workload

SIZE = 15000
DOMAIN = (0, 2 ** 31)
QUERIES = 150


def replay(session, queries):
    seconds = []
    for query in queries:
        tick = time.perf_counter()
        session.query(*query.as_args())
        seconds.append(time.perf_counter() - tick)
    return np.cumsum(seconds)


def main():
    values = unique_uniform(SIZE, DOMAIN, seed=1)
    queries = random_workload(QUERIES, DOMAIN, selectivity=0.01, seed=2)

    print("building both engines over %d encrypted rows..." % SIZE)
    cracking = build_session(values, "encrypted", seed=3)
    scanning = build_session(values, "securescan", seed=3)

    print("replaying %d random 1%%-selectivity queries through each...\n"
          % QUERIES)
    crack_cumulative = replay(cracking, queries)
    scan_cumulative = replay(scanning, queries)

    print("%-8s %-22s %-22s" % ("query", "cracking cumulative s",
                                "securescan cumulative s"))
    for i in (0, 1, 4, 9, 24, 49, 99, QUERIES - 1):
        print("%-8d %-22.3f %-22.3f"
              % (i + 1, crack_cumulative[i], scan_cumulative[i]))

    crossover = int(np.argmax(crack_cumulative < scan_cumulative))
    if crack_cumulative[crossover] < scan_cumulative[crossover]:
        print("\ncracking overtakes SecureScan at query %d" % (crossover + 1))
    else:
        print("\nno crossover within %d queries (increase QUERIES)" % QUERIES)
    print("final margin: cracking %.2fs vs scan %.2fs (%.1fx)"
          % (crack_cumulative[-1], scan_cumulative[-1],
             scan_cumulative[-1] / crack_cumulative[-1]))

    print("\n--- hot-range workload: the index follows the queries ---")
    hot = build_session(values, "encrypted", seed=4)
    hot_queries = skewed_workload(
        100, DOMAIN, selectivity=0.01, hot_fraction=0.05,
        hot_probability=0.95, seed=5,
    )
    replay(hot, hot_queries)
    boundaries = hot.server.engine.piece_boundaries()
    hot_cutoff = int(SIZE * 0.15)
    dense = sum(1 for b in boundaries if b <= hot_cutoff)
    print("crack bounds landing in the first 15%% of the column: %d of %d"
          % (dense, len(boundaries)))
    print("the cold 85%% of the data stays in a handful of coarse pieces —")
    print("unqueried data remains unindexed AND its order unrevealed.")


if __name__ == "__main__":
    main()
