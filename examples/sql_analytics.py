"""SQL analytics over encrypted tables — the MONOMI-style split.

The paper cites CryptDB/MONOMI as the systems that run SQL over
encrypted data with a client/server planner split (Section 2.1); this
example shows the reproduction's analytical layer doing the same over
the adaptive secure index:

* a conjunctive SELECT subset parsed and planned client-side — the
  client knows the plaintext bounds, so it can pick the most selective
  predicate to drive the (encrypted, cracking) server select;
* residual predicates filtered at the client on positionally fetched
  attributes — the server never learns which residual predicate a
  candidate row failed;
* the same statements run unchanged over a plaintext table, for
  cross-checking.

Run:  python examples/sql_analytics.py
"""

import time

import numpy as np

from repro.core.encrypted_table import OutsourcedTable
from repro.sql import Catalog, execute_sql
from repro.store.table import Table


def make_orders(count, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "amount": rng.integers(1, 10_000, count).astype(np.int64),
        "discount": rng.integers(0, 50, count).astype(np.int64),
        "region": rng.integers(1, 9, count).astype(np.int64),
    }


STATEMENTS = [
    "SELECT amount FROM orders WHERE amount BETWEEN 9000 AND 10000",
    "SELECT amount, discount FROM orders "
    "WHERE amount >= 5000 AND discount > 40",
    "SELECT * FROM orders WHERE region = 3 AND amount < 500",
    "SELECT amount FROM orders WHERE 100 <= amount < 200 LIMIT 5",
    "SELECT amount FROM orders WHERE amount > 9999 AND amount < 2",
]


def main():
    rows = 4000
    columns = make_orders(rows, seed=13)

    plain_catalog = Catalog({"orders": Table(columns)})
    print("encrypting a %d-row, 3-column orders table..." % rows)
    tick = time.perf_counter()
    encrypted_table = OutsourcedTable(columns, seed=17)
    encrypted_catalog = Catalog({"orders": encrypted_table})
    print("  done in %.1fs\n" % (time.perf_counter() - tick))

    for statement in STATEMENTS:
        print("SQL> %s" % statement)
        tick = time.perf_counter()
        encrypted_out = execute_sql(encrypted_catalog, statement)
        elapsed = time.perf_counter() - tick
        plain_out = execute_sql(plain_catalog, statement)
        assert sorted(encrypted_out["logical_ids"].tolist()) == sorted(
            plain_out["logical_ids"].tolist()
        ), "encrypted and plaintext executions disagree!"
        print("  -> %d rows in %.3fs (verified against plaintext)"
              % (len(encrypted_out["logical_ids"]), elapsed))
        sample = {
            name: values[:3].tolist()
            for name, values in encrypted_out.items()
            if name != "logical_ids"
        }
        print("     sample: %s\n" % sample)

    print("the planner drives each query through the most selective")
    print("predicate's column; cracked so far:")
    for name in encrypted_table.column_names:
        print("  %-10s %3d crack bounds"
              % (name, len(encrypted_table.server.engine(name).tree)))
    print("round trips for the whole session: %d"
          % encrypted_table.round_trips)


if __name__ == "__main__":
    main()
