"""Quickstart: outsource a column, query it, never reveal it.

The five-minute tour of the system from the paper *Adaptive Indexing
over Encrypted Numeric Data* (SIGMOD 2016):

1. a trusted client encrypts a numeric column and ships it to an
   (honest-but-curious) server;
2. range and point queries are answered by the server over ciphertexts
   only — scalar-product sign tests stand in for comparisons;
3. as a side effect of each query the server *cracks* the encrypted
   column and refines an encrypted AVL index: the more you query, the
   faster it gets, with zero upfront indexing;
4. with the ambiguity layer on, every value also plants a counterfeit
   interpretation, so even the index structure leaves an adversary
   guessing — the client silently discards the ~50% fakes.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import OutsourcedDatabase
from repro.workloads.datasets import unique_uniform


def main():
    print("=== 1. Outsource a column ===")
    values = unique_uniform(20000, domain=(0, 2 ** 31), seed=7)
    tick = time.perf_counter()
    db = OutsourcedDatabase(values, seed=42)
    print(
        "encrypted and uploaded %d values in %.2fs (key size l = %d)"
        % (len(values), time.perf_counter() - tick, db.client.key.length)
    )

    print("\n=== 2. Range queries over ciphertexts ===")
    low, high = 10 ** 8, 10 ** 8 + 2 * 10 ** 7
    result = db.query(low, high)
    print(
        "SELECT * WHERE %d <= A <= %d  ->  %d rows, one round trip"
        % (low, high, len(result.values))
    )
    reference = np.sort(values[(values >= low) & (values <= high)])
    assert np.array_equal(np.sort(result.values), reference)
    print("results verified against the plaintext reference")

    print("\n=== 3. The index builds itself as you query ===")
    per_query = []
    for i in range(30):
        start = int(values[i]) - 10 ** 6
        tick = time.perf_counter()
        db.query(start, start + 2 * 10 ** 6)
        per_query.append(time.perf_counter() - tick)
    print("first query   : %.4fs  (cracked the whole column)" % per_query[0])
    print("30th query    : %.4fs  (only touches small pieces)" % per_query[-1])
    print("tree now holds %d encrypted crack bounds" % len(db.server.engine.tree))

    print("\n=== 4. Updates ===")
    new_id = db.insert(123456789)
    found = db.query(123456780, 123456790)
    print("inserted one value; range query sees it:", 123456789 in found.values)
    db.delete(new_id)
    db.merge()
    print("deleted and merged; gone again:",
          123456789 not in db.query(123456780, 123456790).values)

    print("\n=== 5. Ambiguity: counterfeit interpretations ===")
    amb = OutsourcedDatabase(values[:5000], ambiguity=True, seed=42)
    result = amb.query(low, high)
    print(
        "server returned %d rows; %d were counterfeits the client dropped "
        "(false-positive rate %.0f%%)"
        % (result.returned_rows, result.false_positives,
           100 * result.false_positive_rate)
    )
    print("\nDone.  See examples/hft_trading.py and "
          "examples/security_audit.py for deeper scenarios.")


if __name__ == "__main__":
    main()
