"""Server-side endpoint: a catalog of named encrypted columns.

One :class:`ColumnCatalog` is the whole server side of a deployment:
it hosts many named columns — one
:class:`~repro.core.server.SecureServer` engine each — behind a single
dispatch entry point, so multiple sessions (and the SQL executor's
multi-column tables) address columns by name through the same wire
protocol.  This mirrors the service-layer routing of Enc2DB and the
client/enclave split of HardIDX (PAPERS.md): the trust boundary is a
message interface, not a Python reference.

Dispatch is the only door: a request envelope dict goes in, a response
envelope dict comes out, and every server-side failure — unknown
column, malformed payload, engine error — leaves as a versioned
:class:`~repro.net.protocol.ErrorResponse` rather than an exception,
so one bad client cannot take down a serving thread.

Columns are independently locked: concurrent sessions on different
columns proceed in parallel and never interleave engine state, while
requests against one column serialize (cracking mutates the column).
A ``batch_request`` whose sub-requests target *distinct* columns is
executed concurrently on a small per-catalog pool (sub-requests for
the same column keep their slot order) — the server half of the
scatter-gather fan-out that :class:`~repro.net.shard.ShardedRemoteColumn`
performs on the client side.

The catalog also records *shard metadata*: a column created with a
``shard`` descriptor (``{"of": logical, "index": i, "count": n,
"physical_per_value": p}``) is one slice of a logical sharded column.
The catalog validates that sibling shards agree on the geometry and
exposes the registry to persistence so snapshots restore the logical
grouping.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.query import EncryptedQuery
from repro.core.server import SecureServer
from repro.errors import (
    PersistenceError,
    ProtocolError,
    QueryError,
    ReadOnlyError,
    ReproError,
    RotationConflictError,
    UpdateError,
)
from repro.net.protocol import (
    CODECS,
    CONFIG_DEFAULTS,
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    CreateColumnRequest,
    CreateColumnResponse,
    DeleteRequest,
    DeleteResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    HelloRequest,
    HelloResponse,
    InsertRequest,
    InsertResponse,
    MergeRequest,
    MergeResponse,
    QueryRequest,
    QueryResponse,
    ReplicateAckRequest,
    ReplicateAckResponse,
    ReplicateEntriesRequest,
    ReplicateEntriesResponse,
    ReplicateSubscribeRequest,
    ReplicateSubscribeResponse,
    RotateApplyRequest,
    RotateApplyResponse,
    RotateBeginRequest,
    RotateBeginResponse,
    TelemetryRequest,
    TelemetryResponse,
    error_response_for,
    request_from_dict,
    request_to_dict,
    response_to_dict,
    trace_from_wire,
)
from repro.obs import Observability, SlowQueryLog, Span
from repro.obs.telemetry import (
    DEFAULT_SLOW_QUERY_CAPACITY,
    DEFAULT_SLOW_QUERY_THRESHOLD,
)

#: Cap on entries per ``replicate_entries`` reply: bounds frame size
#: regardless of what limit the replica asks for.
MAX_REPLICATION_BATCH = 256

#: Request envelopes that mutate catalog state — the kinds a read
#: replica refuses and the WAL journals.
_MUTATION_REQUESTS = (
    CreateColumnRequest,
    InsertRequest,
    DeleteRequest,
    MergeRequest,
    RotateBeginRequest,
    RotateApplyRequest,
)


def _request_kind_name(request) -> str:
    """The wire ``kind`` of a request envelope, for error messages."""
    from repro.net.protocol import _REQUEST_KINDS

    return _REQUEST_KINDS.get(type(request), type(request).__name__)


class ColumnCatalog:
    """Hosts named encrypted columns behind one dispatch entry point.

    Args:
        obs: shared observability bundle; every hosted engine reports
            into it (one registry per endpoint).  A private bundle is
            created when omitted.
        batch_workers: size of the pool that executes multi-column
            batches concurrently.  The pool is created lazily on the
            first batch that actually spans columns, so plain loopback
            sessions never spawn a thread; ``<= 1`` disables parallel
            batches entirely.
        slow_query_threshold: dispatches taking at least this many
            seconds land in the slow-query ring (served over
            ``telemetry_request``); ``0.0`` records every dispatch.
        slow_query_capacity: slow-query ring size.
    """

    def __init__(self, obs: Observability = None, batch_workers: int = 8,
                 slow_query_threshold: float = DEFAULT_SLOW_QUERY_THRESHOLD,
                 slow_query_capacity: int = DEFAULT_SLOW_QUERY_CAPACITY,
                 ) -> None:
        self._obs = obs if obs is not None else Observability()
        self._slow_log = SlowQueryLog(
            threshold=slow_query_threshold, capacity=slow_query_capacity
        )
        # Extra telemetry sections (name -> zero-arg callable returning
        # a JSON-compatible payload); the TCP server registers "pool".
        self._telemetry_providers: Dict[str, Callable[[], Any]] = {}
        self._registry_lock = threading.Lock()
        self._servers: Dict[str, SecureServer] = {}
        self._configs: Dict[str, Dict[str, Any]] = {}
        self._locks: Dict[str, threading.Lock] = {}
        # Per-column mutation epoch: bumped by every state-changing
        # request (insert/delete/merge/rotate_apply/restore).  The
        # rotation fence compares it against the epoch snapshotted at
        # ``rotate_begin`` so a rebuild can never erase concurrent
        # writes.
        self._epochs: Dict[str, int] = {}
        # Logical sharded columns: logical name -> {"count", \
        # "physical_per_value", "columns": [shard column names]}.
        self._shards: Dict[str, Dict[str, Any]] = {}
        self._batch_workers = max(0, int(batch_workers))
        self._pool_lock = threading.Lock()
        self._batch_pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Durability/replication plumbing (all optional; see bind_wal /
        # set_read_only).  ``_replaying`` marks the current thread as
        # applying already-logged entries, which bypasses both the WAL
        # append and the read-only refusal.
        self._wal = None
        self._wal_checkpoint: Optional[Callable[[], int]] = None
        self._checkpoint_segments = 0
        self._checkpoint_lock = threading.Lock()
        self._read_only_primary: Optional[str] = None
        self._replaying = threading.local()
        # Replica progress reported through replicate_ack:
        # replica_id -> {"seq", "epochs", "lag_epochs"}.
        self._replicas: Dict[str, Dict[str, Any]] = {}

    @property
    def obs(self) -> Observability:
        """The endpoint-wide observability bundle."""
        return self._obs

    @property
    def column_names(self) -> List[str]:
        """Names of all hosted columns."""
        with self._registry_lock:
            return sorted(self._servers)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._servers)

    # -- column registry ---------------------------------------------------------

    def create_column(
        self,
        name: str,
        rows: Sequence,
        row_ids: Optional[Sequence[int]] = None,
        config: Dict[str, Any] = None,
        shard: Dict[str, Any] = None,
    ) -> SecureServer:
        """Create a named column from uploaded ciphertext rows.

        ``config`` takes the :class:`SecureServer` engine knobs (see
        :data:`~repro.net.protocol.CONFIG_DEFAULTS`); the catalog keeps
        it so key rotation can rebuild the engine with every knob
        intact.  ``shard`` optionally declares this column one slice of
        a logical sharded column (see :meth:`register_shard`).

        Raises:
            UpdateError: empty name, duplicate column, or inconsistent
                shard metadata.
        """
        if not name:
            raise UpdateError("column name must be non-empty")
        merged = dict(CONFIG_DEFAULTS)
        merged.update(config or {})
        unknown = set(merged) - set(CONFIG_DEFAULTS)
        if unknown:
            raise UpdateError(
                "unknown column config keys: %s" % ", ".join(sorted(unknown))
            )
        if shard is not None:
            self._check_shard(shard)
        server = SecureServer(list(rows), row_ids, obs=self._obs, **merged)
        with self._registry_lock:
            if name in self._servers:
                raise UpdateError("column %r already exists" % name)
            self._servers[name] = server
            self._configs[name] = merged
            self._locks[name] = threading.Lock()
            self._epochs[name] = 0
        self._obs.metrics.add("net.columns_created")
        if shard is not None:
            try:
                self.register_shard(name, shard)
            except UpdateError:
                # Shard registration is part of creation: a geometry
                # mismatch must not leave a half-registered column.
                self._forget_column(name)
                raise
        return server

    def adopt_column(
        self,
        name: str,
        server: SecureServer,
        config: Dict[str, Any],
        shard: Dict[str, Any] = None,
        epoch: int = 0,
    ) -> None:
        """Install an already-built server under a name (restore path).

        ``epoch`` restores the column's mutation epoch from a snapshot,
        so WAL replay can fence out entries the snapshot already
        contains (and rotation fences survive a restart).
        """
        if not name:
            raise UpdateError("column name must be non-empty")
        if shard is not None:
            self._check_shard(shard)
        with self._registry_lock:
            if name in self._servers:
                raise UpdateError("column %r already exists" % name)
            self._servers[name] = server
            self._configs[name] = dict(config)
            self._locks[name] = threading.Lock()
            self._epochs[name] = max(0, int(epoch))
        if shard is not None:
            try:
                self.register_shard(name, shard)
            except UpdateError:
                self._forget_column(name)
                raise

    def _forget_column(self, name: str) -> None:
        """Undo a registry insert whose shard registration failed."""
        with self._registry_lock:
            self._servers.pop(name, None)
            self._configs.pop(name, None)
            self._locks.pop(name, None)
            self._epochs.pop(name, None)

    @staticmethod
    def _check_shard(shard: Dict[str, Any]) -> None:
        """Validate one shard descriptor's shape before any state changes."""
        if not isinstance(shard, dict):
            raise UpdateError("shard metadata must be a dict")
        logical = shard.get("of")
        if not isinstance(logical, str) or not logical:
            raise UpdateError("shard 'of' must be a non-empty string")
        count = shard.get("count")
        index = shard.get("index")
        per_value = shard.get("physical_per_value", 1)
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise UpdateError("shard 'count' must be a positive int")
        if (not isinstance(index, int) or isinstance(index, bool)
                or not 0 <= index < count):
            raise UpdateError(
                "shard 'index' must be an int in [0, %r)" % count
            )
        if per_value not in (1, 2):
            raise UpdateError("shard 'physical_per_value' must be 1 or 2")

    def register_shard(self, name: str, shard: Dict[str, Any]) -> None:
        """Record ``name`` as one slice of the logical column
        ``shard["of"]``, checking the descriptor against any siblings
        already registered.

        Raises:
            UpdateError: geometry mismatch with a sibling shard, or a
                slot already taken.
        """
        self._check_shard(shard)
        logical = shard["of"]
        count = shard["count"]
        index = shard["index"]
        per_value = shard.get("physical_per_value", 1)
        with self._registry_lock:
            entry = self._shards.get(logical)
            if entry is None:
                entry = self._shards[logical] = {
                    "count": count,
                    "physical_per_value": per_value,
                    "columns": [None] * count,
                }
            if entry["count"] != count:
                raise UpdateError(
                    "shard count mismatch for %r: %d registered, %d offered"
                    % (logical, entry["count"], count)
                )
            if entry["physical_per_value"] != per_value:
                raise UpdateError(
                    "shard physical_per_value mismatch for %r" % logical
                )
            if entry["columns"][index] is not None:
                raise UpdateError(
                    "shard %d of %r already registered as %r"
                    % (index, logical, entry["columns"][index])
                )
            entry["columns"][index] = name
            total = sum(
                1
                for meta in self._shards.values()
                for column in meta["columns"]
                if column is not None
            )
        self._obs.metrics.set("catalog.shards", total)

    def shards(self) -> Dict[str, Dict[str, Any]]:
        """Copy of the shard registry: logical name -> geometry +
        ordered shard column names (``None`` for unregistered slots)."""
        with self._registry_lock:
            return {
                logical: {
                    "count": meta["count"],
                    "physical_per_value": meta["physical_per_value"],
                    "columns": list(meta["columns"]),
                }
                for logical, meta in self._shards.items()
            }

    def server(self, name: str) -> SecureServer:
        """The engine behind one column.

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            try:
                return self._servers[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def replace_server(self, name: str, server: SecureServer) -> None:
        """Swap the engine behind an *existing* column in place.

        The snapshot-restore path: the column keeps its name, config,
        and lock; only the engine state changes.

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            if name not in self._servers:
                raise QueryError("unknown column: %r" % name)
            self._servers[name] = server
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def config(self, name: str) -> Dict[str, Any]:
        """The create-time engine configuration of one column."""
        with self._registry_lock:
            try:
                return dict(self._configs[name])
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def _column_lock(self, name: str) -> threading.Lock:
        with self._registry_lock:
            try:
                return self._locks[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def epoch(self, name: str) -> int:
        """The column's current mutation epoch (rotation-fence token).

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            try:
                return self._epochs[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def _bump_epoch(self, name: str) -> int:
        with self._registry_lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            return self._epochs[name]

    def epochs(self) -> Dict[str, int]:
        """Every column's current mutation epoch (the replication
        watermark a replica reports and a client routes reads by)."""
        with self._registry_lock:
            return dict(self._epochs)

    @contextmanager
    def quiesced(self):
        """Hold every column lock (in sorted name order) for the body.

        No mutation can commit while held, so the catalog state plus
        the WAL head form a consistent cut — the checkpoint and
        replica-subscribe snapshots are taken here.  Workers only ever
        hold one column lock at a time and never this context, so the
        sorted acquisition order cannot deadlock.
        """
        with self._registry_lock:
            locks = [self._locks[name] for name in sorted(self._locks)]
        for lock in locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(locks):
                lock.release()

    # -- durability / replication ------------------------------------------------

    def bind_wal(self, writer, checkpoint: Callable[[], int] = None,
                 checkpoint_segments: int = 0) -> None:
        """Journal every mutation this catalog commits to ``writer``.

        From this point each insert/delete/merge/rotate_apply appends
        its wire envelope to the WAL *under the column lock, before the
        response is returned*: an acknowledged mutation is always in
        the log (per the writer's fsync policy), an unacknowledged one
        may be lost on a crash.  Binding also exports the
        ``replication`` telemetry section and enables serving the
        ``replicate_*`` envelopes.

        ``checkpoint`` (usually
        :func:`repro.core.persistence.checkpoint_catalog` curried with
        the data directory) is invoked opportunistically at the end of
        a dispatch once the log exceeds ``checkpoint_segments`` segment
        files; ``0`` disables auto-checkpointing.
        """
        self._wal = writer
        if writer is not None and writer.metrics is None:
            writer.metrics = self.obs.metrics
        self._wal_checkpoint = checkpoint
        self._checkpoint_segments = max(0, int(checkpoint_segments))
        self.register_telemetry_provider(
            "replication", self._replication_telemetry
        )

    @property
    def wal(self):
        """The bound :class:`~repro.core.wal.WalWriter` (or ``None``)."""
        return self._wal

    def set_read_only(self, primary: str) -> None:
        """Turn this catalog into a read replica of ``primary``.

        Queries, fetches, hello, telemetry, and batches thereof keep
        working; every mutation is refused with a typed ``read_only``
        error naming the primary.  The replication apply path
        (:meth:`apply_wal_entry`) bypasses the refusal.
        """
        self._read_only_primary = str(primary)

    @property
    def read_only_primary(self) -> Optional[str]:
        """The primary this catalog replicates (``None`` on a primary)."""
        return self._read_only_primary

    def _is_replaying(self) -> bool:
        return getattr(self._replaying, "active", False)

    def _log_mutation(self, column: str, epoch: int, request) -> None:
        """Append one committed mutation's envelope to the WAL.

        Called under the column's lock (so per-column log order equals
        epoch order) and skipped while replaying — replayed entries are
        already in the log (restart) or belong to the primary's log
        (replica).
        """
        wal = self._wal
        if wal is None or self._is_replaying():
            return
        wal.append(column, int(epoch), request_to_dict(request))

    def apply_wal_entry(self, entry: Dict[str, Any]) -> bool:
        """Apply one logged mutation if the column hasn't seen it yet.

        The per-column epoch is the idempotence fence: an entry at or
        below the column's current epoch is already reflected (it was
        in the snapshot) and is skipped; the successor epoch applies;
        anything further ahead is a gap, i.e. corruption.  A
        ``create_column`` entry (epoch 0) is skipped when the column
        exists.  Returns ``True`` when the entry mutated state.

        Raises:
            PersistenceError: on a gap, an entry for an unknown column,
                or an entry that fails to apply.
        """
        column = entry["column"]
        epoch = entry["epoch"]
        try:
            request = request_from_dict(entry["request"])
        except ReproError as exc:
            raise PersistenceError(
                "WAL entry %d carries a malformed %r envelope: %s"
                % (entry["seq"], entry["request"].get("kind"), exc)
            ) from exc
        if isinstance(request, CreateColumnRequest):
            with self._registry_lock:
                if column in self._servers:
                    return False
            self._apply_replayed(request, entry)
            return True
        with self._registry_lock:
            current = self._epochs.get(column)
        if current is None:
            raise PersistenceError(
                "WAL entry %d mutates unknown column %r"
                % (entry["seq"], column)
            )
        if epoch <= current:
            return False
        if epoch != current + 1:
            raise PersistenceError(
                "WAL entry %d skips column %r from epoch %d to %d "
                "(missing entries)" % (entry["seq"], column, current, epoch)
            )
        self._apply_replayed(request, entry)
        return True

    def _apply_replayed(self, request, entry: Dict[str, Any]):
        """Execute an already-logged envelope, bypassing the read-only
        refusal and the WAL append."""
        self._replaying.active = True
        try:
            return self.handle(request)
        except ReproError as exc:
            raise PersistenceError(
                "WAL entry %d (%s on %r) failed to apply: %s"
                % (entry["seq"], entry["request"].get("kind"),
                   entry["column"], exc)
            ) from exc
        finally:
            self._replaying.active = False

    def _maybe_checkpoint(self) -> None:
        """Opportunistic snapshot-then-truncate at the end of a
        dispatch (the worker holds no locks here).  Non-blocking: if
        another worker is already checkpointing, skip."""
        wal = self._wal
        if (wal is None or self._wal_checkpoint is None
                or self._checkpoint_segments <= 0):
            return
        if wal.segment_count() <= self._checkpoint_segments:
            return
        if not self._checkpoint_lock.acquire(blocking=False):
            return
        try:
            self._wal_checkpoint()
            self._obs.metrics.add("wal.checkpoints")
        except ReproError:
            # A failed checkpoint must never fail the dispatch that
            # triggered it; the log simply keeps growing until one
            # succeeds (visible as wal.checkpoint_failures).
            self._obs.metrics.add("wal.checkpoint_failures")
        finally:
            self._checkpoint_lock.release()

    def _replication_telemetry(self) -> Dict[str, Any]:
        """The ``replication`` telemetry section (primary role)."""
        wal = self._wal
        with self._registry_lock:
            replicas = {
                replica_id: dict(info)
                for replica_id, info in self._replicas.items()
            }
        return {
            "role": "primary",
            "wal": wal.stats() if wal is not None else None,
            "epochs": self.epochs(),
            "replicas": replicas,
        }

    def reset_state_from(self, other: "ColumnCatalog") -> None:
        """Replace this catalog's entire column state with ``other``'s.

        The replica resubscribe path: when the primary's log no longer
        covers the replica's position, the replica restores a fresh
        snapshot into a throwaway catalog and swaps it in here.  Column
        locks are recreated (the snapshot's columns are new objects);
        an in-flight read still holding an old lock finishes against
        the old server object, which stays valid — it just returns the
        pre-reset data one last time.
        """
        with other._registry_lock:
            servers = dict(other._servers)
            configs = {name: dict(cfg) for name, cfg in other._configs.items()}
            epochs = dict(other._epochs)
            shards = {
                logical: {
                    "count": meta["count"],
                    "physical_per_value": meta["physical_per_value"],
                    "columns": list(meta["columns"]),
                }
                for logical, meta in other._shards.items()
            }
        with self._registry_lock:
            self._servers = servers
            self._configs = configs
            self._locks = {name: threading.Lock() for name in servers}
            self._epochs = epochs
            self._shards = shards

    def _require_wal(self):
        if self._wal is None:
            raise ProtocolError(
                "this endpoint does not replicate (no WAL bound)"
            )
        return self._wal

    def _serve_replicate_subscribe(
        self, request: ReplicateSubscribeRequest
    ) -> ReplicateSubscribeResponse:
        """A replica joins: consistent snapshot + the WAL head it cuts."""
        wal = self._require_wal()
        from repro.core.persistence import snapshot_catalog

        with self.quiesced():
            seq = wal.last_seq
            snapshot = snapshot_catalog(self, wal_seq=seq)
        with self._registry_lock:
            self._replicas.setdefault(
                request.replica_id,
                {"seq": seq, "epochs": {}, "lag_epochs": 0},
            )
        self._obs.metrics.add("replication.subscribes")
        return ReplicateSubscribeResponse(snapshot=snapshot, seq=seq)

    def _serve_replicate_entries(
        self, request: ReplicateEntriesRequest
    ) -> ReplicateEntriesResponse:
        """The catch-up poll: WAL entries after the replica's position."""
        wal = self._require_wal()
        from repro.core.wal import WalReader, wal_start_seq

        head = wal.last_seq
        after = max(0, int(request.after_seq))
        if after > head:
            # The replica is ahead of this log: it subscribed to a
            # different incarnation of the primary.  Resubscribe.
            self._obs.metrics.add("replication.resets")
            return ReplicateEntriesResponse(entries=(), seq=head, reset=True)
        if after < head:
            start = wal_start_seq(wal.directory)
            if start is None or after + 1 < start:
                # The requested range was compacted away.
                self._obs.metrics.add("replication.resets")
                return ReplicateEntriesResponse(
                    entries=(), seq=head, reset=True
                )
        limit = request.limit
        if limit is None or limit <= 0 or limit > MAX_REPLICATION_BATCH:
            limit = MAX_REPLICATION_BATCH
        entries = tuple(WalReader(wal.directory).entries(after, limit=limit))
        self._obs.metrics.add("replication.entries_served", len(entries))
        return ReplicateEntriesResponse(entries=entries, seq=head)

    def _serve_replicate_ack(
        self, request: ReplicateAckRequest
    ) -> ReplicateAckResponse:
        """Record replica progress and publish its epoch lag."""
        self._require_wal()
        mine = self.epochs()
        lag = sum(
            max(0, epoch - int(request.epochs.get(name, 0)))
            for name, epoch in mine.items()
        )
        with self._registry_lock:
            self._replicas[request.replica_id] = {
                "seq": int(request.seq),
                "epochs": dict(request.epochs),
                "lag_epochs": lag,
            }
        self._obs.metrics.set(
            "replication.lag_epochs.%s" % request.replica_id, lag
        )
        return ReplicateAckResponse(lag_epochs=lag)

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """One request envelope dict in, one response envelope dict out.

        Never raises for malformed or failing requests: every error is
        returned as a typed :class:`ErrorResponse` envelope.  A
        ``batch_request`` envelope is unpacked here, at the dict level,
        so a malformed sub-request fails *its slot only* — the valid
        sub-requests around it still execute.

        ``net.requests`` counts *work units*: a batch adds one per
        sub-envelope it carries (its own envelope is counted by
        ``net.batches``), so request-rate metrics reflect actual load
        whether or not clients pipeline.

        An envelope carrying a ``trace`` field links this dispatch into
        the caller's distributed trace: the ``rpc-serve`` span adopts
        the remote ``rpc`` span as its parent (a malformed field
        degrades to an untraced dispatch, never an error).  Dispatches
        that cross the slow-query threshold are recorded in the
        endpoint's ring with their span breakdown.
        """
        metrics = self._obs.metrics
        kind = request_dict.get("kind") if isinstance(request_dict, dict) else None
        if kind == "batch_request":
            items = request_dict.get("requests")
            metrics.add(
                "net.requests", len(items) if isinstance(items, list) else 1
            )
        else:
            metrics.add("net.requests")
        remote = trace_from_wire(
            request_dict.get("trace") if isinstance(request_dict, dict)
            else None
        )
        started = time.perf_counter()
        with self._obs.span("rpc-serve", remote=remote, kind=kind) as span:
            if kind == "batch_request":
                response = self._serve_batch(request_dict)
            else:
                response = response_to_dict(self._serve_one(request_dict))
        elapsed = time.perf_counter() - started
        if elapsed >= self._slow_log.threshold:
            metrics.add("net.slow_queries")
            self._record_slow(request_dict, kind, elapsed, span)
        # Opportunistic snapshot-then-truncate: the dispatching worker
        # holds no locks here, so it can safely quiesce the catalog.
        self._maybe_checkpoint()
        return response

    def _record_slow(self, request_dict: Any, kind: Any, elapsed: float,
                     span: Any) -> None:
        """Append one over-threshold dispatch to the slow-query ring."""
        column = None
        extra: Dict[str, Any] = {}
        if isinstance(request_dict, dict):
            value = request_dict.get("column")
            if isinstance(value, str):
                column = value
            items = request_dict.get("requests")
            if kind == "batch_request" and isinstance(items, list):
                extra["slots"] = len(items)
        trace_id = None
        breakdown = None
        if isinstance(span, Span):
            trace_id = span.trace_id
            breakdown = self._obs.tracer.subtree_summary(span) or None
        self._slow_log.record(
            kind=str(kind),
            seconds=elapsed,
            column=column,
            trace_id=trace_id,
            breakdown=breakdown,
            **extra,
        )

    # -- telemetry ---------------------------------------------------------------

    @property
    def slow_query_log(self) -> SlowQueryLog:
        """The endpoint's bounded slow-dispatch ring."""
        return self._slow_log

    def register_telemetry_provider(
        self, name: str, provider: Callable[[], Any]
    ) -> None:
        """Export an extra telemetry section.

        ``provider`` is a zero-arg callable returning a JSON-compatible
        payload, invoked on every :meth:`telemetry` call that selects
        the section.  Registering the same name again replaces the
        provider (a restarted server front re-registers its pool).
        """
        with self._registry_lock:
            self._telemetry_providers[str(name)] = provider

    def telemetry(self, sections: Optional[Sequence[str]] = None
                  ) -> Dict[str, Any]:
        """The endpoint's live telemetry sections, JSON-compatible.

        Built-in sections: ``metrics`` (registry snapshot), ``tracer``
        (enabled flag, span count, per-name totals), ``slow_queries``
        (the ring snapshot), ``catalog`` (hosted columns and shard
        geometry).  Registered providers add more (the worker-pool
        server exports ``pool``).  ``sections=None`` serves all;
        unknown names are silently skipped so older servers stay
        compatible with newer clients.
        """
        tracer = self._obs.tracer
        available: Dict[str, Callable[[], Any]] = {
            "metrics": self._obs.metrics.snapshot,
            "tracer": lambda: {
                "enabled": tracer.enabled,
                "spans": len(tracer.spans),
                "summary": tracer.summary(),
            },
            "slow_queries": self._slow_log.snapshot,
            "catalog": lambda: {
                "columns": self.column_names,
                "shards": self.shards(),
                "batch_workers": self._batch_workers,
            },
        }
        with self._registry_lock:
            available.update(self._telemetry_providers)
        wanted = list(available) if sections is None else list(sections)
        return {
            name: available[name]() for name in wanted if name in available
        }

    def _serve_one(self, request_dict: Dict[str, Any]):
        """Decode and execute one envelope dict; errors become typed
        error envelopes, never exceptions."""
        metrics = self._obs.metrics
        try:
            return self.handle(request_from_dict(request_dict))
        except ReproError as exc:
            metrics.add("net.errors")
            return error_response_for(exc)
        except Exception as exc:  # defensive: a serving thread must survive
            metrics.add("net.errors")
            return ErrorResponse(
                code="internal",
                message="%s: %s" % (type(exc).__name__, exc),
            )

    def _serve_batch(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Execute every sub-envelope of a batch, isolating failures.

        Sub-requests targeting *distinct* columns run concurrently on
        the catalog's batch pool — each under its own per-column lock,
        so they never interleave with other sessions' traffic on those
        columns.  Sub-requests on the *same* column keep their slot
        order (a later sub-request observes every earlier one on that
        column), and the response array always matches request slots
        positionally.  Each failure is confined to its slot as an error
        envelope.
        """
        metrics = self._obs.metrics
        if request_dict.get("version") != PROTOCOL_VERSION:
            metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization",
                    message="unsupported protocol version: %r"
                    % (request_dict.get("version"),),
                )
            )
        items = request_dict.get("requests")
        if not isinstance(items, list):
            metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization",
                    message="batch requests must be a list",
                )
            )
        # Group slot indices by target column.  Slots without a usable
        # column string (malformed envelopes, create/hello) form
        # singleton groups: they carry no per-column ordering contract.
        groups: Dict[Any, List[int]] = {}
        for index, item in enumerate(items):
            column = item.get("column") if isinstance(item, dict) else None
            key = column if isinstance(column, str) else ("#slot", index)
            groups.setdefault(key, []).append(index)
        responses: List[Optional[Dict[str, Any]]] = [None] * len(items)
        # Export the enclosing rpc-serve span (dispatch opened it on
        # this thread) so slot spans running on pool threads still
        # parent to it — in-process context propagation across the
        # batch pool.  None when tracing is off.
        context = self._obs.tracer.wire_context()

        def serve_group(indices: List[int]) -> None:
            for index in indices:
                responses[index] = self._serve_slot(items[index], context)

        pool = self._batch_executor() if len(groups) > 1 else None
        if pool is None:
            for indices in groups.values():
                serve_group(indices)
        else:
            metrics.add("net.parallel_batches")
            # The dispatching thread serves the first group itself
            # rather than idling on futures: one fewer pool hand-off
            # per batch, and a saturated pool can never stall a batch
            # completely.
            group_list = list(groups.values())
            futures = [
                pool.submit(serve_group, indices)
                for indices in group_list[1:]
            ]
            serve_group(group_list[0])
            for future in futures:
                future.result()
        metrics.add("net.batches")
        metrics.observe("net.batch_size", len(items))
        return {
            "kind": "batch_response",
            "version": PROTOCOL_VERSION,
            "responses": responses,
        }

    def _serve_slot(self, item: Any,
                    context: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
        """Execute one batch slot (nested batches are rejected here).

        ``context`` is the enclosing ``rpc-serve`` span's exported
        trace context; the slot's ``rpc-serve-slot`` span adopts it so
        slots served on the batch pool stay inside the dispatch's
        subtree.  A slot envelope's own ``trace`` field (a client that
        tagged sub-envelopes individually) is the fallback.
        """
        if isinstance(item, dict) and item.get("kind") == "batch_request":
            self._obs.metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization", message="batch requests cannot nest"
                )
            )
        if context is None and isinstance(item, dict):
            context = trace_from_wire(item.get("trace"))
        kind = item.get("kind") if isinstance(item, dict) else None
        column = item.get("column") if isinstance(item, dict) else None
        with self._obs.span("rpc-serve-slot", remote=context, kind=kind,
                            column=column if isinstance(column, str) else None):
            return response_to_dict(self._serve_one(item))

    def _batch_executor(self) -> Optional[ThreadPoolExecutor]:
        """The lazily-created batch pool, or None when parallel batches
        are disabled (``batch_workers <= 1``) or the catalog is closed."""
        if self._batch_workers <= 1:
            return None
        with self._pool_lock:
            if self._closed:
                return None
            if self._batch_pool is None:
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=self._batch_workers,
                    thread_name_prefix="repro-batch",
                )
            return self._batch_pool

    def close(self) -> None:
        """Shut down the batch pool (idempotent).  The catalog keeps
        serving afterwards — batches just fall back to sequential."""
        with self._pool_lock:
            pool, self._batch_pool = self._batch_pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def handle(self, request):
        """Execute one decoded request envelope against its column.

        On a read replica (:meth:`set_read_only`) every mutation is
        refused with a typed :class:`~repro.errors.ReadOnlyError`
        naming the primary — including ``rotate_begin``, which merges
        pending state even though it is not itself journaled.  With a
        WAL bound (:meth:`bind_wal`), each committed mutation's
        envelope is appended under the column lock before the response
        is returned, and mutation responses carry the column's new
        epoch as a replica-read fence.
        """
        if isinstance(request, HelloRequest):
            return HelloResponse(codecs=CODECS)
        if isinstance(request, TelemetryRequest):
            return TelemetryResponse(sections=self.telemetry(request.sections))
        if isinstance(request, ReplicateSubscribeRequest):
            return self._serve_replicate_subscribe(request)
        if isinstance(request, ReplicateEntriesRequest):
            return self._serve_replicate_entries(request)
        if isinstance(request, ReplicateAckRequest):
            return self._serve_replicate_ack(request)
        primary = self._read_only_primary
        if (primary is not None and isinstance(request, _MUTATION_REQUESTS)
                and not self._is_replaying()):
            self._obs.metrics.add("replication.mutations_refused")
            raise ReadOnlyError(
                "this endpoint is a read replica; send %s to the primary "
                "at %s" % (_request_kind_name(request), primary)
            )
        if isinstance(request, BatchRequest):
            responses = []
            for sub in request.requests:
                try:
                    responses.append(self.handle(sub))
                except ReproError as exc:
                    responses.append(error_response_for(exc))
                except Exception as exc:  # same isolation as dispatch
                    responses.append(
                        ErrorResponse(
                            code="internal",
                            message="%s: %s" % (type(exc).__name__, exc),
                        )
                    )
            return BatchResponse(responses=tuple(responses))
        if isinstance(request, CreateColumnRequest):
            server = self.create_column(
                request.column,
                request.rows,
                request.row_ids,
                request.config,
                shard=request.shard,
            )
            # Logged outside the (brand-new) column lock: a mutation can
            # only race this append if its issuer learned the column
            # name before our response — i.e. out of band.
            self._log_mutation(request.column, 0, request)
            return CreateColumnResponse(
                column=request.column, rows_stored=len(server), epoch=0
            )
        lock = self._column_lock(request.column)
        with lock:
            server = self.server(request.column)
            if isinstance(request, QueryRequest):
                return QueryResponse(response=server.execute(request.query))
            if isinstance(request, FetchRequest):
                return FetchResponse(
                    rows=tuple(
                        server.engine.column.rows_by_ids(request.row_ids)
                    )
                )
            if isinstance(request, InsertRequest):
                row_ids = tuple(server.insert(list(request.rows)))
                epoch = self._bump_epoch(request.column)
                self._log_mutation(request.column, epoch, request)
                return InsertResponse(row_ids=row_ids, epoch=epoch)
            if isinstance(request, DeleteRequest):
                server.delete(request.row_ids)
                epoch = self._bump_epoch(request.column)
                self._log_mutation(request.column, epoch, request)
                return DeleteResponse(
                    deleted=len(request.row_ids), epoch=epoch
                )
            if isinstance(request, MergeRequest):
                delta = server.merge_pending()
                epoch = self._bump_epoch(request.column)
                self._log_mutation(request.column, epoch, request)
                return MergeResponse(delta=delta, epoch=epoch)
            if isinstance(request, RotateBeginRequest):
                # The merge below is part of the snapshot, so the fence
                # is read *after* it: only mutations arriving between
                # begin and apply can invalidate the token.
                server.merge_pending()
                everything = server.execute(EncryptedQuery(low=None, high=None))
                return RotateBeginResponse(
                    response=everything, fence=self.epoch(request.column)
                )
            if isinstance(request, RotateApplyRequest):
                current = self.epoch(request.column)
                if request.fence is not None and request.fence != current:
                    self._obs.metrics.add("net.rotation_conflicts")
                    raise RotationConflictError(
                        "column %r mutated since rotate_begin "
                        "(epoch %d, fence %d); restart the rotation"
                        % (request.column, current, request.fence)
                    )
                rebuilt = SecureServer(
                    list(request.rows),
                    list(request.row_ids),
                    obs=self._obs,
                    **self.config(request.column),
                )
                with self._registry_lock:
                    self._servers[request.column] = rebuilt
                    self._epochs[request.column] = current + 1
                self._log_mutation(request.column, current + 1, request)
                return RotateApplyResponse(
                    rows_stored=len(rebuilt), epoch=current + 1
                )
        raise ProtocolError(
            "unhandled request type: %s" % type(request).__name__
        )
