"""Server-side endpoint: a catalog of named encrypted columns.

One :class:`ColumnCatalog` is the whole server side of a deployment:
it hosts many named columns — one
:class:`~repro.core.server.SecureServer` engine each — behind a single
dispatch entry point, so multiple sessions (and the SQL executor's
multi-column tables) address columns by name through the same wire
protocol.  This mirrors the service-layer routing of Enc2DB and the
client/enclave split of HardIDX (PAPERS.md): the trust boundary is a
message interface, not a Python reference.

Dispatch is the only door: a request envelope dict goes in, a response
envelope dict comes out, and every server-side failure — unknown
column, malformed payload, engine error — leaves as a versioned
:class:`~repro.net.protocol.ErrorResponse` rather than an exception,
so one bad client cannot take down a serving thread.

Columns are independently locked: concurrent sessions on different
columns proceed in parallel and never interleave engine state, while
requests against one column serialize (cracking mutates the column).
A ``batch_request`` whose sub-requests target *distinct* columns is
executed concurrently on a small per-catalog pool (sub-requests for
the same column keep their slot order) — the server half of the
scatter-gather fan-out that :class:`~repro.net.shard.ShardedRemoteColumn`
performs on the client side.

The catalog also records *shard metadata*: a column created with a
``shard`` descriptor (``{"of": logical, "index": i, "count": n,
"physical_per_value": p}``) is one slice of a logical sharded column.
The catalog validates that sibling shards agree on the geometry and
exposes the registry to persistence so snapshots restore the logical
grouping.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.query import EncryptedQuery
from repro.core.server import SecureServer
from repro.errors import (
    ProtocolError,
    QueryError,
    ReproError,
    RotationConflictError,
    UpdateError,
)
from repro.net.protocol import (
    CODECS,
    CONFIG_DEFAULTS,
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    CreateColumnRequest,
    CreateColumnResponse,
    DeleteRequest,
    DeleteResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    HelloRequest,
    HelloResponse,
    InsertRequest,
    InsertResponse,
    MergeRequest,
    MergeResponse,
    QueryRequest,
    QueryResponse,
    RotateApplyRequest,
    RotateApplyResponse,
    RotateBeginRequest,
    RotateBeginResponse,
    TelemetryRequest,
    TelemetryResponse,
    error_response_for,
    request_from_dict,
    response_to_dict,
    trace_from_wire,
)
from repro.obs import Observability, SlowQueryLog, Span
from repro.obs.telemetry import (
    DEFAULT_SLOW_QUERY_CAPACITY,
    DEFAULT_SLOW_QUERY_THRESHOLD,
)


class ColumnCatalog:
    """Hosts named encrypted columns behind one dispatch entry point.

    Args:
        obs: shared observability bundle; every hosted engine reports
            into it (one registry per endpoint).  A private bundle is
            created when omitted.
        batch_workers: size of the pool that executes multi-column
            batches concurrently.  The pool is created lazily on the
            first batch that actually spans columns, so plain loopback
            sessions never spawn a thread; ``<= 1`` disables parallel
            batches entirely.
        slow_query_threshold: dispatches taking at least this many
            seconds land in the slow-query ring (served over
            ``telemetry_request``); ``0.0`` records every dispatch.
        slow_query_capacity: slow-query ring size.
    """

    def __init__(self, obs: Observability = None, batch_workers: int = 8,
                 slow_query_threshold: float = DEFAULT_SLOW_QUERY_THRESHOLD,
                 slow_query_capacity: int = DEFAULT_SLOW_QUERY_CAPACITY,
                 ) -> None:
        self._obs = obs if obs is not None else Observability()
        self._slow_log = SlowQueryLog(
            threshold=slow_query_threshold, capacity=slow_query_capacity
        )
        # Extra telemetry sections (name -> zero-arg callable returning
        # a JSON-compatible payload); the TCP server registers "pool".
        self._telemetry_providers: Dict[str, Callable[[], Any]] = {}
        self._registry_lock = threading.Lock()
        self._servers: Dict[str, SecureServer] = {}
        self._configs: Dict[str, Dict[str, Any]] = {}
        self._locks: Dict[str, threading.Lock] = {}
        # Per-column mutation epoch: bumped by every state-changing
        # request (insert/delete/merge/rotate_apply/restore).  The
        # rotation fence compares it against the epoch snapshotted at
        # ``rotate_begin`` so a rebuild can never erase concurrent
        # writes.
        self._epochs: Dict[str, int] = {}
        # Logical sharded columns: logical name -> {"count", \
        # "physical_per_value", "columns": [shard column names]}.
        self._shards: Dict[str, Dict[str, Any]] = {}
        self._batch_workers = max(0, int(batch_workers))
        self._pool_lock = threading.Lock()
        self._batch_pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    @property
    def obs(self) -> Observability:
        """The endpoint-wide observability bundle."""
        return self._obs

    @property
    def column_names(self) -> List[str]:
        """Names of all hosted columns."""
        with self._registry_lock:
            return sorted(self._servers)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._servers)

    # -- column registry ---------------------------------------------------------

    def create_column(
        self,
        name: str,
        rows: Sequence,
        row_ids: Optional[Sequence[int]] = None,
        config: Dict[str, Any] = None,
        shard: Dict[str, Any] = None,
    ) -> SecureServer:
        """Create a named column from uploaded ciphertext rows.

        ``config`` takes the :class:`SecureServer` engine knobs (see
        :data:`~repro.net.protocol.CONFIG_DEFAULTS`); the catalog keeps
        it so key rotation can rebuild the engine with every knob
        intact.  ``shard`` optionally declares this column one slice of
        a logical sharded column (see :meth:`register_shard`).

        Raises:
            UpdateError: empty name, duplicate column, or inconsistent
                shard metadata.
        """
        if not name:
            raise UpdateError("column name must be non-empty")
        merged = dict(CONFIG_DEFAULTS)
        merged.update(config or {})
        unknown = set(merged) - set(CONFIG_DEFAULTS)
        if unknown:
            raise UpdateError(
                "unknown column config keys: %s" % ", ".join(sorted(unknown))
            )
        if shard is not None:
            self._check_shard(shard)
        server = SecureServer(list(rows), row_ids, obs=self._obs, **merged)
        with self._registry_lock:
            if name in self._servers:
                raise UpdateError("column %r already exists" % name)
            self._servers[name] = server
            self._configs[name] = merged
            self._locks[name] = threading.Lock()
            self._epochs[name] = 0
        self._obs.metrics.add("net.columns_created")
        if shard is not None:
            try:
                self.register_shard(name, shard)
            except UpdateError:
                # Shard registration is part of creation: a geometry
                # mismatch must not leave a half-registered column.
                self._forget_column(name)
                raise
        return server

    def adopt_column(
        self,
        name: str,
        server: SecureServer,
        config: Dict[str, Any],
        shard: Dict[str, Any] = None,
    ) -> None:
        """Install an already-built server under a name (restore path)."""
        if not name:
            raise UpdateError("column name must be non-empty")
        if shard is not None:
            self._check_shard(shard)
        with self._registry_lock:
            if name in self._servers:
                raise UpdateError("column %r already exists" % name)
            self._servers[name] = server
            self._configs[name] = dict(config)
            self._locks[name] = threading.Lock()
            self._epochs[name] = 0
        if shard is not None:
            try:
                self.register_shard(name, shard)
            except UpdateError:
                self._forget_column(name)
                raise

    def _forget_column(self, name: str) -> None:
        """Undo a registry insert whose shard registration failed."""
        with self._registry_lock:
            self._servers.pop(name, None)
            self._configs.pop(name, None)
            self._locks.pop(name, None)
            self._epochs.pop(name, None)

    @staticmethod
    def _check_shard(shard: Dict[str, Any]) -> None:
        """Validate one shard descriptor's shape before any state changes."""
        if not isinstance(shard, dict):
            raise UpdateError("shard metadata must be a dict")
        logical = shard.get("of")
        if not isinstance(logical, str) or not logical:
            raise UpdateError("shard 'of' must be a non-empty string")
        count = shard.get("count")
        index = shard.get("index")
        per_value = shard.get("physical_per_value", 1)
        if not isinstance(count, int) or isinstance(count, bool) or count < 1:
            raise UpdateError("shard 'count' must be a positive int")
        if (not isinstance(index, int) or isinstance(index, bool)
                or not 0 <= index < count):
            raise UpdateError(
                "shard 'index' must be an int in [0, %r)" % count
            )
        if per_value not in (1, 2):
            raise UpdateError("shard 'physical_per_value' must be 1 or 2")

    def register_shard(self, name: str, shard: Dict[str, Any]) -> None:
        """Record ``name`` as one slice of the logical column
        ``shard["of"]``, checking the descriptor against any siblings
        already registered.

        Raises:
            UpdateError: geometry mismatch with a sibling shard, or a
                slot already taken.
        """
        self._check_shard(shard)
        logical = shard["of"]
        count = shard["count"]
        index = shard["index"]
        per_value = shard.get("physical_per_value", 1)
        with self._registry_lock:
            entry = self._shards.get(logical)
            if entry is None:
                entry = self._shards[logical] = {
                    "count": count,
                    "physical_per_value": per_value,
                    "columns": [None] * count,
                }
            if entry["count"] != count:
                raise UpdateError(
                    "shard count mismatch for %r: %d registered, %d offered"
                    % (logical, entry["count"], count)
                )
            if entry["physical_per_value"] != per_value:
                raise UpdateError(
                    "shard physical_per_value mismatch for %r" % logical
                )
            if entry["columns"][index] is not None:
                raise UpdateError(
                    "shard %d of %r already registered as %r"
                    % (index, logical, entry["columns"][index])
                )
            entry["columns"][index] = name
            total = sum(
                1
                for meta in self._shards.values()
                for column in meta["columns"]
                if column is not None
            )
        self._obs.metrics.set("catalog.shards", total)

    def shards(self) -> Dict[str, Dict[str, Any]]:
        """Copy of the shard registry: logical name -> geometry +
        ordered shard column names (``None`` for unregistered slots)."""
        with self._registry_lock:
            return {
                logical: {
                    "count": meta["count"],
                    "physical_per_value": meta["physical_per_value"],
                    "columns": list(meta["columns"]),
                }
                for logical, meta in self._shards.items()
            }

    def server(self, name: str) -> SecureServer:
        """The engine behind one column.

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            try:
                return self._servers[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def replace_server(self, name: str, server: SecureServer) -> None:
        """Swap the engine behind an *existing* column in place.

        The snapshot-restore path: the column keeps its name, config,
        and lock; only the engine state changes.

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            if name not in self._servers:
                raise QueryError("unknown column: %r" % name)
            self._servers[name] = server
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def config(self, name: str) -> Dict[str, Any]:
        """The create-time engine configuration of one column."""
        with self._registry_lock:
            try:
                return dict(self._configs[name])
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def _column_lock(self, name: str) -> threading.Lock:
        with self._registry_lock:
            try:
                return self._locks[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def epoch(self, name: str) -> int:
        """The column's current mutation epoch (rotation-fence token).

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            try:
                return self._epochs[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def _bump_epoch(self, name: str) -> int:
        with self._registry_lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            return self._epochs[name]

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """One request envelope dict in, one response envelope dict out.

        Never raises for malformed or failing requests: every error is
        returned as a typed :class:`ErrorResponse` envelope.  A
        ``batch_request`` envelope is unpacked here, at the dict level,
        so a malformed sub-request fails *its slot only* — the valid
        sub-requests around it still execute.

        ``net.requests`` counts *work units*: a batch adds one per
        sub-envelope it carries (its own envelope is counted by
        ``net.batches``), so request-rate metrics reflect actual load
        whether or not clients pipeline.

        An envelope carrying a ``trace`` field links this dispatch into
        the caller's distributed trace: the ``rpc-serve`` span adopts
        the remote ``rpc`` span as its parent (a malformed field
        degrades to an untraced dispatch, never an error).  Dispatches
        that cross the slow-query threshold are recorded in the
        endpoint's ring with their span breakdown.
        """
        metrics = self._obs.metrics
        kind = request_dict.get("kind") if isinstance(request_dict, dict) else None
        if kind == "batch_request":
            items = request_dict.get("requests")
            metrics.add(
                "net.requests", len(items) if isinstance(items, list) else 1
            )
        else:
            metrics.add("net.requests")
        remote = trace_from_wire(
            request_dict.get("trace") if isinstance(request_dict, dict)
            else None
        )
        started = time.perf_counter()
        with self._obs.span("rpc-serve", remote=remote, kind=kind) as span:
            if kind == "batch_request":
                response = self._serve_batch(request_dict)
            else:
                response = response_to_dict(self._serve_one(request_dict))
        elapsed = time.perf_counter() - started
        if elapsed >= self._slow_log.threshold:
            metrics.add("net.slow_queries")
            self._record_slow(request_dict, kind, elapsed, span)
        return response

    def _record_slow(self, request_dict: Any, kind: Any, elapsed: float,
                     span: Any) -> None:
        """Append one over-threshold dispatch to the slow-query ring."""
        column = None
        extra: Dict[str, Any] = {}
        if isinstance(request_dict, dict):
            value = request_dict.get("column")
            if isinstance(value, str):
                column = value
            items = request_dict.get("requests")
            if kind == "batch_request" and isinstance(items, list):
                extra["slots"] = len(items)
        trace_id = None
        breakdown = None
        if isinstance(span, Span):
            trace_id = span.trace_id
            breakdown = self._obs.tracer.subtree_summary(span) or None
        self._slow_log.record(
            kind=str(kind),
            seconds=elapsed,
            column=column,
            trace_id=trace_id,
            breakdown=breakdown,
            **extra,
        )

    # -- telemetry ---------------------------------------------------------------

    @property
    def slow_query_log(self) -> SlowQueryLog:
        """The endpoint's bounded slow-dispatch ring."""
        return self._slow_log

    def register_telemetry_provider(
        self, name: str, provider: Callable[[], Any]
    ) -> None:
        """Export an extra telemetry section.

        ``provider`` is a zero-arg callable returning a JSON-compatible
        payload, invoked on every :meth:`telemetry` call that selects
        the section.  Registering the same name again replaces the
        provider (a restarted server front re-registers its pool).
        """
        with self._registry_lock:
            self._telemetry_providers[str(name)] = provider

    def telemetry(self, sections: Optional[Sequence[str]] = None
                  ) -> Dict[str, Any]:
        """The endpoint's live telemetry sections, JSON-compatible.

        Built-in sections: ``metrics`` (registry snapshot), ``tracer``
        (enabled flag, span count, per-name totals), ``slow_queries``
        (the ring snapshot), ``catalog`` (hosted columns and shard
        geometry).  Registered providers add more (the worker-pool
        server exports ``pool``).  ``sections=None`` serves all;
        unknown names are silently skipped so older servers stay
        compatible with newer clients.
        """
        tracer = self._obs.tracer
        available: Dict[str, Callable[[], Any]] = {
            "metrics": self._obs.metrics.snapshot,
            "tracer": lambda: {
                "enabled": tracer.enabled,
                "spans": len(tracer.spans),
                "summary": tracer.summary(),
            },
            "slow_queries": self._slow_log.snapshot,
            "catalog": lambda: {
                "columns": self.column_names,
                "shards": self.shards(),
                "batch_workers": self._batch_workers,
            },
        }
        with self._registry_lock:
            available.update(self._telemetry_providers)
        wanted = list(available) if sections is None else list(sections)
        return {
            name: available[name]() for name in wanted if name in available
        }

    def _serve_one(self, request_dict: Dict[str, Any]):
        """Decode and execute one envelope dict; errors become typed
        error envelopes, never exceptions."""
        metrics = self._obs.metrics
        try:
            return self.handle(request_from_dict(request_dict))
        except ReproError as exc:
            metrics.add("net.errors")
            return error_response_for(exc)
        except Exception as exc:  # defensive: a serving thread must survive
            metrics.add("net.errors")
            return ErrorResponse(
                code="internal",
                message="%s: %s" % (type(exc).__name__, exc),
            )

    def _serve_batch(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Execute every sub-envelope of a batch, isolating failures.

        Sub-requests targeting *distinct* columns run concurrently on
        the catalog's batch pool — each under its own per-column lock,
        so they never interleave with other sessions' traffic on those
        columns.  Sub-requests on the *same* column keep their slot
        order (a later sub-request observes every earlier one on that
        column), and the response array always matches request slots
        positionally.  Each failure is confined to its slot as an error
        envelope.
        """
        metrics = self._obs.metrics
        if request_dict.get("version") != PROTOCOL_VERSION:
            metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization",
                    message="unsupported protocol version: %r"
                    % (request_dict.get("version"),),
                )
            )
        items = request_dict.get("requests")
        if not isinstance(items, list):
            metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization",
                    message="batch requests must be a list",
                )
            )
        # Group slot indices by target column.  Slots without a usable
        # column string (malformed envelopes, create/hello) form
        # singleton groups: they carry no per-column ordering contract.
        groups: Dict[Any, List[int]] = {}
        for index, item in enumerate(items):
            column = item.get("column") if isinstance(item, dict) else None
            key = column if isinstance(column, str) else ("#slot", index)
            groups.setdefault(key, []).append(index)
        responses: List[Optional[Dict[str, Any]]] = [None] * len(items)
        # Export the enclosing rpc-serve span (dispatch opened it on
        # this thread) so slot spans running on pool threads still
        # parent to it — in-process context propagation across the
        # batch pool.  None when tracing is off.
        context = self._obs.tracer.wire_context()

        def serve_group(indices: List[int]) -> None:
            for index in indices:
                responses[index] = self._serve_slot(items[index], context)

        pool = self._batch_executor() if len(groups) > 1 else None
        if pool is None:
            for indices in groups.values():
                serve_group(indices)
        else:
            metrics.add("net.parallel_batches")
            # The dispatching thread serves the first group itself
            # rather than idling on futures: one fewer pool hand-off
            # per batch, and a saturated pool can never stall a batch
            # completely.
            group_list = list(groups.values())
            futures = [
                pool.submit(serve_group, indices)
                for indices in group_list[1:]
            ]
            serve_group(group_list[0])
            for future in futures:
                future.result()
        metrics.add("net.batches")
        metrics.observe("net.batch_size", len(items))
        return {
            "kind": "batch_response",
            "version": PROTOCOL_VERSION,
            "responses": responses,
        }

    def _serve_slot(self, item: Any,
                    context: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
        """Execute one batch slot (nested batches are rejected here).

        ``context`` is the enclosing ``rpc-serve`` span's exported
        trace context; the slot's ``rpc-serve-slot`` span adopts it so
        slots served on the batch pool stay inside the dispatch's
        subtree.  A slot envelope's own ``trace`` field (a client that
        tagged sub-envelopes individually) is the fallback.
        """
        if isinstance(item, dict) and item.get("kind") == "batch_request":
            self._obs.metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization", message="batch requests cannot nest"
                )
            )
        if context is None and isinstance(item, dict):
            context = trace_from_wire(item.get("trace"))
        kind = item.get("kind") if isinstance(item, dict) else None
        column = item.get("column") if isinstance(item, dict) else None
        with self._obs.span("rpc-serve-slot", remote=context, kind=kind,
                            column=column if isinstance(column, str) else None):
            return response_to_dict(self._serve_one(item))

    def _batch_executor(self) -> Optional[ThreadPoolExecutor]:
        """The lazily-created batch pool, or None when parallel batches
        are disabled (``batch_workers <= 1``) or the catalog is closed."""
        if self._batch_workers <= 1:
            return None
        with self._pool_lock:
            if self._closed:
                return None
            if self._batch_pool is None:
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=self._batch_workers,
                    thread_name_prefix="repro-batch",
                )
            return self._batch_pool

    def close(self) -> None:
        """Shut down the batch pool (idempotent).  The catalog keeps
        serving afterwards — batches just fall back to sequential."""
        with self._pool_lock:
            pool, self._batch_pool = self._batch_pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)

    def handle(self, request):
        """Execute one decoded request envelope against its column."""
        if isinstance(request, HelloRequest):
            return HelloResponse(codecs=CODECS)
        if isinstance(request, TelemetryRequest):
            return TelemetryResponse(sections=self.telemetry(request.sections))
        if isinstance(request, BatchRequest):
            responses = []
            for sub in request.requests:
                try:
                    responses.append(self.handle(sub))
                except ReproError as exc:
                    responses.append(error_response_for(exc))
                except Exception as exc:  # same isolation as dispatch
                    responses.append(
                        ErrorResponse(
                            code="internal",
                            message="%s: %s" % (type(exc).__name__, exc),
                        )
                    )
            return BatchResponse(responses=tuple(responses))
        if isinstance(request, CreateColumnRequest):
            server = self.create_column(
                request.column,
                request.rows,
                request.row_ids,
                request.config,
                shard=request.shard,
            )
            return CreateColumnResponse(
                column=request.column, rows_stored=len(server)
            )
        lock = self._column_lock(request.column)
        with lock:
            server = self.server(request.column)
            if isinstance(request, QueryRequest):
                return QueryResponse(response=server.execute(request.query))
            if isinstance(request, FetchRequest):
                return FetchResponse(
                    rows=tuple(
                        server.engine.column.rows_by_ids(request.row_ids)
                    )
                )
            if isinstance(request, InsertRequest):
                row_ids = tuple(server.insert(list(request.rows)))
                self._bump_epoch(request.column)
                return InsertResponse(row_ids=row_ids)
            if isinstance(request, DeleteRequest):
                server.delete(request.row_ids)
                self._bump_epoch(request.column)
                return DeleteResponse(deleted=len(request.row_ids))
            if isinstance(request, MergeRequest):
                delta = server.merge_pending()
                self._bump_epoch(request.column)
                return MergeResponse(delta=delta)
            if isinstance(request, RotateBeginRequest):
                # The merge below is part of the snapshot, so the fence
                # is read *after* it: only mutations arriving between
                # begin and apply can invalidate the token.
                server.merge_pending()
                everything = server.execute(EncryptedQuery(low=None, high=None))
                return RotateBeginResponse(
                    response=everything, fence=self.epoch(request.column)
                )
            if isinstance(request, RotateApplyRequest):
                current = self.epoch(request.column)
                if request.fence is not None and request.fence != current:
                    self._obs.metrics.add("net.rotation_conflicts")
                    raise RotationConflictError(
                        "column %r mutated since rotate_begin "
                        "(epoch %d, fence %d); restart the rotation"
                        % (request.column, current, request.fence)
                    )
                rebuilt = SecureServer(
                    list(request.rows),
                    list(request.row_ids),
                    obs=self._obs,
                    **self.config(request.column),
                )
                with self._registry_lock:
                    self._servers[request.column] = rebuilt
                    self._epochs[request.column] = current + 1
                return RotateApplyResponse(rows_stored=len(rebuilt))
        raise ProtocolError(
            "unhandled request type: %s" % type(request).__name__
        )
