"""Server-side endpoint: a catalog of named encrypted columns.

One :class:`ColumnCatalog` is the whole server side of a deployment:
it hosts many named columns — one
:class:`~repro.core.server.SecureServer` engine each — behind a single
dispatch entry point, so multiple sessions (and the SQL executor's
multi-column tables) address columns by name through the same wire
protocol.  This mirrors the service-layer routing of Enc2DB and the
client/enclave split of HardIDX (PAPERS.md): the trust boundary is a
message interface, not a Python reference.

Dispatch is the only door: a request envelope dict goes in, a response
envelope dict comes out, and every server-side failure — unknown
column, malformed payload, engine error — leaves as a versioned
:class:`~repro.net.protocol.ErrorResponse` rather than an exception,
so one bad client cannot take down a serving thread.

Columns are independently locked: concurrent sessions on different
columns proceed in parallel and never interleave engine state, while
requests against one column serialize (cracking mutates the column).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.core.query import EncryptedQuery
from repro.core.server import SecureServer
from repro.errors import (
    ProtocolError,
    QueryError,
    ReproError,
    RotationConflictError,
    UpdateError,
)
from repro.net.protocol import (
    CODECS,
    CONFIG_DEFAULTS,
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    CreateColumnRequest,
    CreateColumnResponse,
    DeleteRequest,
    DeleteResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    HelloRequest,
    HelloResponse,
    InsertRequest,
    InsertResponse,
    MergeRequest,
    MergeResponse,
    QueryRequest,
    QueryResponse,
    RotateApplyRequest,
    RotateApplyResponse,
    RotateBeginRequest,
    RotateBeginResponse,
    error_response_for,
    request_from_dict,
    response_to_dict,
)
from repro.obs import Observability


class ColumnCatalog:
    """Hosts named encrypted columns behind one dispatch entry point.

    Args:
        obs: shared observability bundle; every hosted engine reports
            into it (one registry per endpoint).  A private bundle is
            created when omitted.
    """

    def __init__(self, obs: Observability = None) -> None:
        self._obs = obs if obs is not None else Observability()
        self._registry_lock = threading.Lock()
        self._servers: Dict[str, SecureServer] = {}
        self._configs: Dict[str, Dict[str, Any]] = {}
        self._locks: Dict[str, threading.Lock] = {}
        # Per-column mutation epoch: bumped by every state-changing
        # request (insert/delete/merge/rotate_apply/restore).  The
        # rotation fence compares it against the epoch snapshotted at
        # ``rotate_begin`` so a rebuild can never erase concurrent
        # writes.
        self._epochs: Dict[str, int] = {}

    @property
    def obs(self) -> Observability:
        """The endpoint-wide observability bundle."""
        return self._obs

    @property
    def column_names(self) -> List[str]:
        """Names of all hosted columns."""
        with self._registry_lock:
            return sorted(self._servers)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._servers)

    # -- column registry ---------------------------------------------------------

    def create_column(
        self,
        name: str,
        rows: Sequence,
        row_ids: Optional[Sequence[int]] = None,
        config: Dict[str, Any] = None,
    ) -> SecureServer:
        """Create a named column from uploaded ciphertext rows.

        ``config`` takes the :class:`SecureServer` engine knobs (see
        :data:`~repro.net.protocol.CONFIG_DEFAULTS`); the catalog keeps
        it so key rotation can rebuild the engine with every knob
        intact.

        Raises:
            UpdateError: empty name or duplicate column.
        """
        if not name:
            raise UpdateError("column name must be non-empty")
        merged = dict(CONFIG_DEFAULTS)
        merged.update(config or {})
        unknown = set(merged) - set(CONFIG_DEFAULTS)
        if unknown:
            raise UpdateError(
                "unknown column config keys: %s" % ", ".join(sorted(unknown))
            )
        server = SecureServer(list(rows), row_ids, obs=self._obs, **merged)
        with self._registry_lock:
            if name in self._servers:
                raise UpdateError("column %r already exists" % name)
            self._servers[name] = server
            self._configs[name] = merged
            self._locks[name] = threading.Lock()
            self._epochs[name] = 0
        self._obs.metrics.add("net.columns_created")
        return server

    def adopt_column(
        self, name: str, server: SecureServer, config: Dict[str, Any]
    ) -> None:
        """Install an already-built server under a name (restore path)."""
        if not name:
            raise UpdateError("column name must be non-empty")
        with self._registry_lock:
            if name in self._servers:
                raise UpdateError("column %r already exists" % name)
            self._servers[name] = server
            self._configs[name] = dict(config)
            self._locks[name] = threading.Lock()
            self._epochs[name] = 0

    def server(self, name: str) -> SecureServer:
        """The engine behind one column.

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            try:
                return self._servers[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def replace_server(self, name: str, server: SecureServer) -> None:
        """Swap the engine behind an *existing* column in place.

        The snapshot-restore path: the column keeps its name, config,
        and lock; only the engine state changes.

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            if name not in self._servers:
                raise QueryError("unknown column: %r" % name)
            self._servers[name] = server
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def config(self, name: str) -> Dict[str, Any]:
        """The create-time engine configuration of one column."""
        with self._registry_lock:
            try:
                return dict(self._configs[name])
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def _column_lock(self, name: str) -> threading.Lock:
        with self._registry_lock:
            try:
                return self._locks[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def epoch(self, name: str) -> int:
        """The column's current mutation epoch (rotation-fence token).

        Raises:
            QueryError: for unknown names.
        """
        with self._registry_lock:
            try:
                return self._epochs[name]
            except KeyError:
                raise QueryError("unknown column: %r" % name) from None

    def _bump_epoch(self, name: str) -> int:
        with self._registry_lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            return self._epochs[name]

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """One request envelope dict in, one response envelope dict out.

        Never raises for malformed or failing requests: every error is
        returned as a typed :class:`ErrorResponse` envelope.  A
        ``batch_request`` envelope is unpacked here, at the dict level,
        so a malformed sub-request fails *its slot only* — the valid
        sub-requests around it still execute.
        """
        metrics = self._obs.metrics
        metrics.add("net.requests")
        kind = request_dict.get("kind") if isinstance(request_dict, dict) else None
        with self._obs.span("rpc-serve", kind=kind):
            if kind == "batch_request":
                return self._serve_batch(request_dict)
            return response_to_dict(self._serve_one(request_dict))

    def _serve_one(self, request_dict: Dict[str, Any]):
        """Decode and execute one envelope dict; errors become typed
        error envelopes, never exceptions."""
        metrics = self._obs.metrics
        try:
            return self.handle(request_from_dict(request_dict))
        except ReproError as exc:
            metrics.add("net.errors")
            return error_response_for(exc)
        except Exception as exc:  # defensive: a serving thread must survive
            metrics.add("net.errors")
            return ErrorResponse(
                code="internal",
                message="%s: %s" % (type(exc).__name__, exc),
            )

    def _serve_batch(self, request_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Execute every sub-envelope of a batch, isolating failures.

        Sub-requests run sequentially under their own per-column locks
        (two sub-requests on different columns still never interleave
        with other sessions' traffic on those columns); each failure is
        confined to its slot as an error envelope.
        """
        metrics = self._obs.metrics
        if request_dict.get("version") != PROTOCOL_VERSION:
            metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization",
                    message="unsupported protocol version: %r"
                    % (request_dict.get("version"),),
                )
            )
        items = request_dict.get("requests")
        if not isinstance(items, list):
            metrics.add("net.errors")
            return response_to_dict(
                ErrorResponse(
                    code="serialization",
                    message="batch requests must be a list",
                )
            )
        responses: List[Dict[str, Any]] = []
        for item in items:
            if isinstance(item, dict) and item.get("kind") == "batch_request":
                metrics.add("net.errors")
                response = ErrorResponse(
                    code="serialization", message="batch requests cannot nest"
                )
                responses.append(response_to_dict(response))
                continue
            responses.append(response_to_dict(self._serve_one(item)))
        metrics.add("net.batches")
        metrics.observe("net.batch_size", len(items))
        return {
            "kind": "batch_response",
            "version": PROTOCOL_VERSION,
            "responses": responses,
        }

    def handle(self, request):
        """Execute one decoded request envelope against its column."""
        if isinstance(request, HelloRequest):
            return HelloResponse(codecs=CODECS)
        if isinstance(request, BatchRequest):
            responses = []
            for sub in request.requests:
                try:
                    responses.append(self.handle(sub))
                except ReproError as exc:
                    responses.append(error_response_for(exc))
                except Exception as exc:  # same isolation as dispatch
                    responses.append(
                        ErrorResponse(
                            code="internal",
                            message="%s: %s" % (type(exc).__name__, exc),
                        )
                    )
            return BatchResponse(responses=tuple(responses))
        if isinstance(request, CreateColumnRequest):
            server = self.create_column(
                request.column, request.rows, request.row_ids, request.config
            )
            return CreateColumnResponse(
                column=request.column, rows_stored=len(server)
            )
        lock = self._column_lock(request.column)
        with lock:
            server = self.server(request.column)
            if isinstance(request, QueryRequest):
                return QueryResponse(response=server.execute(request.query))
            if isinstance(request, FetchRequest):
                return FetchResponse(
                    rows=tuple(
                        server.engine.column.rows_by_ids(request.row_ids)
                    )
                )
            if isinstance(request, InsertRequest):
                row_ids = tuple(server.insert(list(request.rows)))
                self._bump_epoch(request.column)
                return InsertResponse(row_ids=row_ids)
            if isinstance(request, DeleteRequest):
                server.delete(request.row_ids)
                self._bump_epoch(request.column)
                return DeleteResponse(deleted=len(request.row_ids))
            if isinstance(request, MergeRequest):
                delta = server.merge_pending()
                self._bump_epoch(request.column)
                return MergeResponse(delta=delta)
            if isinstance(request, RotateBeginRequest):
                # The merge below is part of the snapshot, so the fence
                # is read *after* it: only mutations arriving between
                # begin and apply can invalidate the token.
                server.merge_pending()
                everything = server.execute(EncryptedQuery(low=None, high=None))
                return RotateBeginResponse(
                    response=everything, fence=self.epoch(request.column)
                )
            if isinstance(request, RotateApplyRequest):
                current = self.epoch(request.column)
                if request.fence is not None and request.fence != current:
                    self._obs.metrics.add("net.rotation_conflicts")
                    raise RotationConflictError(
                        "column %r mutated since rotate_begin "
                        "(epoch %d, fence %d); restart the rotation"
                        % (request.column, current, request.fence)
                    )
                rebuilt = SecureServer(
                    list(request.rows),
                    list(request.row_ids),
                    obs=self._obs,
                    **self.config(request.column),
                )
                with self._registry_lock:
                    self._servers[request.column] = rebuilt
                    self._epochs[request.column] = current + 1
                return RotateApplyResponse(rows_stored=len(rebuilt))
        raise ProtocolError(
            "unhandled request type: %s" % type(request).__name__
        )
