"""Client-side column handle: typed calls over an opaque transport.

A :class:`RemoteColumn` is the only thing a session holds instead of a
server reference: it encodes each request envelope to a frame, pushes
the frame through its transport, decodes the response frame, and
re-raises typed error envelopes.  Because encoding happens here — on
the client side of the seam — the measured frame lengths are the real
transfer costs: ``net.bytes_sent`` / ``net.bytes_received`` count
every exchanged byte, and sessions read :attr:`last_sent_bytes` /
:attr:`last_received_bytes` to account workload traffic exactly.

Spans: ``transport-encode`` and ``transport-decode`` time the codec,
``rpc`` times the round trip itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.core.query import EncryptedQuery
from repro.core.server import ServerResponse
from repro.errors import ProtocolError
from repro.net.protocol import (
    CreateColumnRequest,
    CreateColumnResponse,
    DeleteRequest,
    DeleteResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    InsertRequest,
    InsertResponse,
    MergeRequest,
    MergeResponse,
    QueryRequest,
    QueryResponse,
    RotateApplyRequest,
    RotateApplyResponse,
    RotateBeginRequest,
    RotateBeginResponse,
    decode_frame,
    encode_frame,
    raise_error_response,
    request_to_dict,
    response_from_dict,
)
from repro.net.transport import Transport
from repro.obs import Observability


class RemoteColumn:
    """Typed protocol calls against one named column of an endpoint.

    Args:
        transport: the channel to the endpoint (loopback or TCP).
        column: the column name requests address.
        obs: observability bundle the ``net.*`` counters and
            transport spans report into.
    """

    def __init__(
        self, transport: Transport, column: str, obs: Observability = None
    ) -> None:
        self._transport = transport
        self.column = column
        self._obs = obs if obs is not None else Observability()
        metrics = self._obs.metrics
        self._net_sent = metrics.counter("net.bytes_sent")
        self._net_received = metrics.counter("net.bytes_received")
        self._net_round_trips = metrics.counter("net.round_trips")
        #: Frame lengths of the most recent exchange (request, response).
        self.last_sent_bytes = 0
        self.last_received_bytes = 0

    @property
    def transport(self) -> Transport:
        """The underlying transport (shared across columns)."""
        return self._transport

    def call(self, request):
        """One full round trip: encode, exchange, decode, raise errors."""
        kind = type(request).__name__
        with self._obs.span("transport-encode", kind=kind):
            frame = encode_frame(request_to_dict(request))
        with self._obs.span("rpc", kind=kind, column=self.column):
            reply = self._transport.exchange(frame)
        with self._obs.span("transport-decode", kind=kind):
            response = response_from_dict(decode_frame(reply))
        self.last_sent_bytes = len(frame)
        self.last_received_bytes = len(reply)
        self._net_sent.add(len(frame))
        self._net_received.add(len(reply))
        self._net_round_trips.add(1)
        if isinstance(response, ErrorResponse):
            raise_error_response(response)
        return response

    def _expect(self, response, expected_type):
        if not isinstance(response, expected_type):
            raise ProtocolError(
                "expected %s, got %s"
                % (expected_type.__name__, type(response).__name__)
            )
        return response

    # -- typed operations --------------------------------------------------------

    def create(
        self,
        rows: Sequence,
        row_ids: Sequence[int],
        config: Dict[str, Any] = None,
    ) -> int:
        """Upload the column; returns the stored physical row count."""
        response = self.call(
            CreateColumnRequest(
                column=self.column,
                rows=tuple(rows),
                row_ids=tuple(int(i) for i in row_ids),
                config=dict(config or {}),
            )
        )
        return self._expect(response, CreateColumnResponse).rows_stored

    def query(self, query: EncryptedQuery) -> ServerResponse:
        """Run one encrypted query; returns the qualifying rows."""
        response = self.call(QueryRequest(column=self.column, query=query))
        return self._expect(response, QueryResponse).response

    def fetch(self, row_ids: Sequence[int]) -> List:
        """Materialise rows by physical id (tuple reconstruction)."""
        response = self.call(
            FetchRequest(
                column=self.column, row_ids=tuple(int(i) for i in row_ids)
            )
        )
        return list(self._expect(response, FetchResponse).rows)

    def insert(self, rows: Sequence) -> List[int]:
        """Buffer new encrypted rows; returns their assigned ids."""
        response = self.call(
            InsertRequest(column=self.column, rows=tuple(rows))
        )
        return list(self._expect(response, InsertResponse).row_ids)

    def delete(self, row_ids: Sequence[int]) -> int:
        """Tombstone rows by physical id; returns the count processed."""
        response = self.call(
            DeleteRequest(
                column=self.column, row_ids=tuple(int(i) for i in row_ids)
            )
        )
        return self._expect(response, DeleteResponse).deleted

    def merge(self) -> int:
        """Merge the pending buffer; returns the row-count delta."""
        response = self.call(MergeRequest(column=self.column))
        return self._expect(response, MergeResponse).delta

    def rotate_begin(self) -> ServerResponse:
        """Merge pending state and fetch every live row for rotation."""
        response = self.call(RotateBeginRequest(column=self.column))
        return self._expect(response, RotateBeginResponse).response

    def rotate_apply(self, rows: Sequence, row_ids: Sequence[int]) -> int:
        """Replace the column with re-encrypted rows; returns the count."""
        response = self.call(
            RotateApplyRequest(
                column=self.column,
                rows=tuple(rows),
                row_ids=tuple(int(i) for i in row_ids),
            )
        )
        return self._expect(response, RotateApplyResponse).rows_stored

    def close(self) -> None:
        """Close the underlying transport."""
        self._transport.close()
