"""Client-side column handle: typed calls over an opaque transport.

A :class:`RemoteColumn` is the only thing a session holds instead of a
server reference: it encodes each request envelope to a frame, pushes
the frame through its transport, decodes the response frame, and
re-raises typed error envelopes.  Because encoding happens here — on
the client side of the seam — the measured frame lengths are the real
transfer costs: ``net.bytes_sent`` / ``net.bytes_received`` count
every exchanged byte, and sessions read :attr:`last_sent_bytes` /
:attr:`last_received_bytes` to account workload traffic exactly.

Spans: ``rpc`` wraps the whole operation (it is the unit of
distributed-trace propagation — its id rides the frame's ``trace``
field so the server's ``rpc-serve`` span can adopt it as parent), with
``transport-encode`` and ``transport-decode`` nested inside it timing
the codec.

Codec negotiation: with the default ``codec="auto"`` the handle's
first exchange is a JSON-framed ``hello`` listing the codecs this
client speaks; a server answering with ``binary`` upgrades every
subsequent frame to the compact :mod:`repro.net.binframe` codec, while
an old JSON-only peer (which answers hello with an error envelope)
leaves the handle on JSON.  The outcome is cached on the transport, so
many handles sharing one connection negotiate once — and the cache is
*cleared* when the transport closes (including after a mid-exchange
connection loss), so a reconnect renegotiates from JSON instead of
shipping binary frames to a peer that may no longer understand them.

Retry: idempotent request kinds (hello, query, fetch) are flagged
``retryable`` to the transport, which — when configured with
``retries > 0`` — re-sends them after a mid-exchange connection loss
with capped exponential backoff.  Mutating kinds (insert, delete,
merge, rotate) are never retried automatically: a lost response leaves
their server-side effect unknown.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.core.query import EncryptedQuery
from repro.core.server import ServerResponse
from repro.errors import (
    ProtocolError,
    ReproError,
    ServerBusyError,
    TransportError,
)
from repro.net.protocol import (
    CODECS,
    BatchRequest,
    BatchResponse,
    CreateColumnRequest,
    CreateColumnResponse,
    DeleteRequest,
    DeleteResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    HelloRequest,
    HelloResponse,
    InsertRequest,
    InsertResponse,
    MergeRequest,
    MergeResponse,
    QueryRequest,
    QueryResponse,
    ReplicateAckRequest,
    ReplicateAckResponse,
    ReplicateEntriesRequest,
    ReplicateEntriesResponse,
    ReplicateSubscribeRequest,
    ReplicateSubscribeResponse,
    RotateApplyRequest,
    RotateApplyResponse,
    RotateBeginRequest,
    RotateBeginResponse,
    TelemetryRequest,
    TelemetryResponse,
    attach_trace,
    decode_frame,
    encode_frame,
    raise_error_response,
    request_to_dict,
    response_from_dict,
)
from repro.net.transport import Transport
from repro.obs import Observability

#: Request kinds the transport may safely re-send after a connection
#: loss: they read state (or negotiate) without mutating it.  Insert,
#: delete, merge, and the rotation pair are deliberately absent — a
#: lost response leaves their effect unknown.
IDEMPOTENT_REQUESTS = (
    HelloRequest,
    QueryRequest,
    FetchRequest,
    TelemetryRequest,
    # Replication envelopes read WAL state (subscribe/entries) or
    # report progress the primary stores idempotently (ack).
    ReplicateSubscribeRequest,
    ReplicateEntriesRequest,
    ReplicateAckRequest,
)


class RemoteColumn:
    """Typed protocol calls against one named column of an endpoint.

    Args:
        transport: the channel to the endpoint (loopback or TCP).
        column: the column name requests address.
        obs: observability bundle the ``net.*`` counters and
            transport spans report into.
        codec: ``"auto"`` (default) negotiates the preferred frame
            codec with a hello exchange; ``"json"`` / ``"binary"``
            force one without negotiating.
    """

    def __init__(
        self,
        transport: Transport,
        column: str,
        obs: Observability = None,
        codec: str = "auto",
    ) -> None:
        if codec not in ("auto",) + CODECS:
            raise ProtocolError("unknown frame codec: %r" % (codec,))
        self._transport = transport
        self.column = column
        self._obs = obs if obs is not None else Observability()
        metrics = self._obs.metrics
        self._net_sent = metrics.counter("net.bytes_sent")
        self._net_received = metrics.counter("net.bytes_received")
        self._net_round_trips = metrics.counter("net.round_trips")
        self._net_frames_binary = metrics.counter("net.frames_binary")
        self._net_retries = metrics.counter("net.retries")
        self._codec = "json" if codec == "auto" else codec
        self._auto = codec == "auto"
        #: Frame lengths of the most recent exchange (request, response).
        self.last_sent_bytes = 0
        self.last_received_bytes = 0

    @property
    def transport(self) -> Transport:
        """The underlying transport (shared across columns)."""
        return self._transport

    @property
    def codec(self) -> str:
        """The frame codec in effect (post-negotiation for ``auto``)."""
        return self._codec

    def _ensure_codec(self) -> None:
        """Resolve ``codec="auto"`` against the transport's cache.

        A peer that answers hello with ``binary`` upgrades the handle;
        a peer that rejects the hello envelope (an old JSON-only
        server) leaves it on JSON.  Transport failures propagate — the
        peer is unreachable, not merely old.

        The negotiated codec lives on the *transport*, which clears it
        on close (and therefore after any connection loss).  Checking
        the cache on every call — not once per handle — is what makes
        a reconnect renegotiate: the restarted peer may be older than
        the one that agreed to binary.
        """
        if not self._auto:
            return
        cached = getattr(self._transport, "negotiated_codec", None)
        if cached is not None:
            self._codec = cached
            return
        self._codec = "json"  # hello itself always ships as JSON
        try:
            response = self._exchange(HelloRequest(codecs=CODECS))
            if isinstance(response, HelloResponse):
                offered = set(response.codecs)
                self._codec = next(
                    (c for c in CODECS if c in offered), "json"
                )
        except TransportError:
            raise  # unreachable peer: renegotiate on the next call
        except ServerBusyError:
            raise  # loaded, not old: renegotiate on the next call
        except ReproError:
            self._codec = "json"  # peer predates the hello envelope
        self._transport.negotiated_codec = self._codec

    def call(self, request):
        """One full round trip: encode, exchange, decode, raise errors."""
        self._ensure_codec()
        return self._exchange(request)

    def call_many(self, requests: Sequence) -> List:
        """Pipeline many sub-requests into one batched round trip.

        Sub-requests may address other columns (each envelope names its
        own).  Returns the per-item response envelopes in request
        order; failed items come back as :class:`ErrorResponse` objects
        for the caller to raise or tolerate — one bad item never
        poisons the batch.
        """
        response = self.call(BatchRequest(requests=tuple(requests)))
        return list(self._expect(response, BatchResponse).responses)

    def _exchange(self, request):
        kind = type(request).__name__
        tracer = self._obs.tracer
        # The rpc span wraps the whole operation (codec work included)
        # so its id exists before encoding: the frame carries it as the
        # ``trace`` field and the server's rpc-serve span adopts it.
        # wire_context() is None when tracing is off — the field is
        # then omitted and the frame stays byte-identical to untraced
        # peers'.
        with self._obs.span("rpc", kind=kind, column=self.column):
            context = tracer.wire_context()
            with self._obs.span("transport-encode", kind=kind):
                frame = encode_frame(
                    attach_trace(request_to_dict(request), context),
                    codec=self._codec,
                )
            if self._codec == "binary":
                self._net_frames_binary.add(1)
            retryable = isinstance(request, IDEMPOTENT_REQUESTS)
            retries_before = getattr(self._transport, "retry_count", 0)
            try:
                reply = self._transport.exchange(frame, retryable=retryable)
            finally:
                retried = (
                    getattr(self._transport, "retry_count", 0) - retries_before
                )
                if retried:
                    self._net_retries.add(retried)
            with self._obs.span("transport-decode", kind=kind):
                response = response_from_dict(decode_frame(reply))
        self.last_sent_bytes = len(frame)
        self.last_received_bytes = len(reply)
        self._net_sent.add(len(frame))
        self._net_received.add(len(reply))
        self._net_round_trips.add(1)
        if isinstance(response, ErrorResponse):
            raise_error_response(response)
        return response

    def _expect(self, response, expected_type):
        if not isinstance(response, expected_type):
            raise ProtocolError(
                "expected %s, got %s"
                % (expected_type.__name__, type(response).__name__)
            )
        return response

    # -- typed operations --------------------------------------------------------

    def create(
        self,
        rows: Sequence,
        row_ids: Sequence[int],
        config: Dict[str, Any] = None,
    ) -> int:
        """Upload the column; returns the stored physical row count."""
        response = self.call(
            CreateColumnRequest(
                column=self.column,
                rows=tuple(rows),
                row_ids=tuple(int(i) for i in row_ids),
                config=dict(config or {}),
            )
        )
        return self._expect(response, CreateColumnResponse).rows_stored

    def query(self, query: EncryptedQuery) -> ServerResponse:
        """Run one encrypted query; returns the qualifying rows."""
        response = self.call(QueryRequest(column=self.column, query=query))
        return self._expect(response, QueryResponse).response

    def query_many(
        self, queries: Sequence[EncryptedQuery]
    ) -> List[ServerResponse]:
        """Run many encrypted queries in one pipelined round trip.

        The server executes them in order under the column lock; the
        first failed sub-query re-raises its typed error here.
        """
        out: List[ServerResponse] = []
        for response in self.call_many(
            [QueryRequest(column=self.column, query=q) for q in queries]
        ):
            if isinstance(response, ErrorResponse):
                raise_error_response(response)
            out.append(self._expect(response, QueryResponse).response)
        return out

    def fetch(self, row_ids: Sequence[int]) -> List:
        """Materialise rows by physical id (tuple reconstruction)."""
        response = self.call(
            FetchRequest(
                column=self.column, row_ids=tuple(int(i) for i in row_ids)
            )
        )
        return list(self._expect(response, FetchResponse).rows)

    def insert(self, rows: Sequence) -> List[int]:
        """Buffer new encrypted rows; returns their assigned ids."""
        response = self.call(
            InsertRequest(column=self.column, rows=tuple(rows))
        )
        return list(self._expect(response, InsertResponse).row_ids)

    def delete(self, row_ids: Sequence[int]) -> int:
        """Tombstone rows by physical id; returns the count processed."""
        response = self.call(
            DeleteRequest(
                column=self.column, row_ids=tuple(int(i) for i in row_ids)
            )
        )
        return self._expect(response, DeleteResponse).deleted

    def merge(self) -> int:
        """Merge the pending buffer; returns the row-count delta."""
        response = self.call(MergeRequest(column=self.column))
        return self._expect(response, MergeResponse).delta

    def telemetry(self, sections: Sequence[str] = None) -> Dict[str, Any]:
        """Fetch the endpoint's live telemetry snapshot.

        Returns the section dict served by the endpoint's catalog:
        ``metrics`` (registry snapshot), ``tracer`` (span totals),
        ``slow_queries`` (the bounded slow-dispatch ring), ``catalog``,
        and — for a worker-pool endpoint — ``pool``.  ``sections``
        restricts the reply; unknown names are ignored server-side.
        """
        request = TelemetryRequest(
            sections=None if sections is None
            else tuple(str(s) for s in sections)
        )
        response = self.call(request)
        return self._expect(response, TelemetryResponse).sections

    # -- replication (replica-to-primary feed) -----------------------------------

    def replicate_subscribe(self, replica_id: str) -> ReplicateSubscribeResponse:
        """Join the primary's WAL feed; returns snapshot + its seq."""
        response = self.call(
            ReplicateSubscribeRequest(replica_id=str(replica_id))
        )
        return self._expect(response, ReplicateSubscribeResponse)

    def replicate_entries(
        self, replica_id: str, after_seq: int, limit: int = None
    ) -> ReplicateEntriesResponse:
        """Pull WAL entries after ``after_seq`` (``reset`` = resubscribe)."""
        response = self.call(
            ReplicateEntriesRequest(
                replica_id=str(replica_id),
                after_seq=int(after_seq),
                limit=None if limit is None else int(limit),
            )
        )
        return self._expect(response, ReplicateEntriesResponse)

    def replicate_ack(
        self, replica_id: str, seq: int, epochs: Dict[str, int]
    ) -> ReplicateAckResponse:
        """Report applied progress; returns the primary's lag estimate."""
        response = self.call(
            ReplicateAckRequest(
                replica_id=str(replica_id),
                seq=int(seq),
                epochs={str(k): int(v) for k, v in dict(epochs).items()},
            )
        )
        return self._expect(response, ReplicateAckResponse)

    def rotate_begin(self) -> RotateBeginResponse:
        """Merge pending state and fetch every live row for rotation.

        Returns the full envelope: ``.response`` holds the rows and
        ``.fence`` the mutation-epoch token to echo into
        :meth:`rotate_apply`.
        """
        response = self.call(RotateBeginRequest(column=self.column))
        return self._expect(response, RotateBeginResponse)

    def rotate_apply(
        self,
        rows: Sequence,
        row_ids: Sequence[int],
        fence: int = None,
    ) -> int:
        """Replace the column with re-encrypted rows; returns the count.

        ``fence`` is the token from :meth:`rotate_begin`; the server
        raises :class:`~repro.errors.RotationConflictError` (leaving
        the column intact) if the column mutated since then.
        """
        response = self.call(
            RotateApplyRequest(
                column=self.column,
                rows=tuple(rows),
                row_ids=tuple(int(i) for i in row_ids),
                fence=None if fence is None else int(fence),
            )
        )
        return self._expect(response, RotateApplyResponse).rows_stored

    def close(self) -> None:
        """Close the underlying transport."""
        self._transport.close()
