"""Pluggable transports carrying protocol frames between the parties.

A transport moves opaque frame bytes (one encoded envelope) from the
client to an endpoint and returns the response frame.  Two
implementations cover the deployment spectrum:

* :class:`LoopbackTransport` — in-process, near-zero overhead, the
  default for a single-process session.  It still decodes every
  request frame and re-encodes every response frame, so even loopback
  traffic exercises the real wire format (tests pin loopback and TCP
  frames byte-identical for the same workload).
* :class:`TcpTransport` — length-prefixed frames over a TCP socket to
  a :mod:`repro.net.server` endpoint (``repro serve``), with connect
  and exchange timeouts.

Every transport failure surfaces as a typed
:class:`~repro.errors.TransportError` — a refused connection, a
timeout, or a server that died mid-exchange — never a hang or a raw
``OSError``.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from abc import ABC, abstractmethod

from repro.errors import TransportError
from repro.net.protocol import decode_frame, encode_frame, frame_codec

#: Frame length prefix: 4-byte unsigned big-endian.
LENGTH_PREFIX = struct.Struct(">I")

#: Upper bound on a single frame, enforced in *both* directions: the
#: server read path drops connections announcing larger frames, and the
#: client send path refuses to ship one (the receiver would kill the
#: connection anyway — failing before the write keeps it alive).
MAX_FRAME_BYTES = 1 << 30


class Transport(ABC):
    """One client's channel to a column-catalog endpoint."""

    #: Frame codec agreed with this transport's peer; ``None`` until a
    #: handle negotiates (see ``RemoteColumn._ensure_codec``).  Cached
    #: here because many column handles share one transport — and
    #: cleared on :meth:`close` (including the implicit close after a
    #: connection loss), because the peer behind a *new* connection may
    #: be a different, older server that no longer speaks the agreed
    #: codec.  Handles re-check the cache on every call, so the first
    #: exchange after a reconnect renegotiates.
    negotiated_codec = None

    #: Total idempotent re-sends performed (see ``TcpTransport``
    #: retries); column handles read the delta per exchange to feed the
    #: ``net.retries`` counter.
    retry_count = 0

    @abstractmethod
    def exchange(self, frame: bytes, retryable: bool = False) -> bytes:
        """Deliver one request frame; return the response frame.

        ``retryable`` marks the frame as an idempotent request the
        transport may re-send after a mid-exchange connection loss;
        transports without retry support ignore it.
        """

    def close(self) -> None:
        """Release any underlying resources (idempotent).

        Subclasses overriding this must also drop
        :attr:`negotiated_codec` — a closed transport's next
        connection may reach a different peer.
        """
        self.negotiated_codec = None

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LoopbackTransport(Transport):
    """In-process transport over a local
    :class:`~repro.net.catalog.ColumnCatalog`.

    Both directions pass through the real frame codec: the catalog
    dispatcher only ever sees decoded envelope dicts, exactly as it
    would behind a socket.  The response is encoded with the same codec
    the request arrived in, mirroring the TCP endpoint.
    """

    def __init__(self, catalog) -> None:
        self._catalog = catalog

    @property
    def catalog(self):
        """The in-process endpoint this transport is looped onto."""
        return self._catalog

    def exchange(self, frame: bytes, retryable: bool = False) -> bytes:
        return encode_frame(
            self._catalog.dispatch(decode_frame(frame)),
            codec=frame_codec(frame),
        )


class TcpTransport(Transport):
    """Length-prefixed frames over one persistent TCP connection.

    The transport is safe to share across threads and column handles:
    a per-transport lock serializes :meth:`exchange`, so two threads
    can never interleave their frame bytes on the socket or steal each
    other's responses.  A connection is (re-)established lazily on the
    next exchange after any failure.

    Args:
        host, port: the ``repro serve`` endpoint address.
        connect_timeout: seconds allowed for establishing the
            connection (lazily, on first exchange).
        timeout: per-exchange send/receive deadline in seconds.
        retries: how many times a *retryable* frame (flagged by the
            caller — queries, fetches, hello) may be re-sent after a
            mid-exchange connection loss.  0 (default) disables
            retries; mutating frames are never retried regardless.
        backoff: initial delay in seconds before the first re-send;
            doubles per attempt up to ``backoff_cap``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self._address = (host, int(port))
        self._connect_timeout = connect_timeout
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._lock = threading.Lock()
        self._sock: socket.socket = None
        self.retry_count = 0

    @property
    def address(self):
        """The ``(host, port)`` endpoint this transport connects to."""
        return self._address

    def _connection(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    self._address, timeout=self._connect_timeout
                )
            except OSError as exc:
                raise TransportError(
                    "cannot connect to %s:%d: %s" % (*self._address, exc)
                ) from exc
            sock.settimeout(self._timeout)
            self._sock = sock
        return self._sock

    def exchange(self, frame: bytes, retryable: bool = False) -> bytes:
        if len(frame) > MAX_FRAME_BYTES:
            # Refuse before touching the socket: the server would drop
            # the connection on an oversized announcement, so failing
            # here keeps the session usable.
            raise TransportError(
                "oversized request frame (%d bytes, limit %d)"
                % (len(frame), MAX_FRAME_BYTES)
            )
        with self._lock:
            attempts_left = self._retries if retryable else 0
            delay = self._backoff
            while True:
                try:
                    return self._exchange_once(frame)
                except TransportError:
                    if attempts_left <= 0:
                        raise
                    attempts_left -= 1
                    self.retry_count += 1
                    time.sleep(delay)
                    delay = min(delay * 2, self._backoff_cap)

    def _exchange_once(self, frame: bytes) -> bytes:
        """One send/receive attempt; any failure drops the connection
        (the next attempt reconnects lazily)."""
        sock = self._connection()
        try:
            sock.sendall(LENGTH_PREFIX.pack(len(frame)) + frame)
            (length,) = LENGTH_PREFIX.unpack(self._recv_exact(sock, 4))
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    "oversized response frame (%d bytes)" % length
                )
            return self._recv_exact(sock, length)
        except TransportError:
            self._drop_connection()
            raise
        except OSError as exc:
            # Covers socket.timeout and connection resets alike; the
            # connection state is unknown, so drop it.
            self._drop_connection()
            raise TransportError(
                "exchange with %s:%d failed: %s" % (*self._address, exc)
            ) from exc

    @staticmethod
    def _recv_exact(sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise TransportError(
                    "connection closed mid-frame (%d of %d bytes missing)"
                    % (remaining, count)
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _drop_connection(self) -> None:
        """Close the socket and forget the negotiated codec: the next
        connection may reach a restarted (possibly older) peer."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._sock = None
        self.negotiated_codec = None

    def close(self) -> None:
        self._drop_connection()
