"""Pluggable transports carrying protocol frames between the parties.

A transport moves opaque frame bytes (one encoded envelope) from the
client to an endpoint and returns the response frame.  Two
implementations cover the deployment spectrum:

* :class:`LoopbackTransport` — in-process, near-zero overhead, the
  default for a single-process session.  It still decodes every
  request frame and re-encodes every response frame, so even loopback
  traffic exercises the real wire format (tests pin loopback and TCP
  frames byte-identical for the same workload).
* :class:`TcpTransport` — length-prefixed frames over a TCP socket to
  a :mod:`repro.net.server` endpoint (``repro serve``), with connect
  and exchange timeouts.

Every transport failure surfaces as a typed
:class:`~repro.errors.TransportError` — a refused connection, a
timeout, or a server that died mid-exchange — never a hang or a raw
``OSError``.
"""

from __future__ import annotations

import socket
import struct
from abc import ABC, abstractmethod

from repro.errors import TransportError
from repro.net.protocol import decode_frame, encode_frame, frame_codec

#: Frame length prefix: 4-byte unsigned big-endian.
LENGTH_PREFIX = struct.Struct(">I")

#: Upper bound on a single frame, enforced in *both* directions: the
#: server read path drops connections announcing larger frames, and the
#: client send path refuses to ship one (the receiver would kill the
#: connection anyway — failing before the write keeps it alive).
MAX_FRAME_BYTES = 1 << 30


class Transport(ABC):
    """One client's channel to a column-catalog endpoint."""

    #: Frame codec agreed with this transport's peer; ``None`` until a
    #: handle negotiates (see ``RemoteColumn._ensure_codec``).  Cached
    #: here because many column handles share one transport.
    negotiated_codec = None

    @abstractmethod
    def exchange(self, frame: bytes) -> bytes:
        """Deliver one request frame; return the response frame."""

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LoopbackTransport(Transport):
    """In-process transport over a local
    :class:`~repro.net.catalog.ColumnCatalog`.

    Both directions pass through the real frame codec: the catalog
    dispatcher only ever sees decoded envelope dicts, exactly as it
    would behind a socket.  The response is encoded with the same codec
    the request arrived in, mirroring the TCP endpoint.
    """

    def __init__(self, catalog) -> None:
        self._catalog = catalog

    @property
    def catalog(self):
        """The in-process endpoint this transport is looped onto."""
        return self._catalog

    def exchange(self, frame: bytes) -> bytes:
        return encode_frame(
            self._catalog.dispatch(decode_frame(frame)),
            codec=frame_codec(frame),
        )


class TcpTransport(Transport):
    """Length-prefixed JSON frames over one persistent TCP connection.

    Args:
        host, port: the ``repro serve`` endpoint address.
        connect_timeout: seconds allowed for establishing the
            connection (lazily, on first exchange).
        timeout: per-exchange send/receive deadline in seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        timeout: float = 30.0,
    ) -> None:
        self._address = (host, int(port))
        self._connect_timeout = connect_timeout
        self._timeout = timeout
        self._sock: socket.socket = None

    @property
    def address(self):
        """The ``(host, port)`` endpoint this transport connects to."""
        return self._address

    def _connection(self) -> socket.socket:
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    self._address, timeout=self._connect_timeout
                )
            except OSError as exc:
                raise TransportError(
                    "cannot connect to %s:%d: %s" % (*self._address, exc)
                ) from exc
            sock.settimeout(self._timeout)
            self._sock = sock
        return self._sock

    def exchange(self, frame: bytes) -> bytes:
        if len(frame) > MAX_FRAME_BYTES:
            # Refuse before touching the socket: the server would drop
            # the connection on an oversized announcement, so failing
            # here keeps the session usable.
            raise TransportError(
                "oversized request frame (%d bytes, limit %d)"
                % (len(frame), MAX_FRAME_BYTES)
            )
        sock = self._connection()
        try:
            sock.sendall(LENGTH_PREFIX.pack(len(frame)) + frame)
            (length,) = LENGTH_PREFIX.unpack(self._recv_exact(sock, 4))
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    "oversized response frame (%d bytes)" % length
                )
            return self._recv_exact(sock, length)
        except TransportError:
            self.close()
            raise
        except OSError as exc:
            # Covers socket.timeout and connection resets alike; the
            # connection state is unknown, so drop it.
            self.close()
            raise TransportError(
                "exchange with %s:%d failed: %s" % (*self._address, exc)
            ) from exc

    @staticmethod
    def _recv_exact(sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise TransportError(
                    "connection closed mid-frame (%d of %d bytes missing)"
                    % (remaining, count)
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._sock = None
