"""Compact binary frame codec for protocol envelopes.

The JSON frame codec is deterministic and debuggable but pays a 3-4x
size tax over the compact estimate (``size_bytes``): every big-int
ciphertext numerator round-trips through base-10 digits and every field
name is spelled out per row.  This module is the second wire codec: a
self-describing binary encoding of the *same* envelope dictionaries the
JSON codec carries, so ``decode(encode(d)) == d`` holds for both codecs
on any envelope — the invariant the fuzz and differential suites pin.

Frame layout::

    frame   := MAGIC(0xAE)  VERSION(0x01)  CODEC_ID(0x01)  value
    value   := 0x00                                  # None
             | 0x01 | 0x02                           # False | True
             | 0x03 zigzag-varint                    # int, |v| < 2**63
             | 0x04 sign(1B) varint(len) magnitude   # big int, sign +
                                                     #   magnitude bytes
                                                     #   (big-endian)
             | 0x05 float64 (8B, big-endian)
             | 0x06 varint(len) utf-8 bytes          # string (interned)
             | 0x07 varint(index)                    # string back-ref
             | 0x08 varint(count) value*             # list
             | 0x09 varint(count) (string value)*    # dict, keys sorted
             | 0x0A width_code(1B) varint(count)     # homogeneous int
               payload                               #   array fast path

Three properties do the heavy lifting:

* **Sign + magnitude big ints** — a ciphertext numerator ships as its
  minimal big-endian byte string (8 bits per byte instead of ~3.3 bits
  per decimal digit), with no base-10 round-trip on either side.
* **String interning** — the first occurrence of any string in a frame
  writes its bytes; every repeat is a 2-3 byte back-reference.  The
  per-row field names (``numerators``, ``denominator``, ``kind``, ...)
  that dominate JSON's structural overhead collapse to references.
* **Int-array fast path (tag 0x0A)** — a list of 4+ plain ints whose
  range fits a fixed signed width (1/2/4/8 bytes, picked per array)
  ships as one ``struct``-packed big-endian block instead of per-value
  tag dispatch.  Row-id arrays — the longest flat lists on the wire —
  encode and decode in a single C call each, which is what closes the
  CPU gap the byte savings alone could not (the per-value Python loop
  used to cost more than JSON's optimized C encoder saved).

Encoding is a pure function of the envelope dict (keys sorted, intern
table in deterministic encounter order), so binary frames are
byte-identical across transports exactly like JSON frames.

Decoding is hardened for hostile bytes: every malformed frame — bad
magic, truncated varint, length or count exceeding the remaining
buffer, unknown tag, dangling back-reference, duplicate or non-string
dict key, trailing bytes — raises a typed
:class:`~repro.errors.SerializationError`.  Never a raw
``struct.error``, an out-of-memory allocation, or a hang.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from repro.errors import SerializationError

#: First frame byte; cannot collide with JSON frames (which start with
#: ``{`` = 0x7B) because 0xAE is never the first byte of valid UTF-8.
MAGIC = 0xAE

#: Binary frame layout version.
BINFRAME_VERSION = 1

#: Codec identifier inside the header (1 = the generic envelope codec).
CODEC_ID = 1

_HEADER = bytes((MAGIC, BINFRAME_VERSION, CODEC_ID))

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_BIGINT = 0x04
_TAG_FLOAT = 0x05
_TAG_STR = 0x06
_TAG_STRREF = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09
_TAG_INTARRAY = 0x0A

_FLOAT64 = struct.Struct(">d")

#: Int-array width codes: code -> (byte width, struct format char,
#: inclusive signed bound).  Width is picked per array from its range.
_INTARRAY_WIDTHS = (
    (1, "b", 1 << 7),
    (2, "h", 1 << 15),
    (4, "i", 1 << 31),
    (8, "q", 1 << 63),
)

#: Shortest list worth the fast path; below this the per-value tags are
#: as compact and the range scan is pure overhead.
_INTARRAY_MIN_LEN = 4

#: ints with |v| below this encode as zigzag varints; larger ones as
#: sign + magnitude bytes.
_SMALL_INT_LIMIT = 1 << 63

#: Longest accepted varint (10 * 7 = 70 bits covers every length,
#: count, back-reference, and small int the encoder can produce).
_MAX_VARINT_BYTES = 10

#: Maximum container nesting; envelope dicts are a handful deep.
_MAX_DEPTH = 64


def is_binary_frame(frame: bytes) -> bool:
    """True when ``frame`` starts with the binary magic byte."""
    return len(frame) > 0 and frame[0] == MAGIC


# -- encoding -------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_intarray(out: bytearray, value: Any) -> bool:
    """Write ``value`` as a struct-packed int array if eligible.

    Eligible means every element is a plain ``int`` (bools are a
    subclass and are excluded — they must round-trip as bools) and the
    range fits one of the fixed signed widths.  Returns False without
    touching ``out`` when the generic list encoding must be used, e.g.
    for arrays containing ints beyond 64 bits.
    """
    if not all(type(item) is int for item in value):
        return False
    lo = min(value)
    hi = max(value)
    for code, (width, fmt, bound) in enumerate(_INTARRAY_WIDTHS):
        if -bound <= lo and hi < bound:
            out.append(_TAG_INTARRAY)
            out.append(code)
            _write_varint(out, len(value))
            out.extend(struct.pack(">%d%s" % (len(value), fmt), *value))
            return True
    return False


def _write_value(out: bytearray, value: Any, interned: Dict[str, int],
                 depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise SerializationError("frame nesting exceeds %d levels" % _MAX_DEPTH)
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        if -_SMALL_INT_LIMIT < value < _SMALL_INT_LIMIT:
            out.append(_TAG_INT)
            _write_varint(out, (value << 1) ^ (value >> 63))
        else:
            magnitude = abs(value)
            payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
            out.append(_TAG_BIGINT)
            out.append(1 if value < 0 else 0)
            _write_varint(out, len(payload))
            out.extend(payload)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT64.pack(value))
    elif isinstance(value, str):
        index = interned.get(value)
        if index is not None:
            out.append(_TAG_STRREF)
            _write_varint(out, index)
        else:
            interned[value] = len(interned)
            payload = value.encode("utf-8")
            out.append(_TAG_STR)
            _write_varint(out, len(payload))
            out.extend(payload)
    elif isinstance(value, (list, tuple)):
        if len(value) >= _INTARRAY_MIN_LEN and _write_intarray(out, value):
            return
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item, interned, depth + 1)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(value))
        try:
            keys = sorted(value)
        except TypeError as exc:
            raise SerializationError(
                "binary frames require string dict keys: %s" % exc
            ) from exc
        for key in keys:
            if not isinstance(key, str):
                raise SerializationError(
                    "binary frames require string dict keys, got %s"
                    % type(key).__name__
                )
            _write_value(out, key, interned, depth + 1)
            _write_value(out, value[key], interned, depth + 1)
    else:
        raise SerializationError(
            "unencodable frame value of type %s" % type(value).__name__
        )


def encode_binary_frame(payload: Dict[str, Any]) -> bytes:
    """Encode one envelope dict to a canonical binary frame.

    Deterministic: sorted keys and encounter-order interning make the
    bytes a pure function of the envelope's content, exactly like the
    JSON codec.
    """
    if not isinstance(payload, dict):
        raise SerializationError("frame payload must be a dict")
    out = bytearray(_HEADER)
    _write_value(out, payload, {}, 0)
    return bytes(out)


# -- decoding -------------------------------------------------------------------


class _Reader:
    """Bounds-checked cursor over frame bytes."""

    __slots__ = ("buf", "pos", "strings")

    def __init__(self, buf: bytes, pos: int) -> None:
        self.buf = buf
        self.pos = pos
        self.strings: List[str] = []

    @property
    def remaining(self) -> int:
        return len(self.buf) - self.pos

    def take(self, count: int) -> bytes:
        if count > self.remaining:
            raise SerializationError(
                "truncated binary frame (%d bytes needed, %d left)"
                % (count, self.remaining)
            )
        chunk = self.buf[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def byte(self) -> int:
        if self.pos >= len(self.buf):
            raise SerializationError("truncated binary frame")
        value = self.buf[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        result = 0
        shift = 0
        for count in range(_MAX_VARINT_BYTES):
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
        raise SerializationError("varint longer than %d bytes" % _MAX_VARINT_BYTES)


def _read_value(reader: _Reader, depth: int) -> Any:
    if depth > _MAX_DEPTH:
        raise SerializationError("frame nesting exceeds %d levels" % _MAX_DEPTH)
    tag = reader.byte()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_INT:
        raw = reader.varint()
        return (raw >> 1) ^ -(raw & 1)
    if tag == _TAG_BIGINT:
        sign = reader.byte()
        if sign not in (0, 1):
            raise SerializationError("invalid big-int sign byte: %d" % sign)
        length = reader.varint()
        magnitude = int.from_bytes(reader.take(length), "big")
        return -magnitude if sign else magnitude
    if tag == _TAG_FLOAT:
        return _FLOAT64.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        length = reader.varint()
        try:
            text = reader.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid utf-8 in frame: %s" % exc) from exc
        reader.strings.append(text)
        return text
    if tag == _TAG_STRREF:
        index = reader.varint()
        if index >= len(reader.strings):
            raise SerializationError(
                "dangling string back-reference: %d" % index
            )
        return reader.strings[index]
    if tag == _TAG_LIST:
        count = reader.varint()
        if count > reader.remaining:  # every element costs >= 1 byte
            raise SerializationError(
                "list count %d exceeds remaining frame bytes" % count
            )
        return [_read_value(reader, depth + 1) for _ in range(count)]
    if tag == _TAG_INTARRAY:
        code = reader.byte()
        if code >= len(_INTARRAY_WIDTHS):
            raise SerializationError(
                "invalid int-array width code: %d" % code
            )
        width, fmt, _bound = _INTARRAY_WIDTHS[code]
        count = reader.varint()
        if count * width > reader.remaining:
            raise SerializationError(
                "int-array count %d exceeds remaining frame bytes" % count
            )
        payload = reader.take(count * width)
        return list(struct.unpack(">%d%s" % (count, fmt), payload))
    if tag == _TAG_DICT:
        count = reader.varint()
        if 2 * count > reader.remaining:  # every entry costs >= 2 bytes
            raise SerializationError(
                "dict count %d exceeds remaining frame bytes" % count
            )
        out: Dict[str, Any] = {}
        for _ in range(count):
            key = _read_value(reader, depth + 1)
            if not isinstance(key, str):
                raise SerializationError(
                    "dict key must be a string, got %s" % type(key).__name__
                )
            if key in out:
                raise SerializationError("duplicate dict key: %r" % key)
            out[key] = _read_value(reader, depth + 1)
        return out
    raise SerializationError("unknown binary frame tag: 0x%02x" % tag)


def decode_binary_frame(frame: bytes) -> Dict[str, Any]:
    """Parse binary frame bytes back into an envelope dict.

    Raises:
        SerializationError: on any malformed frame — wrong magic or
            version, truncation, bad tags, trailing garbage.
    """
    if len(frame) < len(_HEADER):
        raise SerializationError("binary frame shorter than its header")
    if frame[0] != MAGIC:
        raise SerializationError("bad binary frame magic: 0x%02x" % frame[0])
    if frame[1] != BINFRAME_VERSION:
        raise SerializationError(
            "unsupported binary frame version: %d" % frame[1]
        )
    if frame[2] != CODEC_ID:
        raise SerializationError("unsupported binary codec id: %d" % frame[2])
    reader = _Reader(frame, len(_HEADER))
    try:
        data = _read_value(reader, 0)
    except SerializationError:
        raise
    except Exception as exc:  # defensive: no raw struct/overflow errors
        raise SerializationError("corrupt binary frame: %s" % exc) from exc
    if reader.remaining:
        raise SerializationError(
            "%d trailing bytes after binary frame value" % reader.remaining
        )
    if not isinstance(data, dict):
        raise SerializationError("frame must encode an envelope object")
    return data
