"""Warm read replicas: streaming WAL catch-up and replica-aware reads.

Two halves of the multi-server topology the WAL makes possible (the
HardIDX / Enc²DB serving-tier seam in PAPERS.md):

* :class:`ReplicationClient` runs *inside a replica process*
  (``repro serve --replica-of HOST:PORT``).  It subscribes to the
  primary — receiving a consistent catalog snapshot plus the WAL
  position it cuts — then long-polls ``replicate_entries`` and applies
  each mutation envelope through the catalog's epoch-fenced replay
  path, acknowledging progress so the primary can publish the
  replica's ``replication.lag_epochs`` gauge.

* :class:`ReplicaSet` is a *client-side* transport policy: one
  primary transport plus N replica transports behind the ordinary
  :class:`~repro.net.transport.Transport` interface, so any session
  or :class:`~repro.net.client.RemoteColumn` can use it unchanged.
  Mutations always go to the primary; queries and fetches fan out
  round-robin across replicas — but only when the target replica's
  *epoch watermark* for the addressed column has caught up to the
  last mutation this ReplicaSet itself acknowledged (bounded
  staleness, default 0 = read-your-writes).  A replica that fails or
  lags falls back to the primary, never to an error.

Consistency model: the primary orders all mutations; a replica serves
a prefix of that order per column.  Read-your-writes holds per
ReplicaSet instance (it remembers the epochs its own writes reached);
cross-client monotonicity is whatever ``max_staleness_epochs`` allows.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError, TransportError
from repro.net.client import RemoteColumn
from repro.net.protocol import (
    TelemetryRequest,
    decode_frame,
    encode_frame,
    request_to_dict,
)
from repro.net.transport import Transport
from repro.obs import Observability

#: Request kinds a replica can serve (everything else goes — or is
#: refused with ``read_only`` — to the primary).
READ_KINDS = ("query_request", "fetch_request")

#: Default seconds between entry polls when the replica is caught up.
DEFAULT_POLL_INTERVAL = 0.05

#: Default seconds a cached replica watermark stays fresh.
DEFAULT_WATERMARK_INTERVAL = 0.25


class ReplicationClient:
    """Applies a primary's WAL stream to a local replica catalog.

    Args:
        catalog: the replica's own (initially empty) catalog; it will
            be populated from the primary's snapshot and kept warm.
        transport: channel to the primary endpoint.
        replica_id: name reported to the primary (telemetry key).
        poll_interval: seconds to sleep between polls when caught up.
        batch_limit: max entries to request per poll.
        obs: observability bundle for the replica-side counters
            (``replication.entries_applied`` etc.); defaults to the
            catalog's bundle.
    """

    def __init__(
        self,
        catalog,
        transport: Transport,
        replica_id: str,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        batch_limit: int = 128,
        obs: Observability = None,
    ) -> None:
        self.catalog = catalog
        self.replica_id = str(replica_id)
        self.poll_interval = max(0.0, float(poll_interval))
        self.batch_limit = max(1, int(batch_limit))
        self._obs = obs if obs is not None else catalog.obs
        self._remote = RemoteColumn(
            transport, "__replication__", obs=self._obs
        )
        self._applied_seq = 0
        self._head_seq = 0
        self._subscribed = False
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._last_error: Optional[str] = None
        catalog.register_telemetry_provider("replication", self.telemetry)

    @property
    def applied_seq(self) -> int:
        """Last WAL sequence number applied locally."""
        return self._applied_seq

    @property
    def lag_entries(self) -> int:
        """Entries between the primary's last-seen head and here."""
        return max(0, self._head_seq - self._applied_seq)

    def telemetry(self) -> Dict[str, Any]:
        """The replica's ``replication`` telemetry section.

        ``epochs`` is the watermark :class:`ReplicaSet` routes reads
        by; ``lag_entries`` measures catch-up backlog against the last
        head the primary reported.
        """
        return {
            "role": "replica",
            "replica_id": self.replica_id,
            "applied_seq": self._applied_seq,
            "head_seq": self._head_seq,
            "lag_entries": self.lag_entries,
            "epochs": self.catalog.epochs(),
            "last_error": self._last_error,
        }

    def subscribe(self) -> int:
        """Join (or re-join) the feed: restore the primary's snapshot.

        Returns the WAL sequence number the snapshot captures.  On a
        re-subscribe the replica's whole column state is swapped for
        the fresh snapshot.
        """
        from repro.core.persistence import restore_catalog

        with self._lock:
            response = self._remote.replicate_subscribe(self.replica_id)
            fresh = restore_catalog(response.snapshot, obs=None)
            if len(self.catalog) == 0:
                for name in fresh.column_names:
                    self.catalog.adopt_column(
                        name,
                        fresh.server(name),
                        fresh.config(name),
                        epoch=fresh.epoch(name),
                    )
                for logical, meta in fresh.shards().items():
                    for index, column in enumerate(meta["columns"]):
                        if column is not None:
                            self.catalog.register_shard(
                                column,
                                {
                                    "of": logical,
                                    "index": index,
                                    "count": meta["count"],
                                    "physical_per_value":
                                        meta["physical_per_value"],
                                },
                            )
            else:
                self.catalog.reset_state_from(fresh)
            self._applied_seq = int(response.seq)
            self._head_seq = int(response.seq)
            self._subscribed = True
            self._obs.metrics.add("replication.subscribes")
            return self._applied_seq

    def sync_once(self) -> int:
        """One pull-apply-ack cycle; returns entries applied.

        Subscribes first if needed; a ``reset`` reply (our position
        was compacted away on the primary) triggers a re-subscribe.
        """
        if not self._subscribed:
            self.subscribe()
        response = self._remote.replicate_entries(
            self.replica_id, self._applied_seq, limit=self.batch_limit
        )
        if response.reset:
            self._obs.metrics.add("replication.resets")
            self._subscribed = False
            self.subscribe()
            return 0
        applied = 0
        with self._lock:
            self._head_seq = max(int(response.seq), self._applied_seq)
            for entry in response.entries:
                if self.catalog.apply_wal_entry(entry):
                    applied += 1
                self._applied_seq = entry["seq"]
        if applied:
            self._obs.metrics.add("replication.entries_applied", applied)
        self._obs.metrics.set("replication.lag_entries", self.lag_entries)
        self._remote.replicate_ack(
            self.replica_id, self._applied_seq, self.catalog.epochs()
        )
        self._last_error = None
        return applied

    def run(self) -> None:
        """Poll until :meth:`stop` — the replica's catch-up loop.

        Transport blips (primary restarting, network hiccups) are
        retried forever: a replica's job is to be eventually caught
        up, not to crash with its primary.
        """
        while not self._stop.is_set():
            try:
                applied = self.sync_once()
            except TransportError as exc:
                self._last_error = str(exc)
                self._obs.metrics.add("replication.poll_failures")
                self._stop.wait(min(1.0, self.poll_interval * 10 or 0.5))
                continue
            except ReproError as exc:
                # Anything non-transport (a corrupt entry, a failed
                # apply) is fatal for the stream: resubscribing from a
                # fresh snapshot is the only safe recovery.
                self._last_error = str(exc)
                self._obs.metrics.add("replication.apply_failures")
                self._subscribed = False
                self._stop.wait(min(1.0, self.poll_interval * 10 or 0.5))
                continue
            if applied == 0 and self.lag_entries == 0:
                self._stop.wait(self.poll_interval)

    def start(self) -> "ReplicationClient":
        """Run the catch-up loop on a daemon thread."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self.run, name="repro-replication", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the catch-up loop (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    def close(self) -> None:
        """Stop the loop and close the primary transport."""
        self.stop()
        self._remote.close()


class ReplicaSet(Transport):
    """Routes reads across replicas, pins writes to the primary.

    A drop-in :class:`~repro.net.transport.Transport`: hand it to a
    session or :class:`RemoteColumn` and every mutation, hello, and
    telemetry exchange goes to the primary while queries and fetches
    round-robin over replicas — *bounded-staleness guarded*.  The set
    remembers the epoch each of its own writes reached per column (the
    ``epoch`` field on mutation responses) and only routes a read to a
    replica whose cached watermark satisfies
    ``fence - watermark <= max_staleness_epochs``.  The default 0
    yields read-your-writes for this client; raise it to trade
    freshness for replica offload.  Any replica failure falls back to
    the primary transparently.

    Args:
        primary: transport to the writable endpoint.
        replicas: transports to warm read replicas (may be empty, in
            which case everything goes to the primary).
        max_staleness_epochs: how many epochs a replica may trail a
            column this client wrote before reads on it divert to the
            primary.
        watermark_interval: seconds a cached replica watermark stays
            fresh before the next read on a fenced column re-polls it.
        obs: observability bundle for routing counters.
    """

    def __init__(
        self,
        primary: Transport,
        replicas: Sequence[Transport] = (),
        max_staleness_epochs: int = 0,
        watermark_interval: float = DEFAULT_WATERMARK_INTERVAL,
        obs: Observability = None,
    ) -> None:
        self.primary = primary
        self.replicas: Tuple[Transport, ...] = tuple(replicas)
        self.max_staleness_epochs = max(0, int(max_staleness_epochs))
        self.watermark_interval = max(0.0, float(watermark_interval))
        self._obs = obs if obs is not None else Observability()
        self._lock = threading.Lock()
        self._rr = 0
        # Column -> highest epoch one of *our* writes reached.
        self._fences: Dict[str, int] = {}
        # Replica index -> (monotonic timestamp, {column: epoch}).
        self._watermarks: Dict[int, Tuple[float, Dict[str, int]]] = {}
        self.retry_count = 0

    # -- Transport interface -----------------------------------------------------

    def exchange(self, frame: bytes, retryable: bool = False) -> bytes:
        """Route one frame by its decoded kind (see class docstring)."""
        try:
            payload = decode_frame(frame)
        except ReproError:
            # Undecodable frames are the primary's problem to reject.
            return self._primary_exchange(frame, retryable)
        kind = payload.get("kind")
        columns = self._read_columns(payload, kind)
        if columns is None or not self.replicas:
            reply = self._primary_exchange(frame, retryable)
            self._harvest_fences(payload, kind, reply)
            return reply
        index = self._pick_replica(columns)
        if index is None:
            self._obs.metrics.add("replicaset.reads_primary")
            return self._primary_exchange(frame, retryable)
        try:
            reply = self.replicas[index].exchange(frame, retryable=retryable)
        except TransportError:
            self._obs.metrics.add("replicaset.failovers")
            with self._lock:
                self._watermarks.pop(index, None)
            return self._primary_exchange(frame, retryable)
        if self._is_error_reply(reply):
            # A replica error on an idempotent read (most likely a
            # column whose create entry has not streamed over yet) is
            # never final: the primary is authoritative, re-ask it.
            self._obs.metrics.add("replicaset.failovers")
            with self._lock:
                self._watermarks.pop(index, None)
            return self._primary_exchange(frame, retryable)
        self._obs.metrics.add("replicaset.reads_replica")
        return reply

    def close(self) -> None:
        """Close every underlying transport."""
        self.negotiated_codec = None
        for transport in (self.primary,) + self.replicas:
            transport.close()

    # -- routing internals -------------------------------------------------------

    @staticmethod
    def _is_error_reply(reply: bytes) -> bool:
        try:
            return decode_frame(reply).get("kind") == "error_response"
        except ReproError:
            return True

    def _primary_exchange(self, frame: bytes, retryable: bool) -> bytes:
        before = getattr(self.primary, "retry_count", 0)
        try:
            return self.primary.exchange(frame, retryable=retryable)
        finally:
            self.retry_count += (
                getattr(self.primary, "retry_count", 0) - before
            )

    @staticmethod
    def _read_columns(payload: Dict[str, Any],
                      kind: Any) -> Optional[List[str]]:
        """Columns a read-only frame addresses, or ``None`` when the
        frame must go to the primary (mutations, hello, telemetry,
        replication, malformed)."""
        if kind in READ_KINDS:
            column = payload.get("column")
            return [column] if isinstance(column, str) else None
        if kind != "batch_request":
            return None
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            return None
        columns: List[str] = []
        for item in items:
            if not isinstance(item, dict):
                return None
            if item.get("kind") not in READ_KINDS:
                return None
            column = item.get("column")
            if not isinstance(column, str):
                return None
            columns.append(column)
        return columns

    def _pick_replica(self, columns: Sequence[str]) -> Optional[int]:
        """Next replica (round-robin) whose watermark satisfies every
        addressed column's fence, or ``None`` for the primary."""
        with self._lock:
            fences = {
                column: self._fences[column]
                for column in columns
                if column in self._fences
            }
            order = [
                (self._rr + offset) % len(self.replicas)
                for offset in range(len(self.replicas))
            ]
            self._rr = (self._rr + 1) % len(self.replicas)
        if not fences:
            # Nothing we wrote constrains these columns: any replica is
            # fresh enough, no watermark poll needed.
            return order[0]
        for index in order:
            if self._watermark_satisfies(index, fences):
                return index
        return None

    def _watermark_satisfies(self, index: int,
                             fences: Dict[str, int]) -> bool:
        watermark = self._fresh_watermark(index)
        if watermark is None:
            return False
        for column, fence in fences.items():
            if column not in watermark:
                # Even a fence of 0 (we created the column) requires
                # the replica to have adopted it.
                return False
            if fence - watermark[column] > self.max_staleness_epochs:
                return False
        return True

    def _fresh_watermark(self, index: int) -> Optional[Dict[str, int]]:
        """The replica's per-column epochs, cached for
        ``watermark_interval`` seconds; ``None`` if unreachable."""
        now = time.monotonic()
        with self._lock:
            cached = self._watermarks.get(index)
            if cached is not None and now - cached[0] < self.watermark_interval:
                return cached[1]
        frame = encode_frame(
            request_to_dict(TelemetryRequest(sections=("replication",))),
            codec="json",
        )
        try:
            reply = decode_frame(
                self.replicas[index].exchange(frame, retryable=True)
            )
        except ReproError:
            return None
        sections = reply.get("sections")
        section = (
            sections.get("replication") if isinstance(sections, dict) else None
        )
        epochs = section.get("epochs") if isinstance(section, dict) else None
        if not isinstance(epochs, dict):
            return None
        watermark = {
            str(name): int(epoch)
            for name, epoch in epochs.items()
            if isinstance(epoch, int) and not isinstance(epoch, bool)
        }
        with self._lock:
            self._watermarks[index] = (now, watermark)
        self._obs.metrics.add("replicaset.watermark_polls")
        return watermark

    def _harvest_fences(self, payload: Dict[str, Any], kind: Any,
                        reply: bytes) -> None:
        """Record the epoch each of our primary-bound writes reached
        (the mutation response's ``epoch`` field)."""
        if kind == "batch_request":
            items = payload.get("requests")
            if not isinstance(items, list):
                return
            try:
                responses = decode_frame(reply).get("responses")
            except ReproError:
                return
            if not isinstance(responses, list):
                return
            for item, response in zip(items, responses):
                self._harvest_one(item, response)
            return
        try:
            self._harvest_one(payload, decode_frame(reply))
        except ReproError:
            return

    def _harvest_one(self, request: Any, response: Any) -> None:
        if not isinstance(request, dict) or not isinstance(response, dict):
            return
        epoch = response.get("epoch")
        column = request.get("column")
        if (isinstance(epoch, int) and not isinstance(epoch, bool)
                and isinstance(column, str)):
            # Epoch 0 (a create) is fence-worthy too: it pins reads to
            # replicas that have at least adopted the column.
            with self._lock:
                if (column not in self._fences
                        or epoch > self._fences[column]):
                    self._fences[column] = epoch

    def fences(self) -> Dict[str, int]:
        """Snapshot of the per-column read-your-writes fences."""
        with self._lock:
            return dict(self._fences)
