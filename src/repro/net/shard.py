"""Client-side sharding: one logical column over N catalog columns.

A hot column is the scaling wall of the single-column design: every
query serializes on one per-column lock, no matter how many serving
threads the endpoint runs.  :class:`ShardedRemoteColumn` removes the
wall the way Enc2DB routes one logical query across several physical
encrypted stores and HardIDX partitions its secure index (PAPERS.md):
rows are partitioned across ``N`` ordinary catalog columns (shards
``column#0 .. column#N-1``), each with its own encrypted AVL, lock,
and mutation epoch, and every logical operation fans out as *one*
``batch_request`` whose sub-requests the catalog executes concurrently
(see ``ColumnCatalog._serve_batch``).  Each shard cracks independently
and adapts to exactly the traffic routed to it.

Row placement is deterministic round-robin on the logical row id —
ids arrive pre-mixed (sequential upload order carries no value
information), so round-robin *is* the hash partition, and being
formulaic it keeps the global <-> local id translation stateless:

* ``P`` physical rows per value (2 under ambiguity — the pair stays on
  one shard, a per-shard key rotation must re-encrypt whole pairs).
* global id ``g``: pair ``g // P`` lives on shard ``(g // P) % N`` as
  local pair ``(g // P) // N``, i.e. local id
  ``((g // P) // N) * P + g % P``.
* shard ``s``, local id ``l``: global id
  ``((l // P) * N + s) * P + l % P``.

With ``N == 1`` the translation is the identity, so a 1-shard column
returns byte-identical results to an unsharded one (pinned by tests).
Server-assigned insert ids compose with the same formula: a shard
assigns dense local ids, and distinct shards map them to disjoint
global ids, so inserts routed to any shard can never collide.

The handle speaks through one carrier :class:`RemoteColumn` — batch
sub-requests each name their own column, so a single negotiated
transport serves every shard.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.query import EncryptedQuery
from repro.core.server import ServerResponse
from repro.errors import ProtocolError, RotationConflictError, UpdateError
from repro.net.client import RemoteColumn
from repro.net.protocol import (
    CreateColumnRequest,
    CreateColumnResponse,
    DeleteRequest,
    DeleteResponse,
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    InsertRequest,
    InsertResponse,
    MergeRequest,
    MergeResponse,
    QueryRequest,
    QueryResponse,
    RotateApplyRequest,
    RotateApplyResponse,
    RotateBeginRequest,
    RotateBeginResponse,
    raise_error_response,
)
from repro.net.transport import Transport
from repro.obs import Observability

#: Knuth's multiplicative hash constant, used to mix insert key hints
#: into a shard choice (2654435761 = 2**32 / golden ratio).
_MIX = 2654435761

#: Default per-shard retry budget for fenced rotation conflicts.
DEFAULT_ROTATE_RETRIES = 2


def shard_column_names(column: str, count: int) -> List[str]:
    """The catalog column names backing a logical sharded column."""
    return ["%s#%d" % (column, index) for index in range(count)]


class ShardedRemoteColumn:
    """Scatter-gather protocol calls for one logical sharded column.

    Drop-in for :class:`RemoteColumn` at the session seam: the same
    typed operations, but every one fans out over the shards in a
    single pipelined ``batch_request`` and merges the per-shard
    results, translating between global and per-shard local row ids.

    Args:
        transport: the channel to the endpoint (shared by all shards).
        column: the *logical* column name; shards register under
            ``column#i``.
        shards: number of shards (>= 1).
        physical_per_value: physical rows per logical value (2 under
            ambiguity); an ambiguity pair always lands on one shard.
        obs: observability bundle (``net.shard_fanout`` histogram and
            the carrier's ``net.*`` counters report into it).
        codec: forwarded to the carrier handle.
    """

    def __init__(
        self,
        transport: Transport,
        column: str,
        shards: int,
        physical_per_value: int = 1,
        obs: Observability = None,
        codec: str = "auto",
    ) -> None:
        if shards < 1:
            raise UpdateError("shard count must be >= 1, got %r" % (shards,))
        if physical_per_value not in (1, 2):
            raise UpdateError("physical_per_value must be 1 or 2")
        self.column = column
        self.shard_count = int(shards)
        self.physical_per_value = int(physical_per_value)
        self.shard_names = shard_column_names(column, self.shard_count)
        self._obs = obs if obs is not None else Observability()
        self._fanout = self._obs.metrics.histogram("net.shard_fanout")
        self._carrier = RemoteColumn(
            transport, self.shard_names[0], obs=self._obs, codec=codec
        )
        self._next_insert_shard = 0

    # -- id translation ----------------------------------------------------------

    def shard_of(self, global_id: int) -> int:
        """The shard a global physical id lives on."""
        return (int(global_id) // self.physical_per_value) % self.shard_count

    def to_local(self, global_id: int) -> Tuple[int, int]:
        """``(shard, local id)`` for one global physical id."""
        pair, offset = divmod(int(global_id), self.physical_per_value)
        shard, local_pair = pair % self.shard_count, pair // self.shard_count
        return shard, local_pair * self.physical_per_value + offset

    def to_global(self, shard: int, local_id: int) -> int:
        """Global physical id of ``local_id`` on ``shard``."""
        local_pair, offset = divmod(int(local_id), self.physical_per_value)
        return (
            local_pair * self.shard_count + shard
        ) * self.physical_per_value + offset

    def _to_global_array(self, shard: int, local_ids) -> np.ndarray:
        """Vectorized :meth:`to_global` for a response id array."""
        ids = np.asarray(local_ids, dtype=np.int64)
        per = self.physical_per_value
        return (ids // per * self.shard_count + shard) * per + ids % per

    # -- carrier delegation ------------------------------------------------------

    @property
    def transport(self) -> Transport:
        """The shared underlying transport."""
        return self._carrier.transport

    @property
    def codec(self) -> str:
        """The frame codec in effect on the carrier."""
        return self._carrier.codec

    @property
    def last_sent_bytes(self) -> int:
        """Request-frame length of the most recent fan-out exchange."""
        return self._carrier.last_sent_bytes

    @property
    def last_received_bytes(self) -> int:
        """Response-frame length of the most recent fan-out exchange."""
        return self._carrier.last_received_bytes

    def close(self) -> None:
        """Close the underlying transport."""
        self._carrier.close()

    # -- batching helpers --------------------------------------------------------

    def _call_many(self, requests: Sequence, fanout: int) -> List:
        """One scatter-gather round trip; re-raises the first slot error.

        The ``shard-fanout`` span parents the carrier's ``rpc`` span,
        so a distributed trace shows which fan-out caused each batched
        round trip (the trace context rides the batch envelope and its
        sub-envelopes).
        """
        self._fanout.observe(fanout)
        with self._obs.span("shard-fanout", column=self.column,
                            shards=self.shard_count, fanout=fanout):
            responses = self._carrier.call_many(requests)
        for response in responses:
            if isinstance(response, ErrorResponse):
                raise_error_response(response)
        return responses

    @staticmethod
    def _expect(response, expected_type):
        if not isinstance(response, expected_type):
            raise ProtocolError(
                "expected %s, got %s"
                % (expected_type.__name__, type(response).__name__)
            )
        return response

    # -- typed operations --------------------------------------------------------

    def create(
        self,
        rows: Sequence,
        row_ids: Sequence[int],
        config: Dict[str, Any] = None,
    ) -> int:
        """Partition and upload the column; returns total rows stored.

        Every shard is created even when its partition is empty, so the
        geometry at the catalog always matches the routing table here.
        """
        buckets: List[Tuple[List, List[int]]] = [
            ([], []) for _ in range(self.shard_count)
        ]
        for row, global_id in zip(rows, row_ids):
            shard, local_id = self.to_local(int(global_id))
            buckets[shard][0].append(row)
            buckets[shard][1].append(local_id)
        config = dict(config or {})
        requests = [
            CreateColumnRequest(
                column=name,
                rows=tuple(shard_rows),
                row_ids=tuple(shard_ids),
                config=config,
                shard={
                    "of": self.column,
                    "index": index,
                    "count": self.shard_count,
                    "physical_per_value": self.physical_per_value,
                },
            )
            for index, (name, (shard_rows, shard_ids)) in enumerate(
                zip(self.shard_names, buckets)
            )
        ]
        responses = self._call_many(requests, fanout=self.shard_count)
        return sum(
            self._expect(r, CreateColumnResponse).rows_stored
            for r in responses
        )

    def query(self, query: EncryptedQuery) -> ServerResponse:
        """Fan one encrypted query out to every shard; merge results."""
        responses = self._call_many(
            [QueryRequest(column=name, query=query) for name in self.shard_names],
            fanout=self.shard_count,
        )
        return self._merge_query_responses(responses)

    def query_many(
        self, queries: Sequence[EncryptedQuery]
    ) -> List[ServerResponse]:
        """Pipeline many queries, each fanned over every shard, in one
        round trip (``len(queries) * shards`` sub-requests)."""
        queries = list(queries)
        if not queries:
            return []
        requests = [
            QueryRequest(column=name, query=query)
            for query in queries
            for name in self.shard_names
        ]
        responses = self._call_many(requests, fanout=self.shard_count)
        n = self.shard_count
        return [
            self._merge_query_responses(responses[i * n:(i + 1) * n])
            for i in range(len(queries))
        ]

    def _merge_query_responses(self, responses: Sequence) -> ServerResponse:
        """Concatenate per-shard responses in shard order, mapping each
        shard's local row ids back to global ids."""
        id_parts: List[np.ndarray] = []
        rows: List = []
        for shard, response in enumerate(responses):
            body = self._expect(response, QueryResponse).response
            id_parts.append(self._to_global_array(shard, body.row_ids))
            rows.extend(body.rows)
        if id_parts:
            row_ids = np.concatenate(id_parts)
        else:  # pragma: no cover - shard_count >= 1 always yields parts
            row_ids = np.array([], dtype=np.int64)
        return ServerResponse(row_ids=row_ids, rows=rows)

    def _group_by_shard(
        self, global_ids: Sequence[int]
    ) -> Dict[int, Tuple[List[int], List[int]]]:
        """``shard -> (positions in the input, local ids)``."""
        groups: Dict[int, Tuple[List[int], List[int]]] = {}
        for position, global_id in enumerate(global_ids):
            shard, local_id = self.to_local(int(global_id))
            positions, locals_ = groups.setdefault(shard, ([], []))
            positions.append(position)
            locals_.append(local_id)
        return groups

    def fetch(self, row_ids: Sequence[int]) -> List:
        """Materialise rows by global id, preserving input order."""
        row_ids = [int(i) for i in row_ids]
        if not row_ids:
            return []
        groups = self._group_by_shard(row_ids)
        shards = sorted(groups)
        responses = self._call_many(
            [
                FetchRequest(
                    column=self.shard_names[shard],
                    row_ids=tuple(groups[shard][1]),
                )
                for shard in shards
            ],
            fanout=len(shards),
        )
        out: List = [None] * len(row_ids)
        for shard, response in zip(shards, responses):
            rows = self._expect(response, FetchResponse).rows
            for position, row in zip(groups[shard][0], rows):
                out[position] = row
        return out

    def insert(self, rows: Sequence, key_hint: int = None) -> List[int]:
        """Insert one value's physical rows on one shard.

        ``key_hint`` (the plaintext value, when the caller holds it)
        picks the shard by multiplicative hash so repeated inserts of
        one hot value pile onto a single shard's pending buffer instead
        of all of them; without a hint shards are used round-robin.
        Returns the assigned *global* physical ids.

        An ambiguity pair must stay together, so ``rows`` must be a
        multiple of ``physical_per_value``.
        """
        rows = list(rows)
        if len(rows) % self.physical_per_value:
            raise UpdateError(
                "insert of %d rows is not a whole number of values "
                "(%d physical rows per value)"
                % (len(rows), self.physical_per_value)
            )
        if key_hint is not None:
            shard = ((int(key_hint) * _MIX) & 0xFFFFFFFF) % self.shard_count
        else:
            shard = self._next_insert_shard
            self._next_insert_shard = (shard + 1) % self.shard_count
        self._fanout.observe(1)
        response = self._carrier.call(
            InsertRequest(column=self.shard_names[shard], rows=tuple(rows))
        )
        local_ids = self._expect(response, InsertResponse).row_ids
        return [self.to_global(shard, local_id) for local_id in local_ids]

    def delete(self, row_ids: Sequence[int]) -> int:
        """Tombstone rows by global id; returns the count processed."""
        row_ids = [int(i) for i in row_ids]
        if not row_ids:
            return 0
        groups = self._group_by_shard(row_ids)
        shards = sorted(groups)
        responses = self._call_many(
            [
                DeleteRequest(
                    column=self.shard_names[shard],
                    row_ids=tuple(groups[shard][1]),
                )
                for shard in shards
            ],
            fanout=len(shards),
        )
        return sum(
            self._expect(r, DeleteResponse).deleted for r in responses
        )

    def merge(self) -> int:
        """Merge every shard's pending buffer; returns the summed delta."""
        responses = self._call_many(
            [MergeRequest(column=name) for name in self.shard_names],
            fanout=self.shard_count,
        )
        return sum(self._expect(r, MergeResponse).delta for r in responses)

    # -- rotation ----------------------------------------------------------------

    def rotate_shards(
        self,
        reencrypt: Callable[[List[int], Sequence], Tuple[Sequence, Sequence[int]]],
        retries: int = DEFAULT_ROTATE_RETRIES,
    ) -> int:
        """Rotate shard by shard, each under its own mutation fence.

        ``reencrypt(global_ids, rows)`` receives one shard's live rows
        (ids already translated to global) and returns ``(new_rows,
        new_global_ids)`` — re-encrypted rows that must stay on the
        same shard (ids are translated back and checked).  Because the
        fence is per shard, a concurrent write conflicts with *its*
        shard only: that shard is re-begun and re-encrypted up to
        ``retries`` more times while every other shard's rotation
        stands.  Returns the total rows stored across shards.

        Rotation is not atomic across shards: until the last shard
        applies, earlier shards already hold rows under the new key.
        Callers must not run queries against the logical column while a
        rotation is in flight (the session enforces this by rotating
        synchronously), and a rotation that exhausts its retries raises
        with the column split across keys — re-running it is not safe;
        restore from a snapshot instead.
        """
        total = 0
        for shard, name in enumerate(self.shard_names):
            attempts_left = max(0, int(retries))
            while True:
                begin = self._expect(
                    self._carrier.call(RotateBeginRequest(column=name)),
                    RotateBeginResponse,
                )
                local_ids = [int(i) for i in begin.response.row_ids]
                global_ids = [self.to_global(shard, l) for l in local_ids]
                new_rows, new_global_ids = reencrypt(
                    global_ids, begin.response.rows
                )
                new_local_ids = []
                for global_id in new_global_ids:
                    owner, local_id = self.to_local(int(global_id))
                    if owner != shard:
                        raise UpdateError(
                            "re-encrypted row %d routes to shard %d, "
                            "not the shard %d being rotated"
                            % (global_id, owner, shard)
                        )
                    new_local_ids.append(local_id)
                try:
                    response = self._carrier.call(
                        RotateApplyRequest(
                            column=name,
                            rows=tuple(new_rows),
                            row_ids=tuple(new_local_ids),
                            fence=begin.fence,
                        )
                    )
                    total += self._expect(
                        response, RotateApplyResponse
                    ).rows_stored
                    break
                except RotationConflictError:
                    if attempts_left <= 0:
                        raise
                    attempts_left -= 1
        return total
