"""Wire protocol: the message envelopes crossing the client/server seam.

The paper's deployment model (§2.1, §4) is an *outsourced* database:
the trusted client and the honest-but-curious server are separate
parties that exchange only ciphertext messages.  This module makes
that seam explicit.  Every operation a session performs against a
server is one of the request envelopes below; every answer is one of
the response envelopes.  Envelopes serialize to JSON-compatible
dictionaries built on the :mod:`repro.crypto.serialization` codecs
(ciphertexts, queries, responses), each tagged with a ``kind`` and a
``version`` so future layouts can coexist — including a versioned
:class:`ErrorResponse` that carries typed failures across the wire.

A *frame* is the canonical encoding of one envelope.  Two codecs
exist: ``"json"`` (compact UTF-8 JSON with sorted keys — the v1 wire
format, always understood) and ``"binary"`` (the compact
:mod:`repro.net.binframe` codec: magic + version + codec-id header,
varint lengths, big-int numerators as sign + magnitude bytes).  Both
are deterministic — the same envelope always encodes to the same bytes
— so the loopback and TCP transports produce byte-identical traffic
for the same workload (pinned by tests), and measured frame lengths
are meaningful transfer accounting.  :func:`decode_frame` auto-detects
the codec by the first byte, and peers negotiate the preferred codec
with a ``hello`` envelope (old JSON-only peers answer it with an error
envelope, which downgrades the client to JSON).

Pipelining: a ``batch_request`` envelope carries N independent
sub-request envelopes in one frame; the catalog answers with a
``batch_response`` carrying one response envelope per sub-request —
error envelopes included, so one failing sub-request never poisons its
batch.

The column addressed by a request is named: one endpoint (a
:class:`~repro.net.catalog.ColumnCatalog`) hosts many columns, each
backed by its own :class:`~repro.core.server.SecureServer` engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.query import EncryptedQuery
from repro.core.server import ServerResponse
from repro.crypto.ciphertext import ValueCiphertext
from repro.crypto.serialization import (
    ciphertext_from_dict,
    ciphertext_to_dict,
    query_from_dict,
    query_to_dict,
    response_from_dict as server_response_from_dict,
    response_to_dict as server_response_to_dict,
)
from repro.errors import (
    PersistenceError,
    ProtocolError,
    QueryError,
    ReadOnlyError,
    ReproError,
    RotationConflictError,
    SerializationError,
    ServerBusyError,
    TransportError,
    UpdateError,
)

from repro.net.binframe import (
    decode_binary_frame,
    encode_binary_frame,
    is_binary_frame,
)

#: Version tag carried by every envelope on the wire.
PROTOCOL_VERSION = 1

#: Frame codecs this peer can speak, preference-ordered for hello.
CODECS: Tuple[str, ...] = ("binary", "json")

#: Server-engine configuration keys a ``create_column`` request may
#: carry; the defaults mirror :class:`~repro.core.server.SecureServer`.
CONFIG_DEFAULTS: Dict[str, Any] = {
    "engine": "adaptive",
    "auto_merge_threshold": None,
    "min_piece_size": 1,
    "use_three_way": False,
    "use_paper_tree_algorithms": False,
    "record_stats": True,
}


# -- request envelopes ----------------------------------------------------------


@dataclass(frozen=True)
class HelloRequest:
    """Codec negotiation: the codecs the client can speak, in
    preference order.  The one column-less request envelope — it
    addresses the endpoint, not a column."""

    codecs: Tuple[str, ...] = CODECS


@dataclass(frozen=True)
class BatchRequest:
    """N independent sub-requests pipelined into one frame.

    Sub-requests may address different columns; batches never nest.
    """

    requests: Tuple[Any, ...]


@dataclass(frozen=True)
class TelemetryRequest:
    """Fetch the endpoint's live telemetry snapshot.

    Column-less like ``hello`` — it addresses the serving process, not
    a column.  ``sections`` optionally restricts the reply to named
    sections (``metrics``, ``tracer``, ``slow_queries``, ``catalog``,
    ``pool``, ...); ``None`` (omitted from the wire) means *all*.
    Unknown section names are ignored, so clients stay compatible with
    servers that export fewer sections.
    """

    sections: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class CreateColumnRequest:
    """Upload a freshly encrypted column under a name.

    ``shard`` optionally declares the column one slice of a logical
    sharded column: ``{"of": logical_name, "index": i, "count": n,
    "physical_per_value": p}``.  It is omitted from the wire when
    ``None``, so unsharded frames stay byte-identical to older peers'.
    """

    column: str
    rows: Tuple[ValueCiphertext, ...]
    row_ids: Tuple[int, ...]
    config: Dict[str, Any] = field(default_factory=dict)
    shard: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class QueryRequest:
    """One range/point query against a named column."""

    column: str
    query: EncryptedQuery


@dataclass(frozen=True)
class FetchRequest:
    """Materialise rows of a named column by physical id (tuple
    reconstruction)."""

    column: str
    row_ids: Tuple[int, ...]


@dataclass(frozen=True)
class InsertRequest:
    """Buffer newly encrypted rows into a named column."""

    column: str
    rows: Tuple[ValueCiphertext, ...]


@dataclass(frozen=True)
class DeleteRequest:
    """Tombstone rows of a named column by physical id."""

    column: str
    row_ids: Tuple[int, ...]


@dataclass(frozen=True)
class MergeRequest:
    """Fold a named column's pending buffer into its cracked column."""

    column: str


@dataclass(frozen=True)
class RotateBeginRequest:
    """Start a key rotation: merge pending state and return every live
    row of the column (the client re-encrypts them under a new key)."""

    column: str


@dataclass(frozen=True)
class RotateApplyRequest:
    """Finish a key rotation: replace the column's state with rows
    re-encrypted under the new key.  The server rebuilds the engine
    with the column's original configuration; the adaptive index
    restarts empty (its structure was derived under old ciphertexts).

    ``fence`` is the mutation epoch returned by ``rotate_begin``: the
    catalog refuses the apply with a ``conflict`` error envelope if the
    column mutated since that epoch, so concurrent inserts or deletes
    are never silently erased by the rebuild.  ``None`` (a pre-fence
    client) skips the check."""

    column: str
    rows: Tuple[ValueCiphertext, ...]
    row_ids: Tuple[int, ...]
    fence: Optional[int] = None


@dataclass(frozen=True)
class ReplicateSubscribeRequest:
    """A read replica joins the primary's replication feed.

    Column-less like ``hello`` — it addresses the serving process.  The
    primary answers with a consistent catalog snapshot and the WAL
    sequence number it captures, from which the replica starts pulling
    entries.  ``replica_id`` names the replica in the primary's
    telemetry (``replication.lag_epochs.<replica_id>``)."""

    replica_id: str


@dataclass(frozen=True)
class ReplicateEntriesRequest:
    """Pull WAL entries after a sequence number (the catch-up loop).

    The primary returns entries with ``seq > after_seq`` (bounded by
    ``limit``) plus its current log head, so the replica knows how far
    behind it still is.  If ``after_seq`` predates the primary's
    retained log (compacted away), the reply carries ``reset`` and the
    replica must re-subscribe from a fresh snapshot."""

    replica_id: str
    after_seq: int
    limit: Optional[int] = None


@dataclass(frozen=True)
class ReplicateAckRequest:
    """Report replication progress: the last applied sequence number
    and the replica's per-column mutation epochs.  The primary compares
    them against its own epochs to publish the per-replica
    ``replication.lag_epochs`` gauge."""

    replica_id: str
    seq: int
    epochs: Dict[str, int] = field(default_factory=dict)


# -- response envelopes ---------------------------------------------------------


@dataclass(frozen=True)
class HelloResponse:
    """Codecs the server supports; the client upgrades to the first
    one both sides share (preferring its own order)."""

    codecs: Tuple[str, ...] = CODECS


@dataclass(frozen=True)
class BatchResponse:
    """One response envelope per sub-request, in request order.

    Failed sub-requests appear as :class:`ErrorResponse` items; the
    others carry their normal typed responses.
    """

    responses: Tuple[Any, ...]


@dataclass(frozen=True)
class TelemetryResponse:
    """The telemetry sections the endpoint serves.

    ``sections`` maps section name to a JSON-compatible payload (the
    producers guarantee JSON compatibility: metrics snapshots, tracer
    summaries, slow-query rings, pool state are all plain dicts).
    """

    sections: Dict[str, Any]


@dataclass(frozen=True)
class CreateColumnResponse:
    """Acknowledges a column upload with the stored physical row count.

    ``epoch`` is the column's mutation epoch after creation (0); like
    every mutation-response epoch it is omitted from the wire when
    ``None`` (a pre-replication server), so old frames keep their
    bytes.  Clients use it as a read-your-writes fence when routing
    reads across replicas."""

    column: str
    rows_stored: int
    epoch: Optional[int] = None


@dataclass(frozen=True)
class QueryResponse:
    """The qualifying rows of one query, in a single round."""

    response: ServerResponse


@dataclass(frozen=True)
class FetchResponse:
    """Rows materialised by id, parallel to the requested ids."""

    rows: Tuple[ValueCiphertext, ...]


@dataclass(frozen=True)
class InsertResponse:
    """Physical ids assigned to buffered rows, in request order.

    ``epoch`` is the column's mutation epoch after the insert (the
    replica-read fence); omitted from the wire when ``None``."""

    row_ids: Tuple[int, ...]
    epoch: Optional[int] = None


@dataclass(frozen=True)
class DeleteResponse:
    """Acknowledges tombstoning with the number of ids processed.

    ``epoch`` as on :class:`InsertResponse`."""

    deleted: int
    epoch: Optional[int] = None


@dataclass(frozen=True)
class MergeResponse:
    """Row-count delta applied by the merge (inserts minus reclaims).

    ``epoch`` as on :class:`InsertResponse`."""

    delta: int
    epoch: Optional[int] = None


@dataclass(frozen=True)
class RotateBeginResponse:
    """Every live row of the column, for client-side re-encryption.

    ``fence`` is the column's mutation epoch at snapshot time; the
    client echoes it in ``rotate_apply`` so the catalog can reject the
    rebuild if the column mutated in between.  ``None`` only from a
    pre-fence server."""

    response: ServerResponse
    fence: Optional[int] = None


@dataclass(frozen=True)
class RotateApplyResponse:
    """Acknowledges the rebuilt column with its stored row count.

    ``epoch`` as on :class:`InsertResponse`."""

    rows_stored: int
    epoch: Optional[int] = None


@dataclass(frozen=True)
class ReplicateSubscribeResponse:
    """A consistent catalog snapshot plus the WAL sequence number it
    captures.  The replica restores the snapshot and pulls entries
    after ``seq``."""

    snapshot: Dict[str, Any]
    seq: int


@dataclass(frozen=True)
class ReplicateEntriesResponse:
    """WAL entries after the requested sequence number.

    ``entries`` are the validated WAL entry dicts (``{"seq", "column",
    "epoch", "request"}``); ``seq`` is the primary's current log head
    (so ``seq - entries[-1].seq`` is the remaining backlog).  ``reset``
    (omitted from the wire when false) means the requested range was
    compacted away and the replica must re-subscribe."""

    entries: Tuple[Dict[str, Any], ...]
    seq: int
    reset: bool = False


@dataclass(frozen=True)
class ReplicateAckResponse:
    """Acknowledges a progress report with the lag the primary computed
    from it (total epochs the replica is behind, summed over columns)."""

    lag_epochs: int


@dataclass(frozen=True)
class ErrorResponse:
    """A typed, versioned failure envelope.

    ``code`` selects the exception class re-raised client-side (see
    :data:`ERROR_CLASSES`); ``message`` is the server-side detail.
    """

    code: str
    message: str


#: Wire ``code`` -> exception class raised at the client.  Unknown
#: codes degrade to :class:`ProtocolError` (never a silent pass).
ERROR_CLASSES: Dict[str, type] = {
    "query": QueryError,
    "update": UpdateError,
    "read_only": ReadOnlyError,
    "conflict": RotationConflictError,
    "serialization": SerializationError,
    "persistence": PersistenceError,
    "transport": TransportError,
    "busy": ServerBusyError,
    "protocol": ProtocolError,
    "internal": ProtocolError,
}

#: Most-specific-first mapping of server-side exceptions to wire codes.
_ERROR_CODES: Tuple[Tuple[type, str], ...] = (
    (ServerBusyError, "busy"),
    (RotationConflictError, "conflict"),
    (ReadOnlyError, "read_only"),
    (TransportError, "transport"),
    (QueryError, "query"),
    (UpdateError, "update"),
    (PersistenceError, "persistence"),
    (SerializationError, "serialization"),
    (ProtocolError, "protocol"),
    (ReproError, "internal"),
)


def error_response_for(exc: BaseException) -> ErrorResponse:
    """Wrap a server-side exception into a wire error envelope."""
    for cls, code in _ERROR_CODES:
        if isinstance(exc, cls):
            return ErrorResponse(code=code, message=str(exc))
    return ErrorResponse(
        code="internal", message="%s: %s" % (type(exc).__name__, exc)
    )


def raise_error_response(error: ErrorResponse) -> None:
    """Re-raise a wire error envelope as its typed exception."""
    raise ERROR_CLASSES.get(error.code, ProtocolError)(error.message)


# -- dict codecs ----------------------------------------------------------------

_REQUEST_KINDS = {
    HelloRequest: "hello",
    BatchRequest: "batch_request",
    TelemetryRequest: "telemetry_request",
    CreateColumnRequest: "create_column",
    QueryRequest: "query_request",
    FetchRequest: "fetch_request",
    InsertRequest: "insert_request",
    DeleteRequest: "delete_request",
    MergeRequest: "merge_request",
    RotateBeginRequest: "rotate_begin",
    RotateApplyRequest: "rotate_apply",
    ReplicateSubscribeRequest: "replicate_subscribe",
    ReplicateEntriesRequest: "replicate_entries",
    ReplicateAckRequest: "replicate_ack",
}

_RESPONSE_KINDS = {
    HelloResponse: "hello_response",
    BatchResponse: "batch_response",
    TelemetryResponse: "telemetry_response",
    CreateColumnResponse: "create_column_response",
    QueryResponse: "query_response",
    FetchResponse: "fetch_response",
    InsertResponse: "insert_response",
    DeleteResponse: "delete_response",
    MergeResponse: "merge_response",
    RotateBeginResponse: "rotate_begin_response",
    RotateApplyResponse: "rotate_apply_response",
    ReplicateSubscribeResponse: "replicate_subscribe_response",
    ReplicateEntriesResponse: "replicate_entries_response",
    ReplicateAckResponse: "replicate_ack_response",
    ErrorResponse: "error_response",
}


def _envelope(kind: str, **fields) -> Dict[str, Any]:
    payload = {"kind": kind, "version": PROTOCOL_VERSION}
    payload.update(fields)
    return payload


def _check_envelope(data: Dict[str, Any], expected: Optional[str] = None) -> str:
    if not isinstance(data, dict):
        raise SerializationError("envelope must be a JSON object")
    kind = data.get("kind")
    if expected is not None and kind != expected:
        raise SerializationError(
            "expected envelope kind %r, got %r" % (expected, kind)
        )
    if data.get("version") != PROTOCOL_VERSION:
        raise SerializationError(
            "unsupported protocol version: %r" % (data.get("version"),)
        )
    if not isinstance(kind, str):
        raise SerializationError("envelope kind must be a string")
    return kind


def _rows_to_list(rows) -> List[Dict[str, Any]]:
    return [ciphertext_to_dict(row) for row in rows]


def _rows_from_list(items) -> Tuple[ValueCiphertext, ...]:
    rows = tuple(ciphertext_from_dict(item) for item in items)
    if not all(isinstance(row, ValueCiphertext) for row in rows):
        raise SerializationError("column rows must be value ciphertexts")
    return rows


def _ids_from_list(items) -> Tuple[int, ...]:
    return tuple(int(i) for i in items)


def _codecs_from_list(items) -> Tuple[str, ...]:
    if not isinstance(items, list) or not all(
        isinstance(item, str) for item in items
    ):
        raise SerializationError("codecs must be a list of strings")
    return tuple(items)


def _sections_filter_from_list(items) -> Tuple[str, ...]:
    if not isinstance(items, list) or not all(
        isinstance(item, str) for item in items
    ):
        raise SerializationError(
            "telemetry sections filter must be a list of strings"
        )
    return tuple(items)


def _sections_payload_from_dict(data) -> Dict[str, Any]:
    if not isinstance(data, dict) or not all(
        isinstance(key, str) for key in data
    ):
        raise SerializationError(
            "telemetry sections must be an object with string keys"
        )
    return dict(data)


# -- trace-context propagation ---------------------------------------------


#: Keys of the optional ``trace`` field a request envelope may carry.
TRACE_KEYS = ("trace_id", "parent", "sampled")


def trace_from_wire(data) -> Optional[Dict[str, Any]]:
    """Decode an envelope's optional ``trace`` field.

    Returns a validated ``{"trace_id", "parent", "sampled"}`` dict, or
    ``None`` when the field is absent **or malformed** — tracing is
    observability metadata and must never fail a request, so a bad
    trace field degrades to an untraced dispatch rather than an error
    envelope.
    """
    if not isinstance(data, dict):
        return None
    trace_id = data.get("trace_id")
    parent = data.get("parent")
    sampled = data.get("sampled", True)
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if not isinstance(parent, str) or not parent:
        return None
    if not isinstance(sampled, bool):
        return None
    return {"trace_id": trace_id, "parent": parent, "sampled": sampled}


def attach_trace(payload: Dict[str, Any],
                 context: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Inject a trace context into an encoded request envelope dict.

    Mutates and returns ``payload``.  ``None`` context is a no-op, so
    untraced peers keep emitting byte-identical frames (the ``trace``
    key is simply never present).  A ``batch_request`` envelope gets
    the context copied onto every sub-envelope too, so batched (and
    sharded — shard fan-out rides batches) sub-operations stay linked
    even if a peer re-dispatches them individually.
    """
    if context is None:
        return payload
    payload["trace"] = dict(context)
    if payload.get("kind") == "batch_request":
        for sub in payload.get("requests") or ():
            if isinstance(sub, dict):
                sub["trace"] = dict(context)
    return payload


#: Keys a shard descriptor carries on the wire.
_SHARD_KEYS = ("of", "index", "count", "physical_per_value")


def _shard_to_dict(shard) -> Dict[str, Any]:
    if not isinstance(shard, dict):
        raise SerializationError("shard metadata must be an object")
    return _shard_from_dict(shard)


def _shard_from_dict(data) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise SerializationError("shard metadata must be an object")
    unknown = set(data) - set(_SHARD_KEYS)
    if unknown:
        raise SerializationError(
            "unknown shard metadata keys: %s" % ", ".join(sorted(unknown))
        )
    logical = data.get("of")
    if not isinstance(logical, str) or not logical:
        raise SerializationError("shard 'of' must be a non-empty string")
    try:
        count = int(data["count"])
        index = int(data["index"])
        per_value = int(data.get("physical_per_value", 1))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed shard metadata: %s" % exc) from exc
    if count < 1 or not 0 <= index < count or per_value not in (1, 2):
        raise SerializationError(
            "inconsistent shard metadata: index=%r count=%r "
            "physical_per_value=%r" % (index, count, per_value)
        )
    return {
        "of": logical,
        "index": index,
        "count": count,
        "physical_per_value": per_value,
    }


def _replica_id_from_wire(value) -> str:
    if not isinstance(value, str) or not value:
        raise SerializationError("replica_id must be a non-empty string")
    return value


def _epochs_from_dict(data) -> Dict[str, int]:
    if not isinstance(data, dict):
        raise SerializationError("epochs must be an object")
    epochs = {}
    for name, epoch in data.items():
        if not isinstance(name, str) or not name:
            raise SerializationError("epoch keys must be column names")
        if (not isinstance(epoch, int) or isinstance(epoch, bool)
                or epoch < 0):
            raise SerializationError(
                "epoch for column %r must be an int >= 0" % name
            )
        epochs[name] = epoch
    return epochs


def _wal_entries_from_list(items) -> Tuple[Dict[str, Any], ...]:
    # Imported here: repro.core.wal owns the entry shape, and a
    # module-level import would tie every protocol user to the WAL
    # machinery.
    from repro.core.wal import entry_from_wire

    if not isinstance(items, list):
        raise SerializationError("replication entries must be a list")
    return tuple(entry_from_wire(item) for item in items)


def _config_from_dict(data) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise SerializationError("column config must be an object")
    unknown = set(data) - set(CONFIG_DEFAULTS)
    if unknown:
        raise SerializationError(
            "unknown column config keys: %s" % ", ".join(sorted(unknown))
        )
    return dict(data)


def request_to_dict(request) -> Dict[str, Any]:
    """Serialize any request envelope to a JSON-compatible dict."""
    kind = _REQUEST_KINDS.get(type(request))
    if kind is None:
        raise SerializationError(
            "cannot serialize request of type %s" % type(request).__name__
        )
    if isinstance(request, HelloRequest):
        return _envelope(kind, codecs=[str(c) for c in request.codecs])
    if isinstance(request, BatchRequest):
        items = []
        for sub in request.requests:
            if isinstance(sub, BatchRequest):
                raise SerializationError("batch requests cannot nest")
            items.append(request_to_dict(sub))
        return _envelope(kind, requests=items)
    if isinstance(request, TelemetryRequest):
        payload = _envelope(kind)
        # Omitted when None (= all sections) to keep the frame minimal.
        if request.sections is not None:
            payload["sections"] = [str(s) for s in request.sections]
        return payload
    if isinstance(request, ReplicateSubscribeRequest):
        return _envelope(kind, replica_id=str(request.replica_id))
    if isinstance(request, ReplicateEntriesRequest):
        payload = _envelope(
            kind,
            replica_id=str(request.replica_id),
            after_seq=int(request.after_seq),
        )
        # Omitted when None (= server default) to keep the frame minimal.
        if request.limit is not None:
            payload["limit"] = int(request.limit)
        return payload
    if isinstance(request, ReplicateAckRequest):
        return _envelope(
            kind,
            replica_id=str(request.replica_id),
            seq=int(request.seq),
            epochs={str(k): int(v) for k, v in request.epochs.items()},
        )
    if isinstance(request, CreateColumnRequest):
        payload = _envelope(
            kind,
            column=request.column,
            rows=_rows_to_list(request.rows),
            row_ids=[int(i) for i in request.row_ids],
            config=dict(request.config),
        )
        # Omitted when absent so unsharded frames keep their old bytes.
        if request.shard is not None:
            payload["shard"] = _shard_to_dict(request.shard)
        return payload
    if isinstance(request, QueryRequest):
        return _envelope(
            kind, column=request.column, query=query_to_dict(request.query)
        )
    if isinstance(request, (FetchRequest, DeleteRequest)):
        return _envelope(
            kind,
            column=request.column,
            row_ids=[int(i) for i in request.row_ids],
        )
    if isinstance(request, InsertRequest):
        return _envelope(
            kind, column=request.column, rows=_rows_to_list(request.rows)
        )
    if isinstance(request, (MergeRequest, RotateBeginRequest)):
        return _envelope(kind, column=request.column)
    # RotateApplyRequest; the fence is omitted when absent so pre-fence
    # frames stay byte-identical.
    payload = _envelope(
        kind,
        column=request.column,
        rows=_rows_to_list(request.rows),
        row_ids=[int(i) for i in request.row_ids],
    )
    if request.fence is not None:
        payload["fence"] = int(request.fence)
    return payload


def request_from_dict(data: Dict[str, Any]):
    """Reconstruct a request envelope; raises ``SerializationError`` on
    any malformed payload (never ``KeyError``/``TypeError``)."""
    kind = _check_envelope(data)
    try:
        if kind == "hello":
            return HelloRequest(codecs=_codecs_from_list(data["codecs"]))
        if kind == "batch_request":
            items = data["requests"]
            if not isinstance(items, list):
                raise SerializationError("batch requests must be a list")
            subs = []
            for item in items:
                if isinstance(item, dict) and item.get("kind") == "batch_request":
                    raise SerializationError("batch requests cannot nest")
                subs.append(request_from_dict(item))
            return BatchRequest(requests=tuple(subs))
        if kind == "telemetry_request":
            sections = data.get("sections")
            return TelemetryRequest(
                sections=None if sections is None
                else _sections_filter_from_list(sections)
            )
        if kind == "replicate_subscribe":
            return ReplicateSubscribeRequest(
                replica_id=_replica_id_from_wire(data["replica_id"])
            )
        if kind == "replicate_entries":
            limit = data.get("limit")
            return ReplicateEntriesRequest(
                replica_id=_replica_id_from_wire(data["replica_id"]),
                after_seq=int(data["after_seq"]),
                limit=None if limit is None else int(limit),
            )
        if kind == "replicate_ack":
            return ReplicateAckRequest(
                replica_id=_replica_id_from_wire(data["replica_id"]),
                seq=int(data["seq"]),
                epochs=_epochs_from_dict(data.get("epochs", {})),
            )
        column = data["column"]
        if not isinstance(column, str) or not column:
            raise SerializationError("column name must be a non-empty string")
        if kind == "create_column":
            shard = data.get("shard")
            return CreateColumnRequest(
                column=column,
                rows=_rows_from_list(data["rows"]),
                row_ids=_ids_from_list(data["row_ids"]),
                config=_config_from_dict(data.get("config", {})),
                shard=None if shard is None else _shard_from_dict(shard),
            )
        if kind == "query_request":
            return QueryRequest(column=column, query=query_from_dict(data["query"]))
        if kind == "fetch_request":
            return FetchRequest(column=column, row_ids=_ids_from_list(data["row_ids"]))
        if kind == "insert_request":
            return InsertRequest(column=column, rows=_rows_from_list(data["rows"]))
        if kind == "delete_request":
            return DeleteRequest(column=column, row_ids=_ids_from_list(data["row_ids"]))
        if kind == "merge_request":
            return MergeRequest(column=column)
        if kind == "rotate_begin":
            return RotateBeginRequest(column=column)
        if kind == "rotate_apply":
            fence = data.get("fence")
            return RotateApplyRequest(
                column=column,
                rows=_rows_from_list(data["rows"]),
                row_ids=_ids_from_list(data["row_ids"]),
                fence=None if fence is None else int(fence),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed %s payload: %s" % (kind, exc)) from exc
    raise SerializationError("unknown request kind: %r" % kind)


def response_to_dict(response) -> Dict[str, Any]:
    """Serialize any response envelope to a JSON-compatible dict."""
    kind = _RESPONSE_KINDS.get(type(response))
    if kind is None:
        raise SerializationError(
            "cannot serialize response of type %s" % type(response).__name__
        )
    if isinstance(response, HelloResponse):
        return _envelope(kind, codecs=[str(c) for c in response.codecs])
    if isinstance(response, BatchResponse):
        return _envelope(
            kind, responses=[response_to_dict(sub) for sub in response.responses]
        )
    if isinstance(response, TelemetryResponse):
        return _envelope(
            kind, sections=_sections_payload_from_dict(response.sections)
        )
    if isinstance(response, CreateColumnResponse):
        payload = _envelope(
            kind, column=response.column, rows_stored=int(response.rows_stored)
        )
        return _with_epoch(payload, response.epoch)
    if isinstance(response, QueryResponse):
        return _envelope(kind, body=server_response_to_dict(response.response))
    if isinstance(response, RotateBeginResponse):
        payload = _envelope(
            kind, body=server_response_to_dict(response.response)
        )
        if response.fence is not None:
            payload["fence"] = int(response.fence)
        return payload
    if isinstance(response, FetchResponse):
        return _envelope(kind, rows=_rows_to_list(response.rows))
    if isinstance(response, InsertResponse):
        return _with_epoch(
            _envelope(kind, row_ids=[int(i) for i in response.row_ids]),
            response.epoch,
        )
    if isinstance(response, DeleteResponse):
        return _with_epoch(
            _envelope(kind, deleted=int(response.deleted)), response.epoch
        )
    if isinstance(response, MergeResponse):
        return _with_epoch(
            _envelope(kind, delta=int(response.delta)), response.epoch
        )
    if isinstance(response, RotateApplyResponse):
        return _with_epoch(
            _envelope(kind, rows_stored=int(response.rows_stored)),
            response.epoch,
        )
    if isinstance(response, ReplicateSubscribeResponse):
        if not isinstance(response.snapshot, dict):
            raise SerializationError("replication snapshot must be an object")
        return _envelope(
            kind, snapshot=response.snapshot, seq=int(response.seq)
        )
    if isinstance(response, ReplicateEntriesResponse):
        payload = _envelope(
            kind,
            entries=[dict(entry) for entry in response.entries],
            seq=int(response.seq),
        )
        # Omitted when false so steady-state frames stay minimal.
        if response.reset:
            payload["reset"] = True
        return payload
    if isinstance(response, ReplicateAckResponse):
        return _envelope(kind, lag_epochs=int(response.lag_epochs))
    # ErrorResponse
    return _envelope(kind, code=response.code, message=response.message)


def _with_epoch(payload: Dict[str, Any],
                epoch: Optional[int]) -> Dict[str, Any]:
    """Attach a mutation response's epoch fence, omitted when ``None``
    so pre-replication frames keep their exact bytes."""
    if epoch is not None:
        payload["epoch"] = int(epoch)
    return payload


def _epoch_from_wire(data: Dict[str, Any]) -> Optional[int]:
    """Decode a mutation response's optional ``epoch`` fence."""
    epoch = data.get("epoch")
    return None if epoch is None else int(epoch)


def response_from_dict(data: Dict[str, Any]):
    """Reconstruct a response envelope; raises ``SerializationError``
    on any malformed payload."""
    kind = _check_envelope(data)
    try:
        if kind == "hello_response":
            return HelloResponse(codecs=_codecs_from_list(data["codecs"]))
        if kind == "batch_response":
            items = data["responses"]
            if not isinstance(items, list):
                raise SerializationError("batch responses must be a list")
            return BatchResponse(
                responses=tuple(response_from_dict(item) for item in items)
            )
        if kind == "telemetry_response":
            return TelemetryResponse(
                sections=_sections_payload_from_dict(data["sections"])
            )
        if kind == "create_column_response":
            return CreateColumnResponse(
                column=str(data["column"]),
                rows_stored=int(data["rows_stored"]),
                epoch=_epoch_from_wire(data),
            )
        if kind == "query_response":
            return QueryResponse(response=server_response_from_dict(data["body"]))
        if kind == "fetch_response":
            return FetchResponse(rows=_rows_from_list(data["rows"]))
        if kind == "insert_response":
            return InsertResponse(
                row_ids=_ids_from_list(data["row_ids"]),
                epoch=_epoch_from_wire(data),
            )
        if kind == "delete_response":
            return DeleteResponse(
                deleted=int(data["deleted"]), epoch=_epoch_from_wire(data)
            )
        if kind == "merge_response":
            return MergeResponse(
                delta=int(data["delta"]), epoch=_epoch_from_wire(data)
            )
        if kind == "rotate_begin_response":
            fence = data.get("fence")
            return RotateBeginResponse(
                response=server_response_from_dict(data["body"]),
                fence=None if fence is None else int(fence),
            )
        if kind == "rotate_apply_response":
            return RotateApplyResponse(
                rows_stored=int(data["rows_stored"]),
                epoch=_epoch_from_wire(data),
            )
        if kind == "replicate_subscribe_response":
            snapshot = data["snapshot"]
            if not isinstance(snapshot, dict):
                raise SerializationError(
                    "replication snapshot must be an object"
                )
            return ReplicateSubscribeResponse(
                snapshot=snapshot, seq=int(data["seq"])
            )
        if kind == "replicate_entries_response":
            reset = data.get("reset", False)
            if not isinstance(reset, bool):
                raise SerializationError("reset must be a boolean")
            return ReplicateEntriesResponse(
                entries=_wal_entries_from_list(data["entries"]),
                seq=int(data["seq"]),
                reset=reset,
            )
        if kind == "replicate_ack_response":
            return ReplicateAckResponse(lag_epochs=int(data["lag_epochs"]))
        if kind == "error_response":
            return ErrorResponse(
                code=str(data["code"]), message=str(data["message"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed %s payload: %s" % (kind, exc)) from exc
    raise SerializationError("unknown response kind: %r" % kind)


# -- frames ---------------------------------------------------------------------


def encode_frame(payload: Dict[str, Any], codec: str = "json") -> bytes:
    """Canonical frame bytes for one envelope dict.

    Both codecs are deterministic (compact separators plus sorted keys
    for JSON; sorted keys plus encounter-order interning for binary),
    so identical messages produce identical bytes on every transport.
    """
    if codec == "binary":
        return encode_binary_frame(payload)
    if codec != "json":
        raise SerializationError("unknown frame codec: %r" % (codec,))
    try:
        return json.dumps(
            payload, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError("unencodable frame: %s" % exc) from exc


def frame_codec(frame: bytes) -> str:
    """The codec a frame was encoded with (by its first byte).

    Binary frames start with the magic byte 0xAE, which can never open
    a JSON frame; anything else is treated as JSON (and, if corrupt,
    fails in :func:`decode_frame` with a typed error).
    """
    return "binary" if is_binary_frame(frame) else "json"


def decode_frame(frame: bytes) -> Dict[str, Any]:
    """Parse frame bytes back into an envelope dict (codec
    auto-detected by the magic byte)."""
    if is_binary_frame(frame):
        return decode_binary_frame(frame)
    try:
        data = json.loads(frame.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError, RecursionError) as exc:
        raise SerializationError("invalid frame: %s" % exc) from exc
    if not isinstance(data, dict):
        raise SerializationError("frame must encode a JSON object")
    return data
