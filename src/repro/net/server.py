"""TCP endpoint hosting a column catalog (``repro serve``).

A :class:`CatalogTCPServer` accepts persistent connections, reads
length-prefixed protocol frames, routes each through
:meth:`~repro.net.catalog.ColumnCatalog.dispatch`, and writes the
response frame back.  One thread per connection; column-level locking
inside the catalog keeps concurrent sessions on different columns
independent and requests on the same column serialized.

Server-side failures never cross the wire as exceptions: malformed
frames and engine errors are answered with typed error envelopes, and
a connection that turns into garbage (bad length prefix, oversized
frame) is simply closed.
"""

from __future__ import annotations

import socket
import socketserver
import threading

from repro.errors import SerializationError
from repro.net.catalog import ColumnCatalog
from repro.net.protocol import (
    ErrorResponse,
    decode_frame,
    encode_frame,
    frame_codec,
    response_to_dict,
)
from repro.net.transport import LENGTH_PREFIX, MAX_FRAME_BYTES


class _CatalogRequestHandler(socketserver.StreamRequestHandler):
    """Frame loop for one client connection."""

    def handle(self) -> None:
        while True:
            header = self.rfile.read(LENGTH_PREFIX.size)
            if len(header) < LENGTH_PREFIX.size:
                return  # client closed the connection
            (length,) = LENGTH_PREFIX.unpack(header)
            if length > MAX_FRAME_BYTES:
                return  # corrupt stream; drop the connection
            payload = self.rfile.read(length)
            if len(payload) < length:
                return
            try:
                request = decode_frame(payload)
            except SerializationError as exc:
                response = response_to_dict(
                    ErrorResponse(code="serialization", message=str(exc))
                )
            else:
                response = self.server.catalog.dispatch(request)
            # Answer in the codec the request arrived in, so JSON-only
            # clients never see binary frames.
            frame = encode_frame(response, codec=frame_codec(payload))
            try:
                self.wfile.write(LENGTH_PREFIX.pack(len(frame)) + frame)
                self.wfile.flush()
            except OSError:
                return  # client went away mid-response


class CatalogTCPServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server in front of one :class:`ColumnCatalog`.

    Args:
        address: ``(host, port)``; port 0 picks an ephemeral port
            (read it back from :attr:`server_address`).
        catalog: the endpoint's column catalog; a fresh empty one is
            created when omitted.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, catalog: ColumnCatalog = None) -> None:
        self.catalog = catalog if catalog is not None else ColumnCatalog()
        self._connections = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, _CatalogRequestHandler)

    def get_request(self):
        request, client_address = super().get_request()
        with self._connections_lock:
            self._connections.add(request)
        return request, client_address

    def close_request(self, request) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().close_request(request)

    def stop(self) -> None:
        """Stop serving and drop every open connection.

        Clients blocked on an exchange observe a closed socket and
        raise :class:`~repro.errors.TransportError` instead of hanging
        — the crash behaviour the fault-injection tests pin.
        """
        self.shutdown()
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
        self.server_close()


def serve(
    catalog: ColumnCatalog = None, host: str = "127.0.0.1", port: int = 0
) -> CatalogTCPServer:
    """Bind a catalog endpoint; the caller drives ``serve_forever``.

    Returns the bound server so callers can read the actual port
    (``server.server_address``) before starting the accept loop —
    typically on a background thread in tests, or foreground under the
    ``repro serve`` CLI command.
    """
    return CatalogTCPServer((host, port), catalog)
