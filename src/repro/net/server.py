"""TCP endpoint hosting a column catalog (``repro serve``).

:class:`CatalogTCPServer` is a bounded worker-pool front: an accept
loop admits at most ``max_connections`` persistent connections, a
lightweight per-connection reader parses length-prefixed frames, and a
fixed pool of ``workers`` threads executes
:meth:`~repro.net.catalog.ColumnCatalog.dispatch` over a bounded
request queue.  The pool — not the connection count — is the
concurrency limit on engine work, so a thousand idle connections cost
a thousand parked reader threads and nothing more, while dispatch
parallelism stays at ``workers``.

Backpressure is explicit: when the request queue is full (or the
server is draining), the offending frame is answered immediately with
a typed ``busy`` error envelope — the request is *never dispatched*,
so the client may safely retry after a backoff, even for mutations.
Connections beyond ``max_connections`` are refused at accept.

:meth:`CatalogTCPServer.stop` drains gracefully: the listener closes,
readers refuse new frames with ``busy``, queued and in-flight requests
finish and their responses are written, and only then are the
connections torn down.

Each connection processes its frames strictly in order (the reader
waits for the response of frame *n* before reading frame *n+1*),
matching the client's one-outstanding-request protocol and making
response mis-pairing impossible even against a misbehaving client.

Server-side failures never cross the wire as exceptions: malformed
frames and engine errors are answered with typed error envelopes, and
a connection that turns into garbage (bad length prefix, oversized
frame) is simply closed.

:class:`ThreadPerConnectionServer` is the pre-worker-pool front —
unbounded thread-per-connection with no backpressure — kept as the
baseline the transport benchmark measures the pool against.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading

from repro.errors import SerializationError
from repro.net.catalog import ColumnCatalog
from repro.net.protocol import (
    ErrorResponse,
    decode_frame,
    encode_frame,
    frame_codec,
    response_to_dict,
)
from repro.net.transport import LENGTH_PREFIX, MAX_FRAME_BYTES

#: Worker shutdown sentinel; never visible to readers.
_STOP = object()


class _Connection:
    """One accepted client socket plus its write lock.

    ``done`` is the reader/worker handoff event; one per connection
    (not per frame) because a connection has at most one frame in
    flight — the reader clears it before each enqueue.
    """

    __slots__ = ("sock", "address", "write_lock", "done")

    def __init__(self, sock: socket.socket, address) -> None:
        self.sock = sock
        self.address = address
        self.write_lock = threading.Lock()
        self.done = threading.Event()

    def write_frame(self, frame: bytes) -> None:
        with self.write_lock:
            self.sock.sendall(LENGTH_PREFIX.pack(len(frame)) + frame)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best effort
            pass


class CatalogTCPServer:
    """Bounded worker-pool TCP server in front of one :class:`ColumnCatalog`.

    Args:
        address: ``(host, port)``; port 0 picks an ephemeral port
            (read it back from :attr:`server_address`).
        catalog: the endpoint's column catalog; a fresh empty one is
            created when omitted.
        workers: dispatch threads — the bound on concurrent engine
            work.
        max_connections: accepted connections beyond this are closed
            immediately (``net.connections_refused``).
        queue_size: request-queue bound; beyond it frames are answered
            ``busy`` (``net.busy_rejected``).  Defaults to
            ``2 * workers``.
    """

    def __init__(
        self,
        address,
        catalog: ColumnCatalog = None,
        workers: int = 8,
        max_connections: int = 128,
        queue_size: int = None,
    ) -> None:
        self.catalog = catalog if catalog is not None else ColumnCatalog()
        self.workers = max(1, int(workers))
        self.max_connections = max(1, int(max_connections))
        self.queue_size = (
            max(1, int(queue_size)) if queue_size is not None
            else 2 * self.workers
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_size)
        self._metrics = self.catalog.obs.metrics
        # Queue depth is tracked with an explicit lock-guarded counter
        # (incremented on enqueue, decremented on dequeue) rather than
        # sampling qsize(): the last update always writes the true
        # depth, so the gauge decays back to 0 when the queue drains
        # instead of sticking at its high-water mark.
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._connections = set()
        self._connections_lock = threading.Lock()
        self._reader_threads = set()
        self._worker_threads = []
        self._draining = threading.Event()
        self._stopped = False
        self._state_lock = threading.Lock()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind(address)
            listener.listen(min(128, self.max_connections))
        except OSError:
            listener.close()
            raise
        self._listener = listener
        self.server_address = listener.getsockname()
        self._metrics.set("net.workers", self.workers)
        self._metrics.set("net.queue_depth", 0)
        self._metrics.set("net.active_connections", 0)
        self.catalog.register_telemetry_provider("pool", self._pool_telemetry)

    def _pool_telemetry(self) -> dict:
        """The ``pool`` telemetry section: live worker-pool state."""
        with self._depth_lock:
            depth = self._depth
        with self._connections_lock:
            active = len(self._connections)
        return {
            "workers": self.workers,
            "queue_size": self.queue_size,
            "queue_depth": depth,
            "max_connections": self.max_connections,
            "active_connections": active,
            "draining": self._draining.is_set(),
        }

    def _track_depth(self, delta: int) -> None:
        with self._depth_lock:
            self._depth = max(0, self._depth + delta)
            self._metrics.set("net.queue_depth", self._depth)

    # -- serving -----------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread until :meth:`stop`."""
        self._start_workers()
        while not self._draining.is_set():
            try:
                sock, address = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            self._admit(sock, address)

    def _start_workers(self) -> None:
        with self._state_lock:
            if self._worker_threads or self._stopped:
                return
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name="catalog-worker-%d" % index,
                    daemon=True,
                )
                thread.start()
                self._worker_threads.append(thread)

    def _admit(self, sock: socket.socket, address) -> None:
        # Accepted sockets carry SO_REUSEADDR too, so sockets lingering
        # in FIN_WAIT/TIME_WAIT after stop() don't block a successor
        # from rebinding the same port.
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        except OSError:  # pragma: no cover
            pass
        with self._connections_lock:
            admitted = (
                not self._draining.is_set()
                and len(self._connections) < self.max_connections
            )
            if admitted:
                connection = _Connection(sock, address)
                self._connections.add(connection)
                count = len(self._connections)
        if not admitted:
            self._metrics.add("net.connections_refused")
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return
        self._metrics.set("net.active_connections", count)
        thread = threading.Thread(
            target=self._reader_loop,
            args=(connection,),
            name="catalog-reader-%s:%s" % address[:2],
            daemon=True,
        )
        with self._connections_lock:
            self._reader_threads.add(thread)
        thread.start()

    def _reader_loop(self, connection: _Connection) -> None:
        """Parse frames off one connection, strictly one at a time.

        The reader never dispatches: it hands each frame to the worker
        pool and waits for its completion before reading the next, so
        responses can never be mis-paired and one connection can hold
        at most one queue slot.
        """
        sock = connection.sock
        try:
            while True:
                header = self._recv_exact(sock, LENGTH_PREFIX.size)
                if header is None:
                    return  # client closed the connection
                (length,) = LENGTH_PREFIX.unpack(header)
                if length > MAX_FRAME_BYTES:
                    return  # corrupt stream; drop the connection
                payload = self._recv_exact(sock, length)
                if payload is None:
                    return
                if self._draining.is_set():
                    # Graceful drain: new frames are refused (never
                    # silently dropped) and the connection closes.
                    self._refuse(connection, payload, "endpoint draining")
                    return
                done = connection.done
                done.clear()
                try:
                    self._queue.put_nowait((connection, payload, done))
                except queue.Full:
                    self._metrics.add("net.busy_rejected")
                    self._refuse(
                        connection, payload,
                        "request queue full (%d workers, queue %d)"
                        % (self.workers, self.queue_size),
                    )
                    continue
                self._track_depth(+1)
                done.wait()
        finally:
            self._forget(connection)
            with self._connections_lock:
                self._reader_threads.discard(threading.current_thread())

    def _worker_loop(self) -> None:
        obs = self.catalog.obs
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._track_depth(-1)
            connection, payload, done = item
            try:
                # The span records the exception type on exit, so a
                # swallowed failure still shows up in the trace.
                with obs.span("serve-frame"):
                    self._serve_frame(connection, payload)
            except Exception:
                # A connection-level failure (or a defect in an engine
                # below the catalog's own isolation) must never kill a
                # pool worker — but it is counted, never silent.
                self._metrics.add("net.worker_errors")
            finally:
                done.set()

    def _serve_frame(self, connection: _Connection, payload: bytes) -> None:
        try:
            request = decode_frame(payload)
        except SerializationError as exc:
            response = response_to_dict(
                ErrorResponse(code="serialization", message=str(exc))
            )
        else:
            response = self.catalog.dispatch(request)
        # Answer in the codec the request arrived in, so JSON-only
        # clients never see binary frames.
        frame = encode_frame(response, codec=frame_codec(payload))
        try:
            connection.write_frame(frame)
        except OSError:
            self._forget(connection)  # client went away mid-response

    def _refuse(
        self, connection: _Connection, payload: bytes, detail: str
    ) -> None:
        """Answer a frame with a ``busy`` envelope without dispatching.

        The request never reached the catalog, so the client may retry
        it — even a mutation — once the endpoint has capacity.
        """
        response = response_to_dict(
            ErrorResponse(code="busy", message=detail)
        )
        try:
            connection.write_frame(
                encode_frame(response, codec=frame_codec(payload))
            )
        except OSError:
            self._forget(connection)

    @staticmethod
    def _recv_exact(sock: socket.socket, count: int):
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = sock.recv(remaining)
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _forget(self, connection: _Connection) -> None:
        with self._connections_lock:
            if connection not in self._connections:
                return
            self._connections.discard(connection)
            count = len(self._connections)
        connection.close()
        self._metrics.set("net.active_connections", count)

    # -- shutdown ----------------------------------------------------------------

    def stop(self) -> None:
        """Drain and stop: finish in-flight work, then tear down.

        The listener closes first (no new connections), readers refuse
        any frame arriving after this point with a ``busy`` envelope,
        queued and in-flight requests complete and their responses are
        written, and finally every connection is closed — so a client
        blocked on an already-accepted exchange gets its answer, while
        the next exchange raises
        :class:`~repro.errors.TransportError`.
        """
        with self._state_lock:
            if self._stopped:
                return
            self._stopped = True
            workers = list(self._worker_threads)
        self._draining.set()
        # shutdown() before close(): closing the fd alone does not wake
        # a thread blocked in accept(), and that blocked syscall keeps
        # the kernel socket alive in LISTEN state (blocking rebinds).
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - already disconnected
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        # Sentinels queue up *behind* the remaining backlog, so workers
        # finish every accepted request before exiting.
        for _ in workers:
            self._queue.put(_STOP)
        for thread in workers:
            thread.join(timeout=30)
        # A reader racing the drain flag may have enqueued behind the
        # sentinels; refuse those frames so no client is left hanging.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            self._track_depth(-1)
            connection, payload, done = item
            self._refuse(connection, payload, "endpoint draining")
            done.set()
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.close()
        # All workers are drained, so no batch can be in flight: shut
        # down the catalog's parallel-batch pool with them.
        self.catalog.close()
        self._metrics.set("net.active_connections", 0)
        with self._connections_lock:
            readers = list(self._reader_threads)
        for thread in readers:
            thread.join(timeout=5)


class _CatalogRequestHandler(socketserver.StreamRequestHandler):
    """Frame loop for one client connection (baseline server)."""

    def handle(self) -> None:
        while True:
            header = self.rfile.read(LENGTH_PREFIX.size)
            if len(header) < LENGTH_PREFIX.size:
                return  # client closed the connection
            (length,) = LENGTH_PREFIX.unpack(header)
            if length > MAX_FRAME_BYTES:
                return  # corrupt stream; drop the connection
            payload = self.rfile.read(length)
            if len(payload) < length:
                return
            try:
                request = decode_frame(payload)
            except SerializationError as exc:
                response = response_to_dict(
                    ErrorResponse(code="serialization", message=str(exc))
                )
            else:
                response = self.server.catalog.dispatch(request)
            frame = encode_frame(response, codec=frame_codec(payload))
            try:
                self.wfile.write(LENGTH_PREFIX.pack(len(frame)) + frame)
                self.wfile.flush()
            except OSError:
                return  # client went away mid-response


class ThreadPerConnectionServer(socketserver.ThreadingTCPServer):
    """The pre-worker-pool front: one unbounded thread per connection.

    No request queue, no backpressure, no graceful drain — kept as the
    baseline ``benchmarks/bench_transport.py`` measures the worker
    pool against.  Not used by ``repro serve``.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, catalog: ColumnCatalog = None) -> None:
        self.catalog = catalog if catalog is not None else ColumnCatalog()
        self._connections = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, _CatalogRequestHandler)

    def get_request(self):
        request, client_address = super().get_request()
        with self._connections_lock:
            self._connections.add(request)
        return request, client_address

    def close_request(self, request) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().close_request(request)

    def stop(self) -> None:
        """Stop serving and drop every open connection immediately."""
        self.shutdown()
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
        self.server_close()
        self.catalog.close()


def serve(
    catalog: ColumnCatalog = None,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 8,
    max_connections: int = 128,
    queue_size: int = None,
) -> CatalogTCPServer:
    """Bind a catalog endpoint; the caller drives ``serve_forever``.

    Returns the bound server so callers can read the actual port
    (``server.server_address``) before starting the accept loop —
    typically on a background thread in tests, or foreground under the
    ``repro serve`` CLI command.
    """
    return CatalogTCPServer(
        (host, port),
        catalog,
        workers=workers,
        max_connections=max_connections,
        queue_size=queue_size,
    )
