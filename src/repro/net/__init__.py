"""`repro.net` — the explicit client/server seam.

The paper's threat model separates a trusted client from an
honest-but-curious server; this package is that separation made
mechanical.  It has three layers:

* :mod:`repro.net.protocol` — serializable request/response envelopes
  (query, insert, delete, merge, key-rotation begin/apply, column
  upload, tuple-reconstruction fetch, codec-negotiation hello, and the
  pipelined ``batch_request``/``batch_response`` pair) plus a
  versioned error envelope, and two deterministic frame codecs: JSON
  and the compact binary :mod:`repro.net.binframe` format
  (auto-detected on decode, negotiated via hello).
* :mod:`repro.net.transport` — how frames move:
  :class:`LoopbackTransport` (in-process default; still encodes and
  decodes every message) and :class:`TcpTransport` (length-prefixed
  frames to a ``repro serve`` endpoint), both surfacing failures as a
  typed :class:`~repro.errors.TransportError`.
* :mod:`repro.net.catalog` / :mod:`repro.net.server` — the server
  side: a :class:`ColumnCatalog` hosting many named columns (one
  :class:`~repro.core.server.SecureServer` each) behind a single
  dispatcher, fronted by a bounded worker-pool TCP endpoint
  (:class:`CatalogTCPServer`: accept loop + N dispatch workers over a
  bounded queue, ``busy`` backpressure, graceful drain).

:class:`~repro.net.client.RemoteColumn` is the client-side handle
sessions hold instead of a server reference;
:class:`~repro.net.shard.ShardedRemoteColumn` is its scatter-gather
sibling, spreading one logical column over N catalog columns and
fanning every operation out as one parallel batch.
:mod:`repro.net.replication` adds the multi-server topology: a
:class:`~repro.net.replication.ReplicationClient` streams the
primary's WAL into a warm read replica, and a
:class:`~repro.net.replication.ReplicaSet` transport routes reads
across replicas under a bounded-staleness guard while pinning writes
to the primary.  Wire details are documented in ``docs/protocol.md``.
"""

from __future__ import annotations

from repro.net.binframe import (
    decode_binary_frame,
    encode_binary_frame,
    is_binary_frame,
)
from repro.net.catalog import ColumnCatalog
from repro.net.client import RemoteColumn
from repro.net.protocol import (
    CODECS,
    PROTOCOL_VERSION,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    HelloRequest,
    HelloResponse,
    TelemetryRequest,
    TelemetryResponse,
    attach_trace,
    decode_frame,
    encode_frame,
    frame_codec,
    request_from_dict,
    request_to_dict,
    response_from_dict,
    response_to_dict,
    trace_from_wire,
)
from repro.net.replication import ReplicaSet, ReplicationClient
from repro.net.server import (
    CatalogTCPServer,
    ThreadPerConnectionServer,
    serve,
)
from repro.net.shard import ShardedRemoteColumn, shard_column_names
from repro.net.transport import (
    LoopbackTransport,
    TcpTransport,
    Transport,
)

__all__ = [
    "BatchRequest",
    "BatchResponse",
    "CODECS",
    "CatalogTCPServer",
    "ColumnCatalog",
    "ErrorResponse",
    "HelloRequest",
    "HelloResponse",
    "LoopbackTransport",
    "PROTOCOL_VERSION",
    "RemoteColumn",
    "ReplicaSet",
    "ReplicationClient",
    "ShardedRemoteColumn",
    "TcpTransport",
    "TelemetryRequest",
    "TelemetryResponse",
    "ThreadPerConnectionServer",
    "Transport",
    "attach_trace",
    "decode_binary_frame",
    "decode_frame",
    "encode_binary_frame",
    "encode_frame",
    "frame_codec",
    "is_binary_frame",
    "request_from_dict",
    "request_to_dict",
    "response_from_dict",
    "response_to_dict",
    "serve",
    "shard_column_names",
    "trace_from_wire",
]
