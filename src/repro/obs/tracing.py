"""Span-based tracing with a true no-op fast path when disabled.

A :class:`Tracer` hands out context-managed spans::

    with tracer.span("crack", rows=n):
        ...

Spans nest (the tracer keeps an active-span stack **per thread**), are
timed with ``time.perf_counter``, close correctly when the body raises
(recording the exception type on the span), and serialise to JSONL for
offline inspection (``repro trace``, benchmark artifacts).

The disabled path is the design centre: ``span()`` on a disabled tracer
returns a shared singleton whose ``__enter__``/``__exit__`` do nothing —
no allocation, no clock read, no list append — so instrumentation can
stay in every hot path permanently.  The overhead budget is enforced by
``benchmarks/bench_obs_overhead.py``.

Distributed tracing
-------------------

Every span carries three identity fields on top of the local
``index``/``parent``/``depth`` triple:

* ``span_id`` — process-unique (a per-tracer random prefix + the span's
  index), stable across JSONL round trips;
* ``trace_id`` — shared by every span in one causal tree; minted at the
  local root, inherited by children and by remotely-parented spans;
* ``parent_id`` — the ``span_id`` of the causal parent.  Equal to the
  same-thread enclosing span's id, **unless** the span adopted a remote
  context (``remote=``), in which case it is the remote caller's id.

:meth:`Tracer.wire_context` exports the active span as the protocol's
``trace`` field (``{"trace_id", "parent", "sampled"}``) and
``span(name, remote=ctx)`` adopts one on the receiving side, so a
client's ``rpc`` span and the server's ``rpc-serve`` span link into one
tree even though they live in different processes.  A context with
``sampled: false`` suppresses recording (head sampling: the caller's
decision wins).  :func:`merge_traces` stitches the two JSONL dumps back
together.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional


class _NullSpan:
    """The shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        """Ignore attributes (tracing is off)."""
        return self

    @property
    def duration(self) -> float:
        return 0.0


#: Singleton no-op span; identity-comparable so tests can assert the
#: disabled fast path really is allocation-free.
NULL_SPAN = _NullSpan()


_ROOT_TRACE_ID = "%s%08x"


class Span:
    """One timed, named, attributed region of execution.

    Created via :meth:`Tracer.span`; use as a context manager.  The
    span is appended to the tracer's record list on *enter* (so the
    dump is ordered by start time) and finalised on exit.
    """

    __slots__ = ("name", "attrs", "start", "end", "index", "parent",
                 "depth", "error", "trace_id", "parent_id",
                 "_tracer", "_remote", "_span_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any],
                 remote: Optional[Dict[str, Any]] = None):
        self._tracer = tracer
        self._remote = remote
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.index: int = -1
        self.parent: Optional[int] = None
        self.depth: int = 0
        self.error: Optional[str] = None
        self._span_id: Optional[str] = None
        self.trace_id: str = ""
        self.parent_id: Optional[str] = None

    @property
    def span_id(self) -> str:
        """Process-unique id: the tracer's random prefix + the index.

        Derived lazily — most spans are leaves whose id is never read,
        so the hot enter path skips the string formatting.
        """
        span_id = self._span_id
        if span_id is None:
            span_id = self._span_id = "%s-%x" % (
                self._tracer.trace_prefix, self.index
            )
        return span_id

    def __enter__(self) -> "Span":
        tracer = self._tracer
        local = tracer._local
        try:
            stack = local.stack
        except AttributeError:
            stack = local.stack = []
        remote = self._remote
        if stack:
            local_parent = stack[-1]
            self.parent = local_parent.index
            self.depth = len(stack)
            if remote is None:
                self.trace_id = local_parent.trace_id
                self.parent_id = local_parent.span_id
            else:
                # Adopted context: the causal parent lives in another
                # process (or another thread's exported span).
                self.trace_id = remote["trace_id"]
                self.parent_id = remote["parent"]
        elif remote is not None:
            self.trace_id = remote["trace_id"]
            self.parent_id = remote["parent"]
        lock = tracer._lock
        lock.acquire()
        spans = tracer.spans
        self.index = len(spans)
        spans.append(self)
        lock.release()
        if not self.trace_id:
            # A local root mints the trace id: the tracer's random
            # prefix keeps it globally unique, the index keeps it
            # cheap (no per-span entropy syscall on the hot path).
            self.trace_id = _ROOT_TRACE_ID % (tracer.trace_prefix,
                                              self.index)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.error = "%s: %s" % (exc_type.__name__, exc)
        stack = self._tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - malformed nesting, keep best effort
            try:
                stack.remove(self)
            except ValueError:
                pass
        return False

    def set(self, **attrs) -> "Span":
        """Attach or update attributes mid-span; chainable."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (to "now" for an open span)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible record (attributes flattened in)."""
        record = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "index": self.index,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.error is not None:
            record["error"] = self.error
        for key, value in self.attrs.items():
            record.setdefault(key, value)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Span(%r, %.6fs)" % (self.name, self.duration)


class Tracer:
    """Factory and store for spans.

    Concurrency-safe: the active-span stack is per-thread (spans opened
    on a worker-pool thread nest among themselves, never across
    threads) and the shared ``spans`` record list is appended under a
    lock, so ``index`` assignment stays race-free.

    Args:
        enabled: start enabled; flip at runtime with :meth:`enable` /
            :meth:`disable` (a query in flight keeps the spans it
            already opened).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.spans: List[Span] = []
        self.trace_prefix = os.urandom(4).hex()
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's active-span stack (created lazily)."""
        try:
            return self._local.stack
        except AttributeError:
            stack: List[Span] = []
            self._local.stack = stack
            return stack

    def span(self, name: str, remote: Optional[Dict[str, Any]] = None,
             **attrs):
        """A context-managed span, or the no-op singleton when disabled.

        Args:
            remote: an adopted trace context (the decoded wire ``trace``
                field — see :meth:`wire_context`): the new span joins
                that trace with the remote span as its causal parent.
                ``sampled: false`` suppresses the span entirely (the
                caller's head-sampling decision wins).
        """
        if not self.enabled:
            return NULL_SPAN
        if remote is not None and not remote.get("sampled", True):
            return NULL_SPAN
        return Span(self, name, attrs, remote=remote)

    @property
    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def wire_context(self) -> Optional[Dict[str, Any]]:
        """The active span as a protocol ``trace`` field, or ``None``.

        Returns ``None`` when tracing is disabled or no span is open on
        the calling thread — callers then omit the field from the wire,
        keeping frames byte-identical to untraced peers.
        """
        if not self.enabled:
            return None
        stack = self._stack
        if not stack:
            return None
        span = stack[-1]
        return {"trace_id": span.trace_id, "parent": span.span_id,
                "sampled": True}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop recorded spans (open spans stay on the stack)."""
        with self._lock:
            self.spans = []

    # -- exporters -----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All recorded spans as JSON-compatible dicts, start-ordered."""
        with self._lock:
            spans = list(self.spans)
        return [span.to_dict() for span in spans]

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per span."""
        return "\n".join(json.dumps(record) for record in self.to_dicts())

    def dump_jsonl(self, path: str) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        content = self.to_jsonl()
        with open(path, "w") as handle:
            if content:
                handle.write(content + "\n")
        return path

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: count and total seconds.

        Note that nested spans overlap their parents, so totals across
        *different* names do not add up to wall-clock time.
        """
        with self._lock:
            spans = list(self.spans)
        totals: Dict[str, Dict[str, float]] = {}
        for span in spans:
            entry = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            if span.end is not None:
                entry["seconds"] += span.duration
        return totals

    def subtree_summary(self, root: Span) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate over ``root``'s recorded descendants.

        Membership follows the ``parent_id`` chain (so it includes
        spans opened on other threads that adopted ``root``'s exported
        context — e.g. batch slots on the catalog pool), not the
        per-thread nesting stack.  ``root`` itself is excluded.
        """
        if not isinstance(root, Span) or root.index < 0:
            return {}
        with self._lock:
            tail = self.spans[root.index + 1:]
        members = {root.span_id}
        totals: Dict[str, Dict[str, float]] = {}
        for span in tail:
            if span.parent_id in members:
                members.add(span.span_id)
                entry = totals.setdefault(span.name,
                                          {"count": 0, "seconds": 0.0})
                entry["count"] += 1
                if span.end is not None:
                    entry["seconds"] += span.duration
        return totals


# -- trace-dump merging ------------------------------------------------


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL span dump (one record per non-empty line)."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def merge_traces(*record_lists: Iterable[Dict[str, Any]]
                 ) -> List[Dict[str, Any]]:
    """Stitch span-record lists (e.g. client + server dumps) into one tree.

    Records are linked by ``span_id``/``parent_id`` — the identifiers
    are process-unique, so dumps from different processes merge without
    renumbering.  Returns copies in depth-first tree order, each with a
    ``tree_depth`` field giving its depth in the *merged* tree (a
    server span parented by a client span is one level below it, even
    though its local ``depth`` was 0).  Records whose parent is absent
    from every input become roots.

    ``start`` timestamps are ``perf_counter`` values and are only
    comparable within one source list, so sibling order is by start
    time per parent — exact within a process, arbitrary-but-stable
    across processes.
    """
    seen: set = set()
    records: List[Dict[str, Any]] = []
    for one_list in record_lists:
        for record in one_list:
            span_id = record.get("span_id")
            if isinstance(span_id, str) and span_id:
                if span_id in seen:
                    continue
                seen.add(span_id)
            records.append(dict(record))
    by_id = {record["span_id"]: record for record in records
             if isinstance(record.get("span_id"), str)
             and record.get("span_id")}
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for record in records:
        parent_id = record.get("parent_id")
        if isinstance(parent_id, str) and parent_id in by_id \
                and parent_id != record.get("span_id"):
            children.setdefault(parent_id, []).append(record)
        else:
            roots.append(record)

    def start_key(record: Dict[str, Any]) -> float:
        start = record.get("start")
        return float(start) if isinstance(start, (int, float)) else 0.0

    merged: List[Dict[str, Any]] = []
    stack = [(record, 0)
             for record in sorted(roots, key=start_key, reverse=True)]
    while stack:
        record, depth = stack.pop()
        record["tree_depth"] = depth
        merged.append(record)
        kids = children.get(record.get("span_id"), [])
        for child in sorted(kids, key=start_key, reverse=True):
            stack.append((child, depth + 1))
    return merged
