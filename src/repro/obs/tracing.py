"""Span-based tracing with a true no-op fast path when disabled.

A :class:`Tracer` hands out context-managed spans::

    with tracer.span("crack", rows=n):
        ...

Spans nest (the tracer keeps an active-span stack), are timed with
``time.perf_counter``, close correctly when the body raises (recording
the exception type on the span), and serialise to JSONL for offline
inspection (``repro trace``, benchmark artifacts).

The disabled path is the design centre: ``span()`` on a disabled tracer
returns a shared singleton whose ``__enter__``/``__exit__`` do nothing —
no allocation, no clock read, no list append — so instrumentation can
stay in every hot path permanently.  The overhead budget is enforced by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional


class _NullSpan:
    """The shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        """Ignore attributes (tracing is off)."""
        return self

    @property
    def duration(self) -> float:
        return 0.0


#: Singleton no-op span; identity-comparable so tests can assert the
#: disabled fast path really is allocation-free.
NULL_SPAN = _NullSpan()


class Span:
    """One timed, named, attributed region of execution.

    Created via :meth:`Tracer.span`; use as a context manager.  The
    span is appended to the tracer's record list on *enter* (so the
    dump is ordered by start time) and finalised on exit.
    """

    __slots__ = ("name", "attrs", "start", "end", "index", "parent",
                 "depth", "error", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.index: int = -1
        self.parent: Optional[int] = None
        self.depth: int = 0
        self.error: Optional[str] = None

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        self.parent = stack[-1].index if stack else None
        self.depth = len(stack)
        self.index = len(tracer.spans)
        tracer.spans.append(self)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.error = "%s: %s" % (exc_type.__name__, exc)
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - malformed nesting, keep best effort
            try:
                stack.remove(self)
            except ValueError:
                pass
        return False

    def set(self, **attrs) -> "Span":
        """Attach or update attributes mid-span; chainable."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds from enter to exit (to "now" for an open span)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible record (attributes flattened in)."""
        record = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "index": self.index,
        }
        if self.error is not None:
            record["error"] = self.error
        for key, value in self.attrs.items():
            record.setdefault(key, value)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Span(%r, %.6fs)" % (self.name, self.duration)


class Tracer:
    """Factory and store for spans.

    Args:
        enabled: start enabled; flip at runtime with :meth:`enable` /
            :meth:`disable` (a query in flight keeps the spans it
            already opened).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs):
        """A context-managed span, or the no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop recorded spans (open spans stay on the stack)."""
        self.spans = []

    # -- exporters -----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All recorded spans as JSON-compatible dicts, start-ordered."""
        return [span.to_dict() for span in self.spans]

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per span."""
        return "\n".join(json.dumps(record) for record in self.to_dicts())

    def dump_jsonl(self, path: str) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        content = self.to_jsonl()
        with open(path, "w") as handle:
            if content:
                handle.write(content + "\n")
        return path

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: count and total seconds.

        Note that nested spans overlap their parents, so totals across
        *different* names do not add up to wall-clock time.
        """
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            entry = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            if span.end is not None:
                entry["seconds"] += span.duration
        return totals
