"""Named counters, gauges, and histograms (zero-dependency).

The registry is the system's single source of numeric truth: engines,
the server, the protocol session, and the scalar-product kernel all
emit their events here, and every other view — per-query
:class:`~repro.cracking.index.QueryStats`, CLI output, benchmark
reports — is derived from the same counters, so the views cannot drift
from one another.

Three instrument kinds cover everything the evaluation needs:

* :class:`Counter` — monotonically accumulated totals (products per
  kernel tier, bytes sent/received, cracks, phase seconds).  Values may
  be ints or floats; fractional "counters" are how phase *durations*
  accumulate.
* :class:`Gauge` — a last-written value (current AVL depth, current
  piece count, pending-buffer size).
* :class:`Histogram` — a distribution with nearest-rank percentiles
  (cracked-piece sizes, response bytes, cracks per query).  Up to
  :data:`Histogram.DEFAULT_MAX_SAMPLES` observations are kept verbatim
  — percentiles are exact at that scale — and beyond the cap the
  histogram switches to a fixed-size reservoir sample (Vitter's
  algorithm R with a deterministic seed), so memory stays bounded
  under sustained traffic while ``count`` / ``sum`` / ``min`` /
  ``max`` / ``mean`` remain exact and percentiles become unbiased
  estimates over the reservoir.

Everything is plain Python — no third-party dependencies — and cheap
enough to stay enabled permanently (the expensive subsystem, tracing,
lives in :mod:`repro.obs.tracing` behind a no-op guard).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Union

Number = Union[int, float]


class Counter:
    """A named running total (int or float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        """Accumulate ``amount`` (may be fractional, e.g. seconds)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Counter(%r, %r)" % (self.name, self.value)


class Gauge:
    """A named last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Gauge(%r, %r)" % (self.name, self.value)


class Histogram:
    """A named distribution with nearest-rank percentiles.

    Memory is bounded: the first ``max_samples`` observations are kept
    verbatim (percentiles are *exact* at that scale — every histogram
    the benchmarks read stays well under the cap), and beyond the cap
    the kept values become a uniform reservoir sample (Vitter's
    algorithm R, deterministic seed) of everything observed so far.
    ``count``, ``sum``, ``min``, ``max``, and ``mean`` are tracked
    exactly regardless of the cap; only the percentiles degrade — to
    unbiased estimates over ``max_samples`` kept values — once the
    observation count exceeds it.
    """

    __slots__ = (
        "name", "max_samples", "_values", "_sorted",
        "_count", "_sum", "_min", "_max", "_rng",
    )

    #: Reservoir capacity: large enough that p99 over the reservoir is
    #: within a fraction of a percentile rank of the true p99, small
    #: enough that a histogram can never grow past a few tens of KB.
    DEFAULT_MAX_SAMPLES = 4096

    def __init__(self, name: str, max_samples: int = None) -> None:
        self.name = name
        self.max_samples = (
            self.DEFAULT_MAX_SAMPLES if max_samples is None
            else max(1, int(max_samples))
        )
        self._values: List[Number] = []
        self._sorted = True
        self._count = 0
        self._sum: Number = 0
        self._min: Optional[Number] = None
        self._max: Optional[Number] = None
        # Deterministic reservoir randomness: two runs of the same
        # workload report identical summaries.
        self._rng = random.Random(0x5EED)

    def observe(self, value: Number) -> None:
        """Record one observation (O(1), bounded memory)."""
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._values) < self.max_samples:
            if self._values and value < self._values[-1]:
                self._sorted = False
            self._values.append(value)
            return
        # Algorithm R: keep each of the _count values seen so far with
        # probability max_samples / _count.
        slot = self._rng.randrange(self._count)
        if slot < self.max_samples:
            self._values[slot] = value
            self._sorted = False

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> Number:
        return self._sum

    @property
    def min(self) -> Optional[Number]:
        return self._min

    @property
    def max(self) -> Optional[Number]:
        return self._max

    @property
    def mean(self) -> Optional[float]:
        if not self._count:
            return None
        return self._sum / self._count

    @property
    def samples_kept(self) -> int:
        """Observations currently held in memory (<= ``max_samples``)."""
        return len(self._values)

    def percentile(self, q: float) -> Optional[Number]:
        """Nearest-rank percentile: the smallest kept value with at
        least ``q`` percent of kept observations at or below it.

        Exact while the histogram has seen at most ``max_samples``
        observations (``percentile(50)`` of ``[1, 2, 3, 4]`` is 2 —
        rank ``ceil(0.5 * 4) = 2`` — and ``percentile(100)`` is the
        maximum); an unbiased reservoir estimate beyond the cap.
        Returns None on an empty histogram.
        """
        if not self._values:
            return None
        if not 0 < q <= 100:
            raise ValueError("percentile must be in (0, 100], got %r" % q)
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = -(-q * len(self._values) // 100)  # ceil without floats
        return self._values[int(rank) - 1]

    def summary(self) -> Dict[str, Optional[Number]]:
        """Count, sum, extremes, mean, and the standard percentiles."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50) if self._values else None,
            "p90": self.percentile(90) if self._values else None,
            "p99": self.percentile(99) if self._values else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Histogram(%r, n=%d)" % (self.name, self.count)


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted strings (``kernel.fast_products``); the catalogue
    actually emitted by the system is documented in
    ``docs/observability.md``.  A name identifies exactly one
    instrument — asking for a counter and a gauge under the same name
    raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_unclaimed(name, self._counters)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_unclaimed(name, self._gauges)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_unclaimed(name, self._histograms)
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def _check_unclaimed(self, name: str, own: Mapping) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    "metric name %r already used by another instrument kind"
                    % name
                )

    # -- shorthand emitters --------------------------------------------

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment the counter called ``name``."""
        self.counter(name).add(amount)

    def set(self, name: str, value: Number) -> None:
        """Write the gauge called ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        """Record one observation on the histogram called ``name``."""
        self.histogram(name).observe(value)

    # -- reading -------------------------------------------------------

    def counter_value(self, name: str) -> Number:
        """Current value of a counter (0 if it was never touched)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def counter_values(self, names: Iterable[str]) -> Dict[str, Number]:
        """Snapshot of several counters at once (for per-query deltas)."""
        return {name: self.counter_value(name) for name in names}

    def snapshot(self) -> Dict[str, Dict]:
        """Full point-in-time view, JSON-compatible.

        ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: summary_dict}}`` — the exporter behind
        ``repro stats`` and the benchmark metric dumps.
        """
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable fixed-width rendering of :meth:`snapshot`."""
        return render_snapshot(self.snapshot())


def render_snapshot(snap: Dict[str, Dict]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict.

    Module-level so a snapshot fetched over the wire (``repro stats
    --connect``) renders byte-identically to what the serving process
    would print locally.
    """
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters:")
        width = max(len(name) for name in snap["counters"])
        for name, value in snap["counters"].items():
            lines.append("  %-*s  %s" % (width, name, _fmt(value)))
    if snap["gauges"]:
        lines.append("gauges:")
        width = max(len(name) for name in snap["gauges"])
        for name, value in snap["gauges"].items():
            lines.append("  %-*s  %s" % (width, name, _fmt(value)))
    if snap["histograms"]:
        lines.append("histograms:")
        width = max(len(name) for name in snap["histograms"])
        for name, summary in snap["histograms"].items():
            lines.append(
                "  %-*s  count=%d sum=%s min=%s p50=%s p90=%s p99=%s max=%s"
                % (
                    width,
                    name,
                    summary["count"],
                    _fmt(summary["sum"]),
                    _fmt(summary["min"]),
                    _fmt(summary["p50"]),
                    _fmt(summary["p90"]),
                    _fmt(summary["p99"]),
                    _fmt(summary["max"]),
                )
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _fmt(value: Optional[Number]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)
