"""Server-side leakage audit log: what the honest-but-curious server sees.

The scheme's security argument is not "the server learns nothing" but
"the server learns exactly the access pattern that on-demand indexing
requires" (paper, Section 4.1; the same framing HardIDX and ESEDS use
as their central security metric).  This log makes that observable
surface a first-class artifact: every event the server can record about
its own execution — which piece a bound landed in, which positions were
compared against which (opaque) ciphertext, where a crack split, what
was shipped back — is appended here *by the server-side components
themselves*, so the audit is exactly as powerful as a real curious
server and no more.

Ciphertexts are referred to by opaque labels (``ct0``, ``ct1``, ...)
assigned on first sight: the server can tell two bounds apart (it could
anyway — it holds the bytes) but the label carries no plaintext.

:mod:`repro.analysis.leakage` consumes these events to compute
resolved-order leakage from *real* traces instead of synthetic piece
layouts; see ``audit_piece_boundaries`` there.

Disabled by default; :meth:`AuditLog.record` is a cheap early-out so
the hooks can live permanently in the query path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class AuditEvent:
    """One observation; ``kind`` plus kind-specific fields.

    Event kinds and their fields are catalogued in
    ``docs/observability.md``.
    """

    __slots__ = ("kind", "data")

    def __init__(self, kind: str, data: Dict[str, Any]) -> None:
        self.kind = kind
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        record = {"event": self.kind}
        record.update(self.data)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "AuditEvent(%r, %r)" % (self.kind, self.data)


class AuditLog:
    """Append-only record of server-observable events.

    Args:
        enabled: start recording immediately.  When disabled, both
            :meth:`record` and :meth:`ref` are no-ops (``ref`` returns
            a placeholder), so the instrumentation hooks cost one
            attribute check on the hot path.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.events: List[AuditEvent] = []
        # Opaque ciphertext labels, keyed by object identity.  The
        # labelled objects are pinned so a recycled id() can never
        # alias two distinct ciphertexts.
        self._labels: Dict[int, str] = {}
        self._pinned: List[Any] = []

    def __len__(self) -> int:
        return len(self.events)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop recorded events (ciphertext labels are kept stable)."""
        self.events = []

    def record(self, kind: str, **data) -> None:
        """Append one event; no-op when disabled."""
        if not self.enabled:
            return
        self.events.append(AuditEvent(kind, data))

    def ref(self, ciphertext: Optional[Any]) -> Optional[str]:
        """Opaque stable label for a ciphertext object (``ct<N>``).

        None passes through (one-sided queries have absent bounds).
        """
        if ciphertext is None:
            return None
        if not self.enabled:
            return "ct?"
        label = self._labels.get(id(ciphertext))
        if label is None:
            label = "ct%d" % len(self._pinned)
            self._labels[id(ciphertext)] = label
            self._pinned.append(ciphertext)
        return label

    # -- reading -------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event count per kind."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def of_kind(self, kind: str) -> List[AuditEvent]:
        """All events of one kind, in arrival order."""
        return [event for event in self.events if event.kind == kind]

    # -- exporters -----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All events as JSON-compatible dicts, in arrival order."""
        return [event.to_dict() for event in self.events]

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per event."""
        return "\n".join(json.dumps(record) for record in self.to_dicts())

    def dump_jsonl(self, path: str) -> str:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        content = self.to_jsonl()
        with open(path, "w") as handle:
            if content:
                handle.write(content + "\n")
        return path
