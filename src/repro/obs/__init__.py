"""`repro.obs` — tracing, metrics, and leakage auditing for the stack.

The paper's evaluation is a per-query cost decomposition (search vs.
crack vs. scan time, comparisons, bytes moved); its security story is
an access-pattern leakage argument.  This package makes both
first-class and permanent:

* :class:`~repro.obs.tracing.Tracer` — nested, timed spans with a
  true no-op fast path when disabled (``with obs.span("crack"):``).
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters,
  gauges, and exact-percentile histograms; always on (it is the
  substrate per-query :class:`~repro.cracking.index.QueryStats` are
  materialised from, so the two can never drift).
* :class:`~repro.obs.audit.AuditLog` — the server-side record of
  exactly what an honest-but-curious server observes, feeding
  :mod:`repro.analysis.leakage` with real traces.

An :class:`Observability` bundle carries one of each and is threaded
through the stack: ``OutsourcedDatabase`` creates one per session and
hands it to its server, which hands it to its engine and column, so a
whole deployment reports into one registry.  Components constructed
standalone create their own private bundle; engines adopt their
column's bundle so kernel-tier accounting and engine accounting always
share a registry.

Span names, the metric catalogue, and the audit-event schema are
documented in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.audit import AuditEvent, AuditLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)
from repro.obs.telemetry import SlowQueryLog
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    load_trace_jsonl,
    merge_traces,
)


class Observability:
    """One tracer + one metrics registry + one audit log.

    Args:
        tracing: start with span tracing enabled (off by default; the
            disabled tracer is a strict no-op).
        audit: start with server-side leakage auditing enabled.
    """

    __slots__ = ("tracer", "metrics", "audit")

    def __init__(self, tracing: bool = False, audit: bool = False) -> None:
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()
        self.audit = AuditLog(enabled=audit)

    def span(self, name: str, remote=None, **attrs):
        """Shorthand for ``self.tracer.span(...)``."""
        if not self.tracer.enabled:
            return NULL_SPAN
        return self.tracer.span(name, remote=remote, **attrs)

    def snapshot(self) -> dict:
        """The metrics snapshot dict (see ``MetricsRegistry.snapshot``)."""
        return self.metrics.snapshot()


__all__ = [
    "AuditEvent",
    "AuditLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "load_trace_jsonl",
    "merge_traces",
    "render_snapshot",
]
