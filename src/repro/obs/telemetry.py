"""Slow-query ring buffer for the live telemetry plane.

A :class:`SlowQueryLog` keeps the most recent dispatches whose
end-to-end server time crossed a threshold, each with enough context to
diagnose it offline: the request kind, the column, the duration, the
trace id (when the dispatch was traced) and a per-span-name breakdown
of where the time went (``Tracer.subtree_summary`` of the dispatch's
``rpc-serve`` span).

The buffer is bounded (a ring: oldest entries fall off) and
lock-guarded, so a long-running server holds constant memory and the
worker pool can record concurrently.  Its snapshot is one of the
sections served by the ``telemetry_request`` envelope and rendered by
``repro stats --connect`` / ``repro top``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: Default slowness threshold in seconds; ``repro serve
#: --slow-query-threshold`` overrides it per endpoint.
DEFAULT_SLOW_QUERY_THRESHOLD = 0.25

#: Default ring capacity (entries kept).
DEFAULT_SLOW_QUERY_CAPACITY = 64


class SlowQueryLog:
    """Bounded, thread-safe ring of slow-dispatch records.

    Args:
        threshold: dispatches taking at least this many seconds are
            recorded (``0.0`` records everything — useful in tests).
        capacity: ring size; the oldest entry is evicted when full.
    """

    def __init__(self, threshold: float = DEFAULT_SLOW_QUERY_THRESHOLD,
                 capacity: int = DEFAULT_SLOW_QUERY_CAPACITY) -> None:
        self.threshold = float(threshold)
        self.capacity = max(1, int(capacity))
        self._entries: deque = deque(maxlen=self.capacity)
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, kind: str, seconds: float,
               column: Optional[str] = None,
               trace_id: Optional[str] = None,
               breakdown: Optional[Dict[str, Dict[str, float]]] = None,
               **extra: Any) -> Dict[str, Any]:
        """Append one slow-dispatch entry; returns the stored record."""
        entry: Dict[str, Any] = {
            "kind": str(kind),
            "seconds": float(seconds),
            "time": time.time(),
        }
        if column is not None:
            entry["column"] = str(column)
        if trace_id:
            entry["trace_id"] = str(trace_id)
        if breakdown:
            entry["breakdown"] = breakdown
        entry.update(extra)
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[Dict[str, Any]]:
        """Current ring contents, oldest first (copies)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible state: config, totals, and the ring."""
        with self._lock:
            return {
                "threshold_seconds": self.threshold,
                "capacity": self.capacity,
                "recorded": self._recorded,
                "entries": [dict(entry) for entry in self._entries],
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._recorded = 0
