"""SecureScan: the paper's no-index baseline over encrypted data.

"We compare our cracking-based results against a plain scan of the
encrypted numeric data, evaluating queries using comparisons via scalar
products without any indexing or cracking; we call this approach
SecureScan" (Section 5).  Every query costs two scalar products per
row, forever — the dashed reference lines of Figures 6 and 7.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.core.encrypted_column import EncryptedColumn
from repro.core.query import EncryptedQuery
from repro.cracking.index import MeteredQueryStats, QueryStats
from repro.linalg.kernels import ProductCache
from repro.obs import Observability


class SecureScan:
    """Full-column scalar-product scan; never reorganises anything."""

    def __init__(
        self,
        column: EncryptedColumn,
        record_stats: bool = True,
        obs: Observability = None,
    ) -> None:
        self._column = column
        self._record_stats = record_stats
        self._obs = obs if obs is not None else column.obs
        self.stats_log: List[QueryStats] = []

    @property
    def obs(self) -> Observability:
        """The observability bundle shared with the column."""
        return self._obs

    def __len__(self) -> int:
        return len(self._column)

    @property
    def column(self) -> EncryptedColumn:
        """The underlying encrypted column (left in upload order)."""
        return self._column

    def query(self, query: EncryptedQuery) -> Tuple[np.ndarray, List]:
        """Answer one encrypted range query by scanning everything."""
        indices = self.qualifying_indices(query)
        return self._column.row_ids_at(indices), self._column.rows_at(indices)

    def qualifying_indices(self, query: EncryptedQuery) -> np.ndarray:
        """Physical indices of qualifying rows (no side effects)."""
        fast_before, exact_before = self._column.kernel_counters.snapshot()
        tick = time.perf_counter()
        with self._obs.span("full-scan", rows=len(self._column)):
            with self._column.use_product_cache(ProductCache()) as cache:
                indices = self._column.scan_qualifying(
                    0,
                    len(self._column),
                    query.low.eb if query.low is not None else None,
                    query.low_inclusive,
                    query.high.eb if query.high is not None else None,
                    query.high_inclusive,
                )
        audit = self._obs.audit
        if audit.enabled:
            audit.record(
                "scan",
                lo=0,
                hi=len(self._column),
                bound=audit.ref(query.low.eb if query.low is not None else None),
                bound_high=audit.ref(
                    query.high.eb if query.high is not None else None
                ),
                matched=len(indices),
            )
        if self._record_stats:
            fast_after, exact_after = self._column.kernel_counters.snapshot()
            stats = MeteredQueryStats(self._obs.metrics)
            stats.scan_seconds = time.perf_counter() - tick
            stats.result_count = len(indices)
            stats.kernel_fast_products = fast_after - fast_before
            stats.kernel_exact_products = exact_after - exact_before
            stats.product_cache_hits = cache.hits
            self.stats_log.append(stats)
        return indices
