"""Append-only write-ahead log of protocol mutation envelopes.

The server's durability story before this module was a manual snapshot:
a crash lost every crack, insert, and rotation since the last save.
The WAL closes that gap by reusing what the wire protocol already
guarantees — every mutation (``create_column`` / ``insert_request`` /
``delete_request`` / ``merge_request`` / ``rotate_apply``) is a
deterministic, versioned envelope dict — and journaling exactly those
envelopes to disk as they commit.  Restart = restore the last snapshot,
then re-dispatch the logged envelopes after it; the same record stream
doubles as the replication feed warm read replicas consume.

Record format (one mutation)::

    record  := length(4B, big-endian)  crc32(4B, big-endian)  payload
    payload := binary frame (repro.net.binframe) of the entry dict
               {"seq": n, "column": name, "epoch": e, "request": env}

``seq`` is the log-global sequence number (1-based, contiguous within
the retained segments); ``epoch`` is the column's per-column mutation
epoch *after* the mutation (the PR 5 rotation-fence counter), which is
the idempotence fence on replay: an entry whose epoch the restored
column has already reached is skipped, an entry that would skip ahead
is a gap, i.e. corruption.

Segments: records append to ``wal-<first-seq>.seg`` files; a segment
exceeding ``segment_bytes`` is closed and a new one started.
Compaction is snapshot-then-truncate: after a snapshot captured
``seq = s`` is durably saved, every segment whose records are *all*
``<= s`` is deleted.

Crash tolerance: a torn final record (the process died mid-append — a
short header, a short payload, or a CRC mismatch on the very last
record of the newest segment) is silently dropped, and the writer
truncates it away before appending again.  Any other malformation —
a CRC mismatch mid-file, a sequence gap, garbage where a header should
be — raises a typed :class:`~repro.errors.PersistenceError`.

Fsync policy (the durability/latency dial, measured by
``benchmarks/bench_transport.py``):

* ``"always"`` — fsync after every append; an acknowledged mutation
  survives power loss.
* ``"batch"``  — fsync every ``batch_every`` appends (and on close /
  explicit :meth:`WalWriter.sync`); bounded loss window, much cheaper.
* ``"never"``  — flush to the OS only; survives process crashes
  (kill -9) but not power loss.

Every append flushes the Python buffer to the OS regardless of policy,
so concurrent readers (the replication feed) always see complete
records, and a SIGKILL'd process loses nothing it acknowledged under
``"never"`` either.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import PersistenceError

#: Record header: payload length then CRC32 of the payload bytes.
RECORD_HEADER = struct.Struct(">II")

#: Upper bound on one record's payload; larger announcements are
#: corruption, not data (a rotate_apply of a huge column stays far
#: below this).
MAX_RECORD_BYTES = 1 << 30

#: Segment file name pattern: the number is the first seq it holds.
SEGMENT_PATTERN = "wal-%020d.seg"

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "batch", "never")

#: Request kinds the WAL journals (the protocol's mutations).
MUTATION_KINDS = (
    "create_column",
    "insert_request",
    "delete_request",
    "merge_request",
    "rotate_apply",
)


def entry_from_wire(data: Any) -> Dict[str, Any]:
    """Validate one WAL/replication entry dict's shape.

    Raises:
        PersistenceError: on anything but
            ``{"seq": int>=1, "column": str, "epoch": int>=0,
            "request": dict}``.
    """
    if not isinstance(data, dict):
        raise PersistenceError("WAL entry must be an object, got %s"
                               % type(data).__name__)
    unknown = set(data) - {"seq", "column", "epoch", "request"}
    if unknown:
        raise PersistenceError(
            "unknown WAL entry keys: %s" % ", ".join(sorted(unknown))
        )
    seq = data.get("seq")
    epoch = data.get("epoch")
    column = data.get("column")
    request = data.get("request")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise PersistenceError("WAL entry seq must be an int >= 1: %r" % seq)
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        raise PersistenceError(
            "WAL entry epoch must be an int >= 0: %r" % epoch
        )
    if not isinstance(column, str) or not column:
        raise PersistenceError(
            "WAL entry column must be a non-empty string: %r" % column
        )
    if not isinstance(request, dict):
        raise PersistenceError("WAL entry request must be an envelope dict")
    if request.get("kind") not in MUTATION_KINDS:
        raise PersistenceError(
            "WAL entry carries a non-mutation envelope: %r"
            % request.get("kind")
        )
    return {"seq": seq, "column": column, "epoch": epoch, "request": request}


def _encode_record(entry: Dict[str, Any]) -> bytes:
    # Imported lazily so the storage layer never forces the net
    # package's import order (binframe is a leaf module, but its
    # package __init__ pulls in the whole net stack).
    from repro.net.binframe import encode_binary_frame

    try:
        payload = encode_binary_frame(entry)
    except Exception as exc:
        raise PersistenceError("unencodable WAL entry: %s" % exc) from exc
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_files(directory: str) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` of every segment, ordered by first seq."""
    segments = []
    try:
        names = os.listdir(directory)
    except OSError as exc:
        raise PersistenceError("cannot list WAL directory %r: %s"
                               % (directory, exc)) from exc
    for name in names:
        if not (name.startswith("wal-") and name.endswith(".seg")):
            continue
        stem = name[len("wal-"):-len(".seg")]
        if not stem.isdigit():
            raise PersistenceError("unrecognized WAL segment name: %r" % name)
        segments.append((int(stem), os.path.join(directory, name)))
    segments.sort()
    return segments


def _scan_segment(path: str, last: bool) -> Tuple[List[Dict[str, Any]], int]:
    """Decode one segment; returns ``(entries, valid_byte_length)``.

    ``last`` marks the newest segment, where a torn final record is
    tolerated (dropped); anywhere else the same damage is an error.
    """
    from repro.net.binframe import decode_binary_frame

    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise PersistenceError("cannot read WAL segment %r: %s"
                               % (path, exc)) from exc
    entries: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(blob):
        torn = "torn" if last else None
        header = blob[offset:offset + RECORD_HEADER.size]
        if len(header) < RECORD_HEADER.size:
            if torn and offset + len(header) == len(blob):
                return entries, offset  # torn header at the tail
            raise PersistenceError(
                "%s: truncated record header at byte %d" % (path, offset)
            )
        length, crc = RECORD_HEADER.unpack(header)
        if length > MAX_RECORD_BYTES:
            raise PersistenceError(
                "%s: implausible record length %d at byte %d"
                % (path, length, offset)
            )
        start = offset + RECORD_HEADER.size
        payload = blob[start:start + length]
        if len(payload) < length:
            if torn and start + len(payload) == len(blob):
                return entries, offset  # torn payload at the tail
            raise PersistenceError(
                "%s: truncated record payload at byte %d" % (path, offset)
            )
        if zlib.crc32(payload) != crc:
            if torn and start + length == len(blob):
                return entries, offset  # torn/corrupt final record
            raise PersistenceError(
                "%s: CRC mismatch at byte %d" % (path, offset)
            )
        try:
            decoded = decode_binary_frame(payload)
        except Exception as exc:
            raise PersistenceError(
                "%s: undecodable record at byte %d: %s"
                % (path, offset, exc)
            ) from exc
        entries.append(entry_from_wire(decoded))
        offset = start + length
    return entries, offset


class WalWriter:
    """Appends mutation entries to the segmented log in a directory.

    Opening a writer recovers the log's tail: existing segments are
    scanned, a torn final record is truncated away, and new appends
    continue the sequence.  Thread-safe — the catalog appends from many
    worker threads.

    Args:
        directory: the WAL directory (created if missing).
        segment_bytes: rotation threshold per segment file.
        fsync: one of :data:`FSYNC_POLICIES`.
        batch_every: under the ``"batch"`` policy, fsync every this
            many appends.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            feeds ``wal.appends`` / ``wal.bytes`` / ``wal.fsyncs``.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: str = "always",
        batch_every: int = 64,
        metrics=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                "unknown fsync policy %r (expected one of %s)"
                % (fsync, ", ".join(FSYNC_POLICIES))
            )
        self.directory = directory
        self.segment_bytes = max(1, int(segment_bytes))
        self.fsync = fsync
        self.batch_every = max(1, int(batch_every))
        self._metrics = metrics
        self._lock = threading.Lock()
        self._handle = None
        self._segment_first_seq = None
        self._segment_length = 0
        self._unsynced = 0
        os.makedirs(directory, exist_ok=True)
        self._recover_tail()

    @property
    def metrics(self):
        """The registry the ``wal.*`` counters report into (or None)."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry

    def _recover_tail(self) -> None:
        """Position after the last valid record, truncating a torn one."""
        segments = _segment_files(self.directory)
        self.last_seq = 0
        if not segments:
            return
        for index, (first_seq, path) in enumerate(segments):
            last = index == len(segments) - 1
            entries, valid_length = _scan_segment(path, last=last)
            if entries:
                self._check_contiguity(first_seq, entries, path)
                self.last_seq = entries[-1]["seq"]
            if last:
                size = os.path.getsize(path)
                if valid_length < size:
                    with open(path, "r+b") as handle:
                        handle.truncate(valid_length)
                if not entries:
                    # A segment holding nothing valid carries no state.
                    os.remove(path)
                    return
                self._segment_first_seq = first_seq
                self._segment_length = valid_length

    def _check_contiguity(self, first_seq, entries, path) -> None:
        expected = first_seq
        for entry in entries:
            if entry["seq"] != expected:
                raise PersistenceError(
                    "%s: sequence gap (expected %d, found %d)"
                    % (path, expected, entry["seq"])
                )
            expected += 1
        if self.last_seq and first_seq != self.last_seq + 1:
            raise PersistenceError(
                "%s: segment starts at %d but the log ends at %d"
                % (path, first_seq, self.last_seq)
            )

    # -- appending ---------------------------------------------------------------

    def append(self, column: str, epoch: int,
               request: Dict[str, Any]) -> int:
        """Journal one mutation envelope; returns its sequence number.

        The record is flushed to the OS before returning (readers see
        it immediately) and fsynced per the policy.
        """
        with self._lock:
            seq = self.last_seq + 1
            record = _encode_record(entry_from_wire({
                "seq": seq,
                "column": column,
                "epoch": int(epoch),
                "request": request,
            }))
            handle = self._current_handle(seq, len(record))
            try:
                handle.write(record)
                handle.flush()
            except OSError as exc:
                raise PersistenceError(
                    "WAL append failed in %r: %s" % (self.directory, exc)
                ) from exc
            self.last_seq = seq
            self._segment_length += len(record)
            self._unsynced += 1
            if self.fsync == "always" or (
                self.fsync == "batch" and self._unsynced >= self.batch_every
            ):
                self._fsync_locked()
            if self._metrics is not None:
                self._metrics.add("wal.appends")
                self._metrics.add("wal.bytes", len(record))
            return seq

    def _current_handle(self, seq: int, incoming: int):
        """The open segment, rotated when the next record won't fit."""
        if (
            self._handle is not None
            and self._segment_length + incoming > self.segment_bytes
            and self._segment_length > 0
        ):
            self._close_handle_locked()
            self._segment_first_seq = None
        if self._handle is None:
            if self._segment_first_seq is None:
                self._segment_first_seq = seq
                self._segment_length = 0
            path = os.path.join(
                self.directory, SEGMENT_PATTERN % self._segment_first_seq
            )
            try:
                self._handle = open(path, "ab")
            except OSError as exc:
                raise PersistenceError(
                    "cannot open WAL segment %r: %s" % (path, exc)
                ) from exc
        return self._handle

    def _fsync_locked(self) -> None:
        if self._handle is None or self.fsync == "never":
            self._unsynced = 0
            return
        try:
            os.fsync(self._handle.fileno())
        except OSError as exc:  # pragma: no cover - fs-dependent
            raise PersistenceError(
                "WAL fsync failed in %r: %s" % (self.directory, exc)
            ) from exc
        self._unsynced = 0
        if self._metrics is not None:
            self._metrics.add("wal.fsyncs")

    def sync(self) -> None:
        """Force outstanding appends to stable storage (any policy)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError as exc:  # pragma: no cover - fs-dependent
                    raise PersistenceError(
                        "WAL fsync failed in %r: %s"
                        % (self.directory, exc)
                    ) from exc
                self._unsynced = 0
                if self._metrics is not None:
                    self._metrics.add("wal.fsyncs")

    # -- compaction --------------------------------------------------------------

    def compact(self, upto_seq: int) -> int:
        """Drop whole segments whose records are all ``<= upto_seq``.

        Call *after* a snapshot capturing ``upto_seq`` is durably
        saved (snapshot-then-truncate).  Returns the number of segment
        files removed.  Only entire segments are dropped — the segment
        containing ``upto_seq + 1`` stays, so replay after the snapshot
        always finds a contiguous tail.
        """
        removed = 0
        with self._lock:
            segments = _segment_files(self.directory)
            for index, (first_seq, path) in enumerate(segments):
                next_first = (
                    segments[index + 1][0] if index + 1 < len(segments)
                    else self.last_seq + 1
                )
                # The segment's records span [first_seq, next_first).
                if next_first - 1 > upto_seq:
                    break
                if path == self._open_path_locked():
                    break  # never delete the live tail segment
                os.remove(path)
                removed += 1
        return removed

    def _open_path_locked(self) -> Optional[str]:
        if self._segment_first_seq is None:
            return None
        return os.path.join(
            self.directory, SEGMENT_PATTERN % self._segment_first_seq
        )

    def segment_count(self) -> int:
        """Number of segment files currently on disk."""
        with self._lock:
            return len(_segment_files(self.directory))

    def stats(self) -> Dict[str, Any]:
        """JSON-compatible writer state for telemetry."""
        with self._lock:
            segments = _segment_files(self.directory)
            return {
                "seq": self.last_seq,
                "segments": len(segments),
                "bytes": sum(
                    os.path.getsize(path) for __, path in segments
                ),
                "fsync": self.fsync,
            }

    def _close_handle_locked(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                if self.fsync != "never":
                    os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._handle.close()
            self._handle = None
            self._unsynced = 0

    def close(self) -> None:
        """Flush, sync (unless policy ``never``), and close."""
        with self._lock:
            self._close_handle_locked()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class WalReader:
    """Reads validated entries back out of a WAL directory.

    A reader is a point-in-time scan over the segment files; it holds
    no file handles between calls, so it can run concurrently with a
    live writer (appends flush whole records, and a half-written tail
    reads as torn, i.e. not yet visible).
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def entries(self, after_seq: int = 0,
                limit: Optional[int] = None) -> Iterator[Dict[str, Any]]:
        """Yield entries with ``seq > after_seq`` in sequence order.

        Raises:
            PersistenceError: on non-tail corruption, sequence gaps
                between retained segments, or — when ``after_seq``
                predates the oldest retained record (compacted away) —
                an explicit "compacted" error, so callers know to
                restart from a snapshot instead of silently skipping.
        """
        if not os.path.isdir(self.directory):
            return
        segments = _segment_files(self.directory)
        yielded = 0
        previous_seq = None
        for index, (first_seq, path) in enumerate(segments):
            if previous_seq is not None and first_seq != previous_seq + 1:
                raise PersistenceError(
                    "WAL gap: segment %r starts at %d after %d"
                    % (path, first_seq, previous_seq)
                )
            if index == 0 and after_seq + 1 < first_seq:
                raise PersistenceError(
                    "WAL entries after %d were compacted away "
                    "(log starts at %d); restart from a snapshot"
                    % (after_seq, first_seq)
                )
            if (index + 1 < len(segments)
                    and segments[index + 1][0] <= after_seq + 1):
                # Every record here is <= after_seq: skip the scan (the
                # steady-state replication poll touches only the tail).
                previous_seq = segments[index + 1][0] - 1
                continue
            entries, __ = _scan_segment(
                path, last=index == len(segments) - 1
            )
            if entries:
                expected = first_seq
                for entry in entries:
                    if entry["seq"] != expected:
                        raise PersistenceError(
                            "%s: sequence gap (expected %d, found %d)"
                            % (path, expected, entry["seq"])
                        )
                    expected += 1
                previous_seq = entries[-1]["seq"]
            for entry in entries:
                if entry["seq"] <= after_seq:
                    continue
                yield entry
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    def last_seq(self) -> int:
        """Sequence number of the newest valid record (0 when empty)."""
        seq = 0
        for entry in self.entries():
            seq = entry["seq"]
        return seq


def read_wal_entries(directory: str, after_seq: int = 0,
                     limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """Materialised :meth:`WalReader.entries` (the replication feed)."""
    return list(WalReader(directory).entries(after_seq, limit=limit))


def wal_start_seq(directory: str) -> Optional[int]:
    """First sequence number still retained on disk (``None`` when the
    log is empty).  Lets the replication feed distinguish "you are
    caught up" from "your position was compacted away — resubscribe"
    without scanning any records."""
    if not os.path.isdir(directory):
        return None
    segments = _segment_files(directory)
    return segments[0][0] if segments else None


# -- atomic JSON files -----------------------------------------------------------


def write_json_atomic(path: str, payload: Any) -> None:
    """Write a JSON document so a crash can never corrupt the target.

    The bytes go to ``path + ".tmp"`` first, are fsynced, and only then
    renamed over ``path`` (``os.replace`` is atomic on POSIX and
    Windows).  The directory entry is fsynced too, so the rename itself
    survives power loss.  On any failure the original file is intact
    and the temporary is cleaned up.
    """
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except (OSError, TypeError, ValueError) as exc:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise PersistenceError(
            "cannot write %r atomically: %s" % (path, exc)
        ) from exc
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all platforms allow it
        pass
    finally:
        os.close(fd)


def read_json_file(path: str) -> Any:
    """Read a JSON document; malformed bytes raise
    :class:`~repro.errors.PersistenceError` (never a raw decode
    error)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as exc:
        raise PersistenceError("cannot read %r: %s" % (path, exc)) from exc
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        raise PersistenceError("malformed JSON in %r: %s"
                               % (path, exc)) from exc
