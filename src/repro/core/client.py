"""The trusted client: encrypts data and queries, decrypts results.

Client-side duties in the paper's protocol (Sections 3-5.4):

* encrypt the column before upload — one ``Ev`` row per value, or two
  physical rows per value when ambiguity is on (Section 4.2);
* encrypt each query bound *twice* (``Eb`` for comparisons, ``Ev`` for
  the AVL key — Section 4.3) and ship a single
  :class:`~repro.core.query.EncryptedQuery`;
* decrypt the returned rows, discard the ~50% ambiguity false
  positives (Figure 13a), and report plaintext results.

The client is the only component holding the
:class:`~repro.crypto.key.SecretKey`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.crypto.ciphertext import ValueCiphertext
from repro.crypto.key import SecretKey, generate_key
from repro.crypto.scheme import Encryptor, generate_steerable_key
from repro.core.query import EncryptedBound, EncryptedQuery
from repro.errors import QueryError


@dataclass(frozen=True)
class ClientResult:
    """Decrypted outcome of one query.

    Attributes:
        values: plaintext values of the real rows returned.
        logical_ids: the originating logical row ids, parallel to
            ``values``.
        false_positives: number of fake rows discarded (0 without
            ambiguity).
        returned_rows: total rows the server shipped.
        decrypt_seconds: client-side decrypt-and-filter time — the
            Figure 13b measurement.
    """

    values: np.ndarray
    logical_ids: np.ndarray
    false_positives: int
    returned_rows: int
    decrypt_seconds: float

    @property
    def false_positive_rate(self) -> float:
        """Fraction of returned rows that were fakes (Figure 13a)."""
        if self.returned_rows == 0:
            return 0.0
        return self.false_positives / self.returned_rows


class TrustedClient:
    """Key holder: encrypts uploads and queries, decrypts responses.

    Args:
        key: secret key; generated fresh when omitted.
        seed: randomness seed for key generation and encryption.
        ambiguity: encrypt values with the Section 4.2 two-branch
            layer (doubles the server's data, halves an adversary's
            certainty).
        key_length: ciphertext length ``l`` when generating a key.
        fake_domain: half-open interval counterfeit pseudo-values are
            drawn from; defaults to the observed data range at
            :meth:`encrypt_dataset` time, so fakes qualify for range
            queries about as often as real rows (the ~50% false
            positive rate of Figure 13a).
    """

    def __init__(
        self,
        key: SecretKey = None,
        seed: int = None,
        ambiguity: bool = False,
        key_length: int = 4,
        fake_domain: Tuple[int, int] = None,
    ) -> None:
        self._key_was_auto_generated = key is None
        self._seed = seed
        self._key_length = key_length
        if key is None:
            if ambiguity and fake_domain is not None and key_length >= 4:
                key = generate_steerable_key(
                    key_length, fake_domain, seed=seed
                )
            else:
                key = generate_key(length=key_length, seed=seed)
        self.key = key
        self.ambiguity = ambiguity
        self.fake_domain = fake_domain
        self._encryptor = Encryptor(key, seed=None if seed is None else seed + 1)

    @property
    def encryptor(self) -> Encryptor:
        """The underlying scheme operations (key-holder only)."""
        return self._encryptor

    # -- upload ------------------------------------------------------------------

    def encrypt_dataset(
        self, values: Iterable[int]
    ) -> Tuple[List[ValueCiphertext], List[int]]:
        """Encrypt a column for upload.

        Returns ``(physical_rows, row_ids)``.  Without ambiguity,
        logical value ``i`` becomes physical row id ``i``.  With it,
        value ``i`` spawns physical ids ``2i`` and ``2i + 1`` — the
        two interpretations the server will manage separately; which of
        the two is real varies per value and stays secret.
        """
        values = [int(v) for v in values]
        if self.ambiguity and self.fake_domain is None and values:
            self.fake_domain = (min(values), max(values) + 1)
            if self._key_was_auto_generated and self.key.length >= 4:
                # No data has been uploaded under the provisional key
                # yet, so the owner is free to re-draw one whose
                # ambiguity layer reaches the (just learned) domain.
                self.key = generate_steerable_key(
                    self.key.length, self.fake_domain, seed=self._seed
                )
                self._encryptor = Encryptor(
                    self.key,
                    seed=None if self._seed is None else self._seed + 1,
                )
                self._key_was_auto_generated = False
        rows: List[ValueCiphertext] = []
        row_ids: List[int] = []
        for logical_id, value in enumerate(values):
            rows_for_value = self.encrypt_value(value)
            for offset, row in enumerate(rows_for_value):
                rows.append(row)
                row_ids.append(
                    2 * logical_id + offset if self.ambiguity else logical_id
                )
        return rows, row_ids

    def encrypt_value(self, value: int) -> List[ValueCiphertext]:
        """Physical rows for one value (two when ambiguity is on).

        Counterfeit branches are steered into :attr:`fake_domain` when
        one is known (set explicitly or learned from the dataset) and
        the key length permits; otherwise the unsteered Section 4.2
        construction is used.
        """
        if not self.ambiguity:
            return [self._encryptor.encrypt_value(value)]
        if self.fake_domain is not None and self.key.length >= 4:
            ambiguous = self._encryptor.encrypt_value_ambiguous(
                value, fake_domain=self.fake_domain
            )
        else:
            ambiguous = self._encryptor.encrypt_value_ambiguous(value)
        prefix, suffix = ambiguous.interpretations()
        return [prefix, suffix]

    def logical_id(self, physical_row_id: int) -> int:
        """Map a server row id back to the logical value index."""
        return physical_row_id // 2 if self.ambiguity else physical_row_id

    # -- queries -------------------------------------------------------------------

    def encrypt_query_bound(self, bound: int) -> EncryptedBound:
        """Encrypt one bound in both modes (Section 4.3)."""
        return EncryptedBound(
            eb=self._encryptor.encrypt_bound(bound),
            ev=self._encryptor.encrypt_value(bound),
        )

    def make_query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        pivots: Sequence[int] = (),
    ) -> EncryptedQuery:
        """Build the encrypted message for a range query.

        Either bound may be None: ``make_query(high=x)`` is the
        one-sided query ``A <= x`` (cracking only one piece at the
        server), ``make_query(low=x)`` is ``A >= x``; both None selects
        everything.  ``pivots`` are optional extra bounds for
        client-assisted stochastic cracking; the server may crack on
        them but they do not affect the result set.
        """
        if low is not None and high is not None and low > high:
            raise QueryError("inverted range: low=%r > high=%r" % (low, high))
        return EncryptedQuery(
            low=None if low is None else self.encrypt_query_bound(low),
            high=None if high is None else self.encrypt_query_bound(high),
            low_inclusive=low_inclusive,
            high_inclusive=high_inclusive,
            pivots=tuple(self.encrypt_query_bound(p) for p in pivots),
        )

    # -- responses ---------------------------------------------------------------------

    def decrypt_results(
        self,
        row_ids: Sequence[int],
        rows: Sequence[ValueCiphertext],
        id_mapper=None,
    ) -> ClientResult:
        """Decrypt a server response, discarding ambiguity fakes.

        Args:
            row_ids: physical ids parallel to ``rows``.
            rows: the returned ciphertexts.
            id_mapper: physical-to-logical id translation; defaults to
                :meth:`logical_id` (sessions with inserts pass their
                own mapping, since inserted ids leave the formulaic
                space).
        """
        if id_mapper is None:
            id_mapper = self.logical_id
        tick = time.perf_counter()
        values: List[int] = []
        logical_ids: List[int] = []
        false_positives = 0
        for row_id, row in zip(row_ids, rows):
            decrypted = self._encryptor.decrypt_row(row)
            if decrypted.is_real:
                values.append(decrypted.value)
                logical_ids.append(id_mapper(int(row_id)))
            else:
                false_positives += 1
        elapsed = time.perf_counter() - tick
        try:
            values_array = np.array(values, dtype=np.int64)
        except OverflowError:
            # The scheme is arbitrary precision; values outside the
            # machine-word range stay exact as a Python big-int array.
            values_array = np.array(values, dtype=object)
        return ClientResult(
            values=values_array,
            logical_ids=np.array(logical_ids, dtype=np.int64),
            false_positives=false_positives,
            returned_rows=len(rows),
            decrypt_seconds=elapsed,
        )
