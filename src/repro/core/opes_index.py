"""Outsourced database over OPES — the comparison system (Section 2.1).

Under order-preserving encryption the server sees the total order from
day one, so it needs no adaptivity at all: it sorts the ciphertexts at
load time and answers every range query with two binary searches.
That is exactly the trade the paper rejects — "it delivers encrypted
values in sortable form ... a more conservative alternative would
enable selective indexing without a priori leaking information about
the order of values" — and this engine makes both sides of the trade
measurable:

* performance: OPES queries are nearly free (Figure-7-style
  comparison in the OPES ablation benchmark);
* leakage: the resolved-order fraction is 1.0 *before the first
  query*, versus the cracking engines' gradual, threshold-capped
  climb.

The client-facing interface mirrors
:class:`~repro.core.session.OutsourcedDatabase` so the two systems are
drop-in comparable.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.client import ClientResult
from repro.cracking.index import QueryStats
from repro.crypto.opes import OpesCipher, generate_opes_key
from repro.errors import QueryError


class OpesServer:
    """Server over OPES ciphertexts: sort once, binary-search forever."""

    def __init__(self, ciphertexts: Sequence[int], record_stats: bool = True) -> None:
        base = np.array(ciphertexts, dtype=np.int64).reshape(-1)
        tick = time.perf_counter()
        self._order = np.argsort(base, kind="stable")
        self._sorted = base[self._order]
        self.build_seconds = time.perf_counter() - tick
        self._record_stats = record_stats
        self.stats_log: List[QueryStats] = []

    def __len__(self) -> int:
        return len(self._sorted)

    def execute(
        self,
        low_ciphertext: int,
        high_ciphertext: int,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer a range query over ciphertext bounds.

        Returns ``(row_ids, ciphertexts)``; order comparisons work
        directly on ciphertexts because the encryption preserves order
        — the very property under scrutiny.
        """
        tick = time.perf_counter()
        start = np.searchsorted(
            self._sorted,
            low_ciphertext,
            side="left" if low_inclusive else "right",
        )
        end = np.searchsorted(
            self._sorted,
            high_ciphertext,
            side="right" if high_inclusive else "left",
        )
        row_ids = self._order[start:end].copy()
        ciphertexts = self._sorted[start:end].copy()
        if self._record_stats:
            self.stats_log.append(
                QueryStats(
                    search_seconds=time.perf_counter() - tick,
                    result_count=len(row_ids),
                )
            )
        return row_ids, ciphertexts

    def piece_boundaries(self) -> List[int]:
        """Every position is a piece boundary: the order is fully known."""
        return list(range(len(self._sorted) + 1))


class OpesOutsourcedDatabase:
    """End-to-end OPES session, interface-compatible with the secure one."""

    def __init__(
        self,
        values: Sequence[int],
        seed: int = 0,
        domain: Tuple[int, int] = None,
        record_stats: bool = True,
    ) -> None:
        values = [int(v) for v in values]
        if domain is None:
            if not values:
                raise QueryError("provide a domain for an empty column")
            domain = (min(values), max(values) + 1)
        self.cipher = OpesCipher(generate_opes_key(domain, seed=seed))
        tick = time.perf_counter()
        ciphertexts = [self.cipher.encrypt(v) for v in values]
        self.encrypt_seconds = time.perf_counter() - tick
        self.server = OpesServer(ciphertexts, record_stats=record_stats)
        self.round_trips = 0

    def __len__(self) -> int:
        return len(self.server)

    def query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> ClientResult:
        """Run one range query end to end (one round trip).

        Either bound may be None for a one-sided query (substituted by
        the domain edge — under OPES the domain is part of the key).
        """
        domain_lo, domain_hi = self.cipher.key.domain
        if low is None:
            low, low_inclusive = domain_lo, True
        if high is None:
            high, high_inclusive = domain_hi - 1, True
        if low > high:
            raise QueryError("inverted range: low=%r > high=%r" % (low, high))
        if low > domain_hi - 1 or high < domain_lo:
            # The whole range lies outside the data domain.
            self.round_trips += 1
            return ClientResult(
                values=np.empty(0, dtype=np.int64),
                logical_ids=np.empty(0, dtype=np.int64),
                false_positives=0,
                returned_rows=0,
                decrypt_seconds=0.0,
            )
        low_ct = self.cipher.encrypt_bound(low)
        high_ct = self.cipher.encrypt_bound(high)
        # Clamping out-of-domain bounds to edge cells must not drop or
        # add edge values; widen inclusiveness accordingly.
        if low < domain_lo:
            low_inclusive = True
        if high > domain_hi - 1:
            high_inclusive = True
        row_ids, ciphertexts = self.server.execute(
            low_ct, high_ct, low_inclusive, high_inclusive
        )
        self.round_trips += 1
        tick = time.perf_counter()
        values = np.array(
            [self.cipher.decrypt(int(c)) for c in ciphertexts], dtype=np.int64
        )
        return ClientResult(
            values=values,
            logical_ids=row_ids.astype(np.int64),
            false_positives=0,
            returned_rows=len(row_ids),
            decrypt_seconds=time.perf_counter() - tick,
        )

    def query_values(self, low: int, high: int, **kwargs) -> np.ndarray:
        """Convenience: sorted plaintext values in range."""
        return np.sort(self.query(low, high, **kwargs).values)
