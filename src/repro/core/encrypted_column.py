"""Encrypted cracker column: ciphertext rows in a fixed-width dense array.

The server-side twin of :class:`repro.cracking.column.CrackerColumn`:
each row is a length-``l`` integer vector (an ``Ev``-mode ciphertext's
numerators) with a positive denominator, held in a numpy ``object``
matrix so Python big-ints flow through vectorised arithmetic without
overflow — the reproduction's analogue of the paper's GMP arrays.

All row classification happens through scalar products against an
``Eb``-mode bound (``sign(Eb . Ev) == sign(v - b)``); the column never
compares two of its own rows, mirroring the scheme's central
restriction.

Scalar products are routed through the two-tier kernel of
:mod:`repro.linalg.kernels`: the column tracks the largest absolute
component of its dense matrix (``max_abs``) and keeps an int64 mirror
of the matrix, so products proven not to overflow 64 bits run as a
native matmul while everything else falls back to the exact
object-dtype path.  An optional per-query
:class:`~repro.linalg.kernels.ProductCache` (installed by the engines
via :meth:`use_product_cache`) is kept physically aligned through every
reorganisation so cracks and edge-piece scans share products.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cracking.algorithms import (
    crack_in_two,
    partition_order,
    three_way_partition_order,
)
from repro.crypto.ciphertext import BoundCiphertext, ValueCiphertext
from repro.errors import IndexStateError
from repro.linalg.kernels import (
    INT64_MAX,
    KernelCounters,
    ProductCache,
    matrix_products,
)
from repro.obs import Observability


class EncryptedColumn:
    """Dense array of encrypted rows, physically reorganised by cracking.

    Args:
        rows: the ciphertext rows in upload order.
        row_ids: stable identifiers parallel to ``rows``; defaults to
            ``0..n-1``.  With ambiguity enabled upstream, two physical
            rows share one logical origin — the id convention is the
            uploader's business, the column just preserves ids across
            reorganisation.
        use_inplace_algorithm: route cracks through the
            pointer-faithful Algorithm 1 (slower; fidelity tests).
        obs: observability bundle shared with the owning engine/server;
            a private one is created when omitted.  The column binds
            its kernel counters to the bundle's metrics registry and
            emits ``kernel-product`` spans / ``products`` audit events
            from :meth:`products`.
    """

    def __init__(
        self,
        rows: Sequence[ValueCiphertext],
        row_ids: Sequence[int] = None,
        use_inplace_algorithm: bool = False,
        obs: Observability = None,
    ) -> None:
        rows = list(rows)
        if rows:
            length = rows[0].length
            if any(row.length != length for row in rows):
                raise IndexStateError("rows must share one ciphertext length")
            self._length = length
        else:
            self._length = 0
        self._matrix = np.empty((len(rows), self._length), dtype=object)
        for i, row in enumerate(rows):
            self._matrix[i, :] = row.numerators
        self._denominators = np.array(
            [row.denominator for row in rows], dtype=object
        )
        if row_ids is None:
            self._row_ids = np.arange(len(rows), dtype=np.int64)
        else:
            self._row_ids = np.array(row_ids, dtype=np.int64).reshape(-1)
            if len(self._row_ids) != len(rows):
                raise IndexStateError("row_ids length mismatch")
        self._use_inplace = use_inplace_algorithm
        # id -> current physical index; maintained through every
        # reorganisation so positional tuple reconstruction across
        # sibling columns stays O(1) per row.
        self._position_of_id = {
            int(row_id): index for index, row_id in enumerate(self._row_ids)
        }
        if len(self._position_of_id) != len(self._row_ids):
            raise IndexStateError("row ids must be unique")
        # Kernel metadata: a conservative magnitude bound on the dense
        # matrix (deletes never lower it — that can only demote the
        # kernel to the exact tier), a lazily built int64 mirror kept
        # aligned through every reorganisation, per-tier counters, and
        # the per-query product cache slot.
        self._max_abs = max((row.max_abs for row in rows), default=0)
        self._mirror: Optional[np.ndarray] = None
        self._obs = obs if obs is not None else Observability()
        self.kernel_counters = KernelCounters(metrics=self._obs.metrics)
        self._product_cache: Optional[ProductCache] = None

    @property
    def obs(self) -> Observability:
        """The column's observability bundle (engines adopt it)."""
        return self._obs

    def __len__(self) -> int:
        return self._matrix.shape[0]

    @property
    def ciphertext_length(self) -> int:
        """The ciphertext vector length ``l`` (0 for an empty column)."""
        return self._length

    @property
    def row_ids(self) -> np.ndarray:
        """Row ids in current physical order (read-only view)."""
        view = self._row_ids.view()
        view.flags.writeable = False
        return view

    # -- scalar products -------------------------------------------------------

    @property
    def max_abs(self) -> int:
        """Conservative bound on the matrix's absolute components."""
        return self._max_abs

    @contextmanager
    def use_product_cache(self, cache: ProductCache):
        """Install a per-query product cache for the duration of a query.

        The column keeps the cache physically aligned: cracks permute
        cached arrays alongside the matrix, structural changes drop
        them.  Engines install a fresh cache per query and read its hit
        counter into :class:`~repro.cracking.index.QueryStats`.
        """
        previous = self._product_cache
        self._product_cache = cache
        try:
            yield cache
        finally:
            self._product_cache = previous

    def products(
        self, piece_lo: int, piece_hi: int, bound: BoundCiphertext
    ) -> np.ndarray:
        """Exact products ``Eb . Ev`` for rows in ``[piece_lo, piece_hi)``.

        Denominators are positive, so the signs of these integers equal
        the signs of the exact rational comparisons.  Served by the
        int64 fast path when the magnitude bounds prove it exact, from
        the active per-query cache when the same ``(bound, piece)``
        products were already computed, and by the exact object-dtype
        matmul otherwise — the three sources are bit-for-bit identical.
        """
        self._check_range(piece_lo, piece_hi)
        audit = self._obs.audit
        if audit.enabled:
            # The access-pattern observation: which positions were
            # compared against which (opaque) bound ciphertext.
            audit.record(
                "products",
                bound=audit.ref(bound),
                lo=piece_lo,
                hi=piece_hi,
                rows=piece_hi - piece_lo,
            )
        cache = self._product_cache
        if cache is not None:
            cached = cache.lookup(bound, piece_lo, piece_hi)
            if cached is not None:
                return cached
        with self._obs.span("kernel-product", rows=piece_hi - piece_lo):
            products = matrix_products(
                self._matrix[piece_lo:piece_hi],
                self._mirror_slice(piece_lo, piece_hi),
                bound.vector,
                self._max_abs,
                bound.max_abs,
                self.kernel_counters,
            )
        if cache is not None:
            cache.store(bound, piece_lo, piece_hi, products)
        return products

    def _mirror_slice(self, piece_lo: int, piece_hi: int) -> Optional[np.ndarray]:
        """Int64 view of ``[piece_lo, piece_hi)``; None when unavailable.

        The mirror is built lazily the first time the matrix is known
        to fit int64 and then kept aligned by every reorganisation, so
        steady-state queries pay no conversion cost.
        """
        if self._max_abs > INT64_MAX:
            self._mirror = None
            return None
        if self._mirror is None:
            self._mirror = self._matrix.astype(np.int64)
        return self._mirror[piece_lo:piece_hi]

    # -- cracking ----------------------------------------------------------------

    def crack(
        self,
        piece_lo: int,
        piece_hi: int,
        bound: BoundCiphertext,
        inclusive: bool,
    ) -> int:
        """Reorganise ``[piece_lo, piece_hi)`` around an encrypted bound.

        Rows with ``v < b`` (``<= b`` when ``inclusive``) move to the
        front of the piece; returns the split position.  Classification
        is by product sign only — the server learns which side each row
        falls on (that is the point of on-demand indexing) but nothing
        about distances.
        """
        self._check_range(piece_lo, piece_hi)
        if self._use_inplace:
            return self._crack_inplace(piece_lo, piece_hi, bound, inclusive)
        products = self.products(piece_lo, piece_hi, bound)
        mask = products <= 0 if inclusive else products < 0
        mask = mask.astype(bool)
        order = partition_order(mask)
        self._apply_order(piece_lo, piece_hi, order)
        return piece_lo + int(np.count_nonzero(mask))

    def crack_three(
        self,
        piece_lo: int,
        piece_hi: int,
        low: BoundCiphertext,
        low_inclusive: bool,
        high: BoundCiphertext,
        high_inclusive: bool,
    ) -> Tuple[int, int]:
        """Three-way reorganisation around two encrypted bounds.

        Region 0: rows below the range (``v < low`` / ``v <= low``);
        region 2: rows above (``v > high`` / ``v >= high``); region 1:
        the qualifying middle.  Returns ``(split0, split1)``.
        """
        self._check_range(piece_lo, piece_hi)
        low_products = self.products(piece_lo, piece_hi, low)
        high_products = self.products(piece_lo, piece_hi, high)
        below = (
            low_products < 0 if low_inclusive else low_products <= 0
        ).astype(bool)
        above = (
            high_products > 0 if high_inclusive else high_products >= 0
        ).astype(bool)
        regions = np.where(below, 0, np.where(above, 2, 1))
        order, count0, count01 = three_way_partition_order(regions)
        self._apply_order(piece_lo, piece_hi, order)
        return piece_lo + count0, piece_lo + count01

    def _crack_inplace(
        self,
        piece_lo: int,
        piece_hi: int,
        bound: BoundCiphertext,
        inclusive: bool,
    ) -> int:
        """Algorithm 1 path over encrypted rows (per-row dot products)."""
        vector = bound.vector
        matrix = self._matrix
        # Swaps bypass _apply_order, so cached product orderings for the
        # piece cannot be maintained incrementally; drop them up front.
        if self._product_cache is not None:
            self._product_cache.invalidate()

        def belongs_left(i: int) -> bool:
            product = sum(a * b for a, b in zip(matrix[i], vector))
            return product <= 0 if inclusive else product < 0

        def swap(i: int, j: int) -> None:
            matrix[[i, j]] = matrix[[j, i]]
            self._denominators[[i, j]] = self._denominators[[j, i]]
            self._row_ids[[i, j]] = self._row_ids[[j, i]]
            self._position_of_id[int(self._row_ids[i])] = i
            self._position_of_id[int(self._row_ids[j])] = j
            if self._mirror is not None:
                self._mirror[[i, j]] = self._mirror[[j, i]]

        return crack_in_two(belongs_left, swap, piece_lo, piece_hi - 1)

    # -- scans ----------------------------------------------------------------------

    def scan_qualifying(
        self,
        piece_lo: int,
        piece_hi: int,
        low: BoundCiphertext,
        low_inclusive: bool,
        high: BoundCiphertext,
        high_inclusive: bool,
    ) -> np.ndarray:
        """Physical indices in ``[piece_lo, piece_hi)`` inside the range.

        Used for sub-threshold edge pieces: the server evaluates the
        full predicate per row with two scalar products (it can do so
        exactly because the client shipped both bounds in ``Eb`` mode).
        Either bound may be None (one-sided queries), costing one
        product per row instead of two.
        """
        self._check_range(piece_lo, piece_hi)
        mask = np.ones(piece_hi - piece_lo, dtype=bool)
        if low is not None:
            low_products = self.products(piece_lo, piece_hi, low)
            mask &= (
                low_products >= 0 if low_inclusive else low_products > 0
            ).astype(bool)
        if high is not None:
            high_products = self.products(piece_lo, piece_hi, high)
            mask &= (
                high_products <= 0 if high_inclusive else high_products < 0
            ).astype(bool)
        return piece_lo + np.flatnonzero(mask)

    # -- row access -------------------------------------------------------------------

    def row(self, index: int) -> ValueCiphertext:
        """The ciphertext currently at a physical index."""
        return ValueCiphertext(
            tuple(self._matrix[index]), int(self._denominators[index])
        )

    def rows_at(self, indices: Iterable[int]) -> List[ValueCiphertext]:
        """Ciphertexts at the given physical indices."""
        return [self.row(int(i)) for i in indices]

    def row_ids_at(self, indices) -> np.ndarray:
        """Row ids at the given physical indices."""
        return self._row_ids[np.asarray(indices, dtype=np.int64)]

    def row_ids_in(self, piece_lo: int, piece_hi: int) -> np.ndarray:
        """Row ids of every row in ``[piece_lo, piece_hi)``."""
        self._check_range(piece_lo, piece_hi)
        return self._row_ids[piece_lo:piece_hi].copy()

    # -- updates -----------------------------------------------------------------------

    def insert_at(self, position: int, row: ValueCiphertext, row_id: int) -> None:
        """Physically insert one row at ``position`` (O(n) memmove).

        The ciphertext length is validated against the established
        ``_length`` whenever one exists — including after deletes have
        emptied the column, which must not let a wrong-length row reset
        the column's width mid-life.  Only a column that never held a
        row adopts the incoming row's length.
        """
        if not 0 <= position <= len(self):
            raise IndexStateError("insert position out of range")
        if self._length:
            if row.length != self._length:
                raise IndexStateError("row has wrong ciphertext length")
        else:
            self._length = row.length
            self._matrix = np.empty((0, self._length), dtype=object)
            self._mirror = None  # any zero-width mirror is now mis-shaped
        if int(row_id) in self._position_of_id:
            raise IndexStateError("row id %d already present" % row_id)
        new_row = np.empty((1, self._length), dtype=object)
        new_row[0, :] = row.numerators
        self._matrix = np.concatenate(
            (self._matrix[:position], new_row, self._matrix[position:])
        )
        self._denominators = np.concatenate(
            (
                self._denominators[:position],
                np.array([row.denominator], dtype=object),
                self._denominators[position:],
            )
        )
        self._row_ids = np.concatenate(
            (
                self._row_ids[:position],
                np.array([row_id], dtype=np.int64),
                self._row_ids[position:],
            )
        )
        for index in range(position, len(self._row_ids)):
            self._position_of_id[int(self._row_ids[index])] = index
        self._max_abs = max(self._max_abs, row.max_abs)
        if self._mirror is not None:
            if row.max_abs <= INT64_MAX:
                self._mirror = np.concatenate(
                    (
                        self._mirror[:position],
                        np.array([row.numerators], dtype=np.int64),
                        self._mirror[position:],
                    )
                )
            else:
                self._mirror = None
        if self._product_cache is not None:
            self._product_cache.invalidate()

    def delete_at(self, position: int) -> None:
        """Physically remove the row at ``position`` (O(n) memmove)."""
        if not 0 <= position < len(self):
            raise IndexStateError("delete position out of range")
        del self._position_of_id[int(self._row_ids[position])]
        self._matrix = np.delete(self._matrix, position, axis=0)
        self._denominators = np.delete(self._denominators, position)
        self._row_ids = np.delete(self._row_ids, position)
        for index in range(position, len(self._row_ids)):
            self._position_of_id[int(self._row_ids[index])] = index
        if self._mirror is not None:
            self._mirror = np.delete(self._mirror, position, axis=0)
        if self._product_cache is not None:
            self._product_cache.invalidate()

    def physical_index_of(self, row_id: int) -> int:
        """Current physical index of a row id (O(1) through the id map).

        Raises:
            IndexStateError: if the id is not present.
        """
        try:
            return self._position_of_id[int(row_id)]
        except KeyError:
            raise IndexStateError("row id %d not present" % row_id) from None

    def rows_by_ids(self, row_ids: Iterable[int]) -> List[ValueCiphertext]:
        """Ciphertexts for the given row ids, in the given order.

        Positional tuple reconstruction across sibling columns: a
        select on one attribute returns qualifying ids; siblings
        materialise the other attributes through this O(1)-per-row
        lookup, regardless of how differently each column has been
        cracked.
        """
        return [self.row(self.physical_index_of(row_id)) for row_id in row_ids]

    # -- internals ----------------------------------------------------------------------

    def _apply_order(self, piece_lo: int, piece_hi: int, order: np.ndarray) -> None:
        self._matrix[piece_lo:piece_hi] = self._matrix[piece_lo:piece_hi][order]
        self._denominators[piece_lo:piece_hi] = self._denominators[piece_lo:piece_hi][
            order
        ]
        self._row_ids[piece_lo:piece_hi] = self._row_ids[piece_lo:piece_hi][order]
        for index in range(piece_lo, piece_hi):
            self._position_of_id[int(self._row_ids[index])] = index
        if self._mirror is not None:
            self._mirror[piece_lo:piece_hi] = self._mirror[piece_lo:piece_hi][order]
        if self._product_cache is not None:
            self._product_cache.apply_order(piece_lo, piece_hi, order)

    def _check_range(self, piece_lo: int, piece_hi: int) -> None:
        if not 0 <= piece_lo <= piece_hi <= len(self):
            raise IndexStateError(
                "piece [%d, %d) out of bounds for column of size %d"
                % (piece_lo, piece_hi, len(self))
            )
