"""Multi-column encrypted tables with positional tuple reconstruction.

The paper evaluates a single-column select operator, "common to all
modern column-stores" (Section 5); a real deployment holds several
encrypted attributes side by side.  This module extends the system the
way column-stores do (Section 2.2's flow, and the self-organising
tuple-reconstruction line of work the paper cites):

* every encrypted column is registered under its own name in the
  server's :class:`~repro.net.catalog.ColumnCatalog` and is cracked
  independently — queries on the ``price`` column never touch the
  ``volume`` column's physical order;
* a selection on one attribute returns stable *row ids*; sibling
  attributes are then materialised by id through each column's O(1)
  id-to-position map (maintained across cracks);
* under ambiguity, each logical row has two physical rows *per
  column*, and which interpretation is real is drawn independently per
  column — an adversary correlating columns learns nothing about which
  face is real; the client fetches both faces of a logical row and
  keeps the real one.

Like :class:`~repro.core.session.OutsourcedDatabase`, the table speaks
only protocol messages: each column gets a
:class:`~repro.net.client.RemoteColumn` handle over a shared transport
(in-process loopback by default, TCP to a ``repro serve`` endpoint
otherwise).  Tuple reconstruction is a second protocol round by
construction (the first round cannot know which ids qualify); the
table counts rounds so the cost is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.client import TrustedClient
from repro.core.query import EncryptedQuery
from repro.core.secure_index import SecureAdaptiveIndex
from repro.crypto.ciphertext import ValueCiphertext
from repro.errors import ProtocolError, QueryError, UpdateError
from repro.net.catalog import ColumnCatalog
from repro.net.client import RemoteColumn
from repro.net.protocol import (
    ErrorResponse,
    FetchRequest,
    FetchResponse,
    raise_error_response,
)
from repro.net.transport import LoopbackTransport, Transport
from repro.obs import Observability


class SecureTableServer:
    """Server side of a table: a named-column view over a catalog.

    Constructing one registers each ciphertext column in a
    :class:`~repro.net.catalog.ColumnCatalog` (a private one unless an
    existing catalog is passed); :meth:`attached` instead views columns
    that already live in a catalog — e.g. ones uploaded through the
    wire protocol.  Either way the per-column engines are ordinary
    :class:`~repro.core.server.SecureServer` instances, so tests and
    benchmarks can introspect cracking state through :meth:`engine`.

    Args:
        columns: mapping of attribute name to ciphertext rows; all
            columns must share the same id set.
        row_ids: the shared physical ids.
        catalog: register into this catalog instead of a private one.
        namespace: prefix for catalog column names (so several tables
            can share one endpoint without clashing).
        engine_kwargs: engine configuration for every column (the
            :data:`~repro.net.protocol.CONFIG_DEFAULTS` knobs).
    """

    def __init__(
        self,
        columns: Dict[str, Sequence[ValueCiphertext]],
        row_ids: Sequence[int],
        catalog: ColumnCatalog = None,
        namespace: str = "",
        **engine_kwargs,
    ) -> None:
        if not columns:
            raise UpdateError("a table needs at least one column")
        row_ids = list(row_ids)
        for name, rows in columns.items():
            if len(rows) != len(row_ids):
                raise UpdateError(
                    "column %r has %d rows, expected %d"
                    % (name, len(rows), len(row_ids))
                )
        self._catalog = catalog if catalog is not None else ColumnCatalog()
        self._namespace = namespace
        self._names = list(columns)
        for name, rows in columns.items():
            self._catalog.create_column(
                namespace + name, rows, row_ids, dict(engine_kwargs)
            )
        self.requests_served = 0

    @classmethod
    def attached(
        cls, catalog: ColumnCatalog, names: Sequence[str], namespace: str = ""
    ) -> "SecureTableServer":
        """View columns that already exist in ``catalog`` (no upload)."""
        view = cls.__new__(cls)
        view._catalog = catalog
        view._namespace = namespace
        view._names = list(names)
        view.requests_served = 0
        return view

    @property
    def catalog(self) -> ColumnCatalog:
        """The catalog hosting this table's columns."""
        return self._catalog

    @property
    def column_names(self) -> List[str]:
        """All attribute names (without the catalog namespace)."""
        return list(self._names)

    def engine(self, name: str) -> SecureAdaptiveIndex:
        """The adaptive engine behind one column."""
        if name not in self._names:
            raise QueryError("unknown column: %r" % name)
        return self._catalog.server(self._namespace + name).engine

    def select(self, name: str, query: EncryptedQuery):
        """Range-select on one column; cracks it as a side effect.

        Returns ``(row_ids, ciphertext_rows)`` of that column.
        """
        if name not in self._names:
            raise QueryError("unknown column: %r" % name)
        self.requests_served += 1
        response = self._catalog.server(self._namespace + name).execute(query)
        return response.row_ids, response.rows

    def fetch(self, name: str, row_ids: Iterable[int]) -> List[ValueCiphertext]:
        """Materialise one column's rows by id (tuple reconstruction)."""
        self.requests_served += 1
        return self.engine(name).column.rows_by_ids(row_ids)


@dataclass(frozen=True)
class TableSelection:
    """Decrypted outcome of a table select.

    Attributes:
        logical_ids: qualifying logical row indices.
        values: the selected column's plaintext values, parallel to
            ``logical_ids``.
    """

    logical_ids: np.ndarray
    values: np.ndarray


class OutsourcedTable:
    """Client-facing multi-column encrypted table.

    Args:
        columns: mapping of attribute name to plaintext integer values
            (equal lengths).
        ambiguity: per-column two-faced encryption (independent
            real-branch coins per column).
        seed, key, key_length: as for
            :class:`~repro.core.session.OutsourcedDatabase`; one key
            covers all columns (per-column keys would also work — the
            ciphertexts never interact across columns).
        transport: channel to the server endpoint; ``None`` (default)
            creates a private loopback catalog.
        namespace: prefix for this table's column names at the
            endpoint (needed when several tables share one server).
        obs: observability bundle for the client-side counters.
        codec: wire frame codec (``"auto"`` negotiates binary, once,
            for the shared transport; ``"json"``/``"binary"`` force).
        engine_kwargs: forwarded to every column engine.
    """

    def __init__(
        self,
        columns: Dict[str, Sequence[int]],
        ambiguity: bool = False,
        seed: int = None,
        key=None,
        key_length: int = 4,
        transport: Transport = None,
        namespace: str = "",
        obs: Observability = None,
        codec: str = "auto",
        **engine_kwargs,
    ) -> None:
        if not columns:
            raise UpdateError("a table needs at least one column")
        lengths = {name: len(list(values)) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise UpdateError("columns must have equal lengths: %r" % lengths)
        self._nrows = next(iter(lengths.values()))
        if ambiguity:
            pooled = [int(v) for values in columns.values() for v in values]
            fake_domain = (min(pooled), max(pooled) + 1) if pooled else None
        else:
            fake_domain = None
        self.client = TrustedClient(
            key=key,
            seed=seed,
            ambiguity=ambiguity,
            key_length=key_length,
            fake_domain=fake_domain,
        )
        self._obs = obs if obs is not None else Observability()
        if transport is None:
            self._catalog = ColumnCatalog(obs=self._obs)
            transport = LoopbackTransport(self._catalog)
        else:
            self._catalog = None
        self._transport = transport
        self._namespace = namespace
        self._names = list(columns)
        self._handles: Dict[str, RemoteColumn] = {}
        for name, values in columns.items():
            rows, row_ids = self.client.encrypt_dataset(values)
            handle = RemoteColumn(
                transport, namespace + name, obs=self._obs, codec=codec
            )
            handle.create(rows, row_ids, dict(engine_kwargs))
            self._handles[name] = handle
        self.round_trips = 0

    def __len__(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> List[str]:
        """All attribute names."""
        return list(self._names)

    @property
    def transport(self) -> Transport:
        """The transport shared by every column handle."""
        return self._transport

    @property
    def server(self) -> SecureTableServer:
        """A server-side view of this table's columns.

        Only available over loopback (tests introspect cracking state
        through it); over a remote transport the columns live in
        another process and this raises :class:`ProtocolError`.
        """
        if self._catalog is None:
            raise ProtocolError(
                "table is connected over a remote transport; "
                "server state is not locally reachable"
            )
        return SecureTableServer.attached(
            self._catalog, self._names, self._namespace
        )

    def _handle(self, name: str) -> RemoteColumn:
        try:
            return self._handles[name]
        except KeyError:
            raise QueryError("unknown column: %r" % name) from None

    # -- query processing ---------------------------------------------------

    def select(
        self,
        name: str,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> TableSelection:
        """Range-select on one attribute (one round trip).

        Either bound may be None for a one-sided select.
        """
        handle = self._handle(name)
        query = self.client.make_query(low, high, low_inclusive, high_inclusive)
        response = handle.query(query)
        self.round_trips += 1
        result = self.client.decrypt_results(response.row_ids, response.rows)
        return TableSelection(
            logical_ids=result.logical_ids, values=result.values
        )

    def select_range_many(
        self, name: str, ranges: Sequence[Sequence]
    ) -> List[TableSelection]:
        """Pipeline several range-selects on one attribute (one round).

        Each range is ``(low, high)`` or
        ``(low, high, low_inclusive, high_inclusive)``; results come
        back in request order.  The server executes the batch under the
        column lock, so this is equivalent to — but one round trip
        cheaper than — the same :meth:`select` calls in sequence.
        """
        handle = self._handle(name)
        queries = []
        for spec in ranges:
            args = tuple(spec)
            if not 2 <= len(args) <= 4:
                raise QueryError(
                    "range spec needs 2-4 elements, got %r" % (spec,)
                )
            queries.append(self.client.make_query(*args))
        responses = handle.query_many(queries)
        self.round_trips += 1
        out: List[TableSelection] = []
        for response in responses:
            result = self.client.decrypt_results(
                response.row_ids, response.rows
            )
            out.append(
                TableSelection(
                    logical_ids=result.logical_ids, values=result.values
                )
            )
        return out

    def fetch(self, name: str, logical_ids: Sequence[int]) -> np.ndarray:
        """Reconstruct another attribute for selected logical rows.

        One additional round trip; under ambiguity both faces of each
        logical row are requested and the real one kept (which face is
        real differs per column, so the request pattern reveals
        nothing).
        """
        handle = self._handle(name)
        rows = handle.fetch(self._physical_ids(logical_ids))
        self.round_trips += 1
        return self._decrypt_fetched(rows)

    def fetch_many(
        self, names: Sequence[str], logical_ids: Sequence[int]
    ) -> Dict[str, np.ndarray]:
        """Reconstruct several attributes in one batched round trip.

        Each attribute becomes one fetch sub-request inside a single
        batch envelope (every sub-request names its own column), so the
        whole projection costs one round trip instead of one per
        column.  Returns ``{name: values}`` with every array parallel
        to ``logical_ids``.
        """
        names = list(names)
        if not names:
            return {}
        handles = [self._handle(name) for name in names]
        physical_ids = self._physical_ids(logical_ids)
        responses = handles[0].call_many(
            [
                FetchRequest(column=handle.column, row_ids=tuple(physical_ids))
                for handle in handles
            ]
        )
        self.round_trips += 1
        out: Dict[str, np.ndarray] = {}
        for name, response in zip(names, responses):
            if isinstance(response, ErrorResponse):
                raise_error_response(response)
            if not isinstance(response, FetchResponse):
                raise ProtocolError(
                    "expected FetchResponse, got %s" % type(response).__name__
                )
            out[name] = self._decrypt_fetched(list(response.rows))
        return out

    def _physical_ids(self, logical_ids: Sequence[int]) -> List[int]:
        """Expand logical ids to the physical ids a fetch must request."""
        physical_ids: List[int] = []
        for logical in (int(i) for i in logical_ids):
            if self.client.ambiguity:
                physical_ids.extend((2 * logical, 2 * logical + 1))
            else:
                physical_ids.append(logical)
        return physical_ids

    def _decrypt_fetched(self, rows: List[ValueCiphertext]) -> np.ndarray:
        """Decrypt fetched rows, resolving two-faced pairs under
        ambiguity."""
        values: List[int] = []
        if self.client.ambiguity:
            for pair_index in range(0, len(rows), 2):
                first = self.client.encryptor.decrypt_row(rows[pair_index])
                second = self.client.encryptor.decrypt_row(rows[pair_index + 1])
                real = first if first.is_real else second
                values.append(real.value)
        else:
            for row in rows:
                values.append(self.client.encryptor.decrypt_value(row))
        return np.array(values, dtype=np.int64)

    def select_tuples(
        self,
        name: str,
        low: int,
        high: int,
        fetch_columns: Sequence[str] = (),
        **kwargs,
    ) -> Dict[str, np.ndarray]:
        """Select + reconstruct in one call (two rounds total).

        The reconstruction of every ``fetch_columns`` attribute rides
        in a single batch envelope via :meth:`fetch_many`.
        """
        selection = self.select(name, low, high, **kwargs)
        out = {"logical_ids": selection.logical_ids, name: selection.values}
        others = [c for c in fetch_columns if c != name]
        if others:
            out.update(self.fetch_many(others, selection.logical_ids))
        return out
