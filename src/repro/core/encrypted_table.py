"""Multi-column encrypted tables with positional tuple reconstruction.

The paper evaluates a single-column select operator, "common to all
modern column-stores" (Section 5); a real deployment holds several
encrypted attributes side by side.  This module extends the system the
way column-stores do (Section 2.2's flow, and the self-organising
tuple-reconstruction line of work the paper cites):

* every encrypted column lives in its own
  :class:`~repro.core.secure_index.SecureAdaptiveIndex` and is cracked
  independently — queries on the ``price`` column never touch the
  ``volume`` column's physical order;
* a selection on one attribute returns stable *row ids*; sibling
  attributes are then materialised by id through each column's O(1)
  id-to-position map (maintained across cracks);
* under ambiguity, each logical row has two physical rows *per
  column*, and which interpretation is real is drawn independently per
  column — an adversary correlating columns learns nothing about which
  face is real; the client fetches both faces of a logical row and
  keeps the real one.

Tuple reconstruction is a second protocol round by construction
(the first round cannot know which ids qualify); the session counts
rounds so the cost is explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.core.client import TrustedClient
from repro.core.encrypted_column import EncryptedColumn
from repro.core.query import EncryptedQuery
from repro.core.secure_index import SecureAdaptiveIndex
from repro.crypto.ciphertext import ValueCiphertext
from repro.errors import QueryError, UpdateError


class SecureTableServer:
    """Server side: one adaptive engine per encrypted column.

    Args:
        columns: mapping of attribute name to (rows, row_ids); all
            columns must share the same id set.
        engine_kwargs: forwarded to every column's engine.
    """

    def __init__(
        self,
        columns: Dict[str, Sequence[ValueCiphertext]],
        row_ids: Sequence[int],
        **engine_kwargs,
    ) -> None:
        if not columns:
            raise UpdateError("a table needs at least one column")
        self._engines: Dict[str, SecureAdaptiveIndex] = {}
        row_ids = list(row_ids)
        for name, rows in columns.items():
            if len(rows) != len(row_ids):
                raise UpdateError(
                    "column %r has %d rows, expected %d"
                    % (name, len(rows), len(row_ids))
                )
            self._engines[name] = SecureAdaptiveIndex(
                EncryptedColumn(rows, row_ids), **engine_kwargs
            )
        self.requests_served = 0

    @property
    def column_names(self) -> List[str]:
        """All attribute names."""
        return list(self._engines)

    def engine(self, name: str) -> SecureAdaptiveIndex:
        """The adaptive engine behind one column."""
        try:
            return self._engines[name]
        except KeyError:
            raise QueryError("unknown column: %r" % name) from None

    def select(self, name: str, query: EncryptedQuery):
        """Range-select on one column; cracks it as a side effect.

        Returns ``(row_ids, ciphertext_rows)`` of that column.
        """
        self.requests_served += 1
        return self.engine(name).query(query)

    def fetch(self, name: str, row_ids: Iterable[int]) -> List[ValueCiphertext]:
        """Materialise one column's rows by id (tuple reconstruction)."""
        self.requests_served += 1
        return self.engine(name).column.rows_by_ids(row_ids)


@dataclass(frozen=True)
class TableSelection:
    """Decrypted outcome of a table select.

    Attributes:
        logical_ids: qualifying logical row indices.
        values: the selected column's plaintext values, parallel to
            ``logical_ids``.
    """

    logical_ids: np.ndarray
    values: np.ndarray


class OutsourcedTable:
    """Client-facing multi-column encrypted table.

    Args:
        columns: mapping of attribute name to plaintext integer values
            (equal lengths).
        ambiguity: per-column two-faced encryption (independent
            real-branch coins per column).
        seed, key, key_length: as for
            :class:`~repro.core.session.OutsourcedDatabase`; one key
            covers all columns (per-column keys would also work — the
            ciphertexts never interact across columns).
        engine_kwargs: forwarded to every column engine.
    """

    def __init__(
        self,
        columns: Dict[str, Sequence[int]],
        ambiguity: bool = False,
        seed: int = None,
        key=None,
        key_length: int = 4,
        **engine_kwargs,
    ) -> None:
        if not columns:
            raise UpdateError("a table needs at least one column")
        lengths = {name: len(list(values)) for name, values in columns.items()}
        if len(set(lengths.values())) != 1:
            raise UpdateError("columns must have equal lengths: %r" % lengths)
        self._nrows = next(iter(lengths.values()))
        if ambiguity:
            pooled = [int(v) for values in columns.values() for v in values]
            fake_domain = (min(pooled), max(pooled) + 1) if pooled else None
        else:
            fake_domain = None
        self.client = TrustedClient(
            key=key,
            seed=seed,
            ambiguity=ambiguity,
            key_length=key_length,
            fake_domain=fake_domain,
        )
        encrypted: Dict[str, List[ValueCiphertext]] = {}
        shared_ids = None
        for name, values in columns.items():
            rows, row_ids = self.client.encrypt_dataset(values)
            encrypted[name] = rows
            if shared_ids is None:
                shared_ids = row_ids
        self.server = SecureTableServer(encrypted, shared_ids, **engine_kwargs)
        self.round_trips = 0

    def __len__(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> List[str]:
        """All attribute names."""
        return self.server.column_names

    # -- query processing ---------------------------------------------------

    def select(
        self,
        name: str,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> TableSelection:
        """Range-select on one attribute (one round trip).

        Either bound may be None for a one-sided select.
        """
        query = self.client.make_query(low, high, low_inclusive, high_inclusive)
        row_ids, rows = self.server.select(name, query)
        self.round_trips += 1
        result = self.client.decrypt_results(row_ids, rows)
        return TableSelection(
            logical_ids=result.logical_ids, values=result.values
        )

    def fetch(self, name: str, logical_ids: Sequence[int]) -> np.ndarray:
        """Reconstruct another attribute for selected logical rows.

        One additional round trip; under ambiguity both faces of each
        logical row are requested and the real one kept (which face is
        real differs per column, so the request pattern reveals
        nothing).
        """
        logical_ids = [int(i) for i in logical_ids]
        physical_ids: List[int] = []
        for logical in logical_ids:
            if self.client.ambiguity:
                physical_ids.extend((2 * logical, 2 * logical + 1))
            else:
                physical_ids.append(logical)
        rows = self.server.fetch(name, physical_ids)
        self.round_trips += 1
        values: List[int] = []
        if self.client.ambiguity:
            for pair_index in range(0, len(rows), 2):
                first = self.client.encryptor.decrypt_row(rows[pair_index])
                second = self.client.encryptor.decrypt_row(rows[pair_index + 1])
                real = first if first.is_real else second
                values.append(real.value)
        else:
            for row in rows:
                values.append(self.client.encryptor.decrypt_value(row))
        return np.array(values, dtype=np.int64)

    def select_tuples(
        self,
        name: str,
        low: int,
        high: int,
        fetch_columns: Sequence[str] = (),
        **kwargs,
    ) -> Dict[str, np.ndarray]:
        """Select + reconstruct in one call (1 + len(fetch) rounds)."""
        selection = self.select(name, low, high, **kwargs)
        out = {"logical_ids": selection.logical_ids, name: selection.values}
        for other in fetch_columns:
            if other == name:
                continue
            out[other] = self.fetch(other, selection.logical_ids)
        return out
