"""The honest-but-curious server: stores ciphertexts, answers queries.

The server holds only ciphertext rows and the encrypted AVL index; it
executes queries "as with a non-encrypted database" (Section 3.3) —
locate pieces, crack, return the qualifying rows — plus the update
path of requirement 6: newly arriving encrypted rows land in a pending
buffer that is scanned per query until a merge ripples them into their
pieces (routing each row down the tree with scalar products).

Every response is a single message containing exactly the qualifying
rows (requirement 5); :attr:`rows_shipped` accounts for the transfer
volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.crypto.ciphertext import ValueCiphertext
from repro.core.encrypted_column import EncryptedColumn
from repro.core.query import EncryptedQuery
from repro.core.secure_index import SecureAdaptiveIndex
from repro.core.secure_scan import SecureScan
from repro.errors import ProtocolError, UpdateError
from repro.linalg.kernels import ProductCache, single_product
from repro.obs import Observability
from repro.store.updates import PendingUpdates

ENGINES = ("adaptive", "scan")

#: Wire cost of one row id in a response (int64, as serialised).
ROW_ID_BYTES = 8


@dataclass(frozen=True)
class ServerResponse:
    """One query's response: qualifying rows, in a single round."""

    row_ids: np.ndarray
    rows: List[ValueCiphertext]

    @property
    def size_bytes(self) -> int:
        """Estimated wire size of the response (ciphertext rows plus
        row ids, under a compact binary coding).  Transports measure
        the real encoded frame lengths; this estimate feeds the
        server-side ``bytes_shipped`` ledger, which exists even when no
        transport is watching."""
        return sum(row.size_bytes for row in self.rows) + ROW_ID_BYTES * len(
            self.row_ids
        )


class SecureServer:
    """Server-side endpoint: encrypted storage, indexing, updates.

    Args:
        rows: uploaded ciphertext rows.
        row_ids: stable physical ids parallel to ``rows`` (default
            ``0..n-1``).
        engine: ``"adaptive"`` for secure cracking (the paper's
            system) or ``"scan"`` for the SecureScan baseline.
        auto_merge_threshold: when set, the pending buffer is merged
            into the main column as soon as it exceeds this many rows
            (bounding the per-query pending-scan cost); None keeps
            merging fully manual.
        min_piece_size / use_three_way / use_paper_tree_algorithms /
            record_stats: forwarded to the adaptive engine.
    """

    def __init__(
        self,
        rows: Sequence[ValueCiphertext],
        row_ids: Sequence[int] = None,
        engine: str = "adaptive",
        auto_merge_threshold: int = None,
        min_piece_size: int = 1,
        use_three_way: bool = False,
        use_paper_tree_algorithms: bool = False,
        record_stats: bool = True,
        obs: Observability = None,
    ) -> None:
        if auto_merge_threshold is not None and auto_merge_threshold < 1:
            raise UpdateError("auto-merge threshold must be positive")
        self._auto_merge_threshold = auto_merge_threshold
        if engine not in ENGINES:
            raise ProtocolError("unknown engine %r; pick from %s" % (engine, ENGINES))
        self._obs = obs if obs is not None else Observability()
        column = EncryptedColumn(rows, row_ids, obs=self._obs)
        if engine == "adaptive":
            self._engine = SecureAdaptiveIndex(
                column,
                min_piece_size=min_piece_size,
                use_three_way=use_three_way,
                use_paper_tree_algorithms=use_paper_tree_algorithms,
                record_stats=record_stats,
                obs=self._obs,
            )
        else:
            self._engine = SecureScan(column, record_stats=record_stats, obs=self._obs)
        self.engine_kind = engine
        if row_ids is None:
            next_id = len(rows)
        else:
            ids = [int(i) for i in row_ids]
            next_id = max(ids) + 1 if ids else 0
        self._updates: PendingUpdates[ValueCiphertext] = PendingUpdates(next_id)
        self.queries_served = 0
        self.rows_shipped = 0
        self.bytes_shipped = 0

    def __len__(self) -> int:
        return len(self._engine.column) + len(self._updates)

    @property
    def obs(self) -> Observability:
        """The observability bundle shared by server, engine, column."""
        return self._obs

    @property
    def engine(self):
        """The query engine (adaptive index or secure scan)."""
        return self._engine

    @property
    def stats_log(self):
        """Per-query engine cost breakdowns."""
        return self._engine.stats_log

    @property
    def pending_count(self) -> int:
        """Rows waiting in the pending buffer."""
        return len(self._updates)

    @property
    def record_stats(self) -> bool:
        """Whether the engine records per-query cost breakdowns."""
        return bool(getattr(self._engine, "_record_stats", True))

    # -- query path ---------------------------------------------------------------

    def execute(self, query: EncryptedQuery) -> ServerResponse:
        """Answer one encrypted query in a single round.

        The indexed column is consulted through the engine (cracking as
        a side effect under the adaptive engine); pending inserts are
        scanned with scalar products; tombstoned rows are filtered out.
        """
        audit = self._obs.audit
        if audit.enabled:
            audit.record(
                "query",
                bound=audit.ref(query.low.eb if query.low is not None else None),
                bound_high=audit.ref(
                    query.high.eb if query.high is not None else None
                ),
                pending=len(self._updates),
            )
        with self._obs.span("server-execute", pending=len(self._updates)):
            indices = self._engine.qualifying_indices(query)
            column = self._engine.column
            row_ids = column.row_ids_at(indices)
            live = [
                (int(row_id), column.row(int(index)))
                for row_id, index in zip(row_ids, indices)
                if not self._updates.is_deleted(int(row_id))
            ]
            counters = column.kernel_counters
            fast_before, exact_before = counters.snapshot()
            pending_cache = ProductCache()
            with self._obs.span("pending-scan", pending=len(self._updates)):
                for row_id, row in self._updates.pending:
                    if self._updates.is_deleted(row_id):
                        continue
                    if _row_qualifies(row, row_id, query, pending_cache, counters):
                        live.append((row_id, row))
            self._merge_pending_scan_stats(
                counters.snapshot(), (fast_before, exact_before), pending_cache
            )
        self.queries_served += 1
        self.rows_shipped += len(live)
        shipped = sum(row.size_bytes for _, row in live)
        self.bytes_shipped += shipped
        metrics = self._obs.metrics
        metrics.add("server.queries_served")
        metrics.add("server.rows_shipped", len(live))
        metrics.add("server.bytes_shipped", shipped)
        if audit.enabled:
            audit.record("response", rows=len(live))
        ids = np.array([row_id for row_id, _ in live], dtype=np.int64)
        rows = [row for _, row in live]
        return ServerResponse(row_ids=ids, rows=rows)

    # -- update path -----------------------------------------------------------------

    def insert(self, rows: Sequence[ValueCiphertext]) -> List[int]:
        """Buffer newly arriving encrypted rows; returns assigned ids.

        With ``auto_merge_threshold`` configured, crossing it triggers
        an immediate merge (the inserted rows stay visible throughout).
        """
        if not rows:
            raise UpdateError("insert requires at least one row")
        assigned = [self._updates.insert(row) for row in rows]
        self._obs.metrics.add("server.rows_inserted", len(assigned))
        if self._obs.audit.enabled:
            self._obs.audit.record("insert", rows=len(assigned))
        if (
            self._auto_merge_threshold is not None
            and len(self._updates) > self._auto_merge_threshold
        ):
            self.merge_pending()
        return assigned

    def delete(self, row_ids: Sequence[int]) -> None:
        """Tombstone rows by physical id."""
        for row_id in row_ids:
            self._updates.delete(int(row_id))
        self._obs.metrics.add("server.rows_deleted", len(row_ids))
        if self._obs.audit.enabled:
            self._obs.audit.record("delete", rows=len(row_ids))

    def merge_pending(self) -> int:
        """Fold the pending buffer into the main column; returns row delta.

        Under the adaptive engine each pending row is *rippled* into
        its piece (tree-routed by scalar products); under the scan
        engine rows are appended (order is irrelevant to a scan).
        Tombstoned rows are physically reclaimed.
        """
        pending, tombstones = self._updates.drain()
        with self._obs.span(
            "merge-pending", pending=len(pending), tombstones=len(tombstones)
        ):
            column = self._engine.column
            present = set(int(i) for i in column.row_ids)
            for row_id in sorted(tombstones):
                if row_id not in present:
                    continue
                if self.engine_kind == "adaptive":
                    self._engine.delete_row(row_id)
                else:
                    column.delete_at(column.physical_index_of(row_id))
            for row_id, row in pending:
                if self.engine_kind == "adaptive":
                    self._engine.insert_row(row, row_id)
                else:
                    column.insert_at(len(column), row, row_id)
        self._obs.metrics.add("server.merges")
        if self._obs.audit.enabled:
            self._obs.audit.record(
                "merge", pending=len(pending), tombstones=len(tombstones)
            )
        return len(pending) - len(tombstones & present)

    def _merge_pending_scan_stats(
        self, after, before, pending_cache: ProductCache
    ) -> None:
        """Fold pending-scan kernel counts into the query's stats entry.

        The engine appended this query's :class:`QueryStats` inside
        ``qualifying_indices``; the pending-buffer scan happens after
        that, so its products are accounted onto the same entry.

        The per-tier product counts already reached the metrics
        registry at multiply time (the column's
        :class:`~repro.linalg.kernels.KernelCounters` is registry-bound),
        so only the per-query view needs the fold here.  Cache hits are
        counted client-side of the kernel, so when there is no stats
        entry to fold into — stats recording off, or an empty log —
        they are routed to the registry directly instead of being lost.
        """
        log = self._engine.stats_log
        if getattr(self._engine, "_record_stats", False) and log:
            stats = log[-1]
            stats.kernel_fast_products += after[0] - before[0]
            stats.kernel_exact_products += after[1] - before[1]
            stats.product_cache_hits += pending_cache.hits
        elif pending_cache.hits:
            self._obs.metrics.add("kernel.cache_hits", pending_cache.hits)


def _pending_product(
    bound, row: ValueCiphertext, row_id: int, cache: ProductCache, counters
) -> int:
    """One kernel-routed ``Eb . Ev`` product for a pending-buffer row,
    memoised per ``(bound, row)`` in the per-query cache."""
    cached = cache.lookup_scalar(bound, row_id)
    if cached is not None:
        return cached
    product = single_product(
        bound.vector, row.numerators, bound.max_abs, row.max_abs, counters
    )
    cache.store_scalar(bound, row_id, product)
    return product


def _row_qualifies(
    row: ValueCiphertext,
    row_id: int,
    query: EncryptedQuery,
    cache: ProductCache,
    counters,
) -> bool:
    """Evaluate the full range predicate on one row via scalar products."""
    if query.low is not None:
        low_product = _pending_product(query.low.eb, row, row_id, cache, counters)
        if not (low_product >= 0 if query.low_inclusive else low_product > 0):
            return False
    if query.high is None:
        return True
    high_product = _pending_product(query.high.eb, row, row_id, cache, counters)
    return high_product <= 0 if query.high_inclusive else high_product < 0
