"""The paper's contribution: adaptive indexing over encrypted data.

Server side:

* :class:`repro.core.encrypted_column.EncryptedColumn` — ciphertext
  rows in a dense array, cracked through scalar-product sign tests.
* :class:`repro.core.secure_index.SecureAdaptiveIndex` — the
  query-triggered cracking engine with the encrypted AVL index
  (Section 4.3).
* :class:`repro.core.secure_scan.SecureScan` — the no-index baseline.
* :class:`repro.core.server.SecureServer` — storage, query execution,
  and the pending-update path.

Client side and protocol:

* :class:`repro.core.client.TrustedClient` — the key holder.
* :class:`repro.core.query.EncryptedQuery` — the one-round query
  message (each bound in both encryption modes).
* :class:`repro.core.session.OutsourcedDatabase` — the end-to-end
  plaintext-in / plaintext-out facade.
"""

from repro.core.client import ClientResult, TrustedClient
from repro.core.encrypted_column import EncryptedColumn
from repro.core.encrypted_table import OutsourcedTable, SecureTableServer
from repro.core.opes_index import OpesOutsourcedDatabase
from repro.core.persistence import restore_server, snapshot_server
from repro.core.query import (
    EncryptedBound,
    EncryptedBoundKey,
    EncryptedQuery,
    compare_encrypted_keys,
)
from repro.core.secure_index import SecureAdaptiveIndex
from repro.core.secure_scan import SecureScan
from repro.core.server import SecureServer, ServerResponse
from repro.core.session import OutsourcedDatabase

__all__ = [
    "ClientResult",
    "TrustedClient",
    "EncryptedColumn",
    "OutsourcedTable",
    "SecureTableServer",
    "OpesOutsourcedDatabase",
    "restore_server",
    "snapshot_server",
    "EncryptedBound",
    "EncryptedBoundKey",
    "EncryptedQuery",
    "compare_encrypted_keys",
    "SecureAdaptiveIndex",
    "SecureScan",
    "SecureServer",
    "ServerResponse",
    "OutsourcedDatabase",
]
