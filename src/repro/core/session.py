"""End-to-end outsourced database session.

:class:`OutsourcedDatabase` wires a :class:`~repro.core.client.TrustedClient`
to a named column on a server endpoint and exposes the plaintext
interface the data owner actually uses: load a column, run range and
point queries, insert and delete values.  Each query is exactly one
round trip (paper requirement 5) — the session counts them so tests can
enforce it.

The session never holds a server reference.  It speaks only protocol
messages through a :class:`~repro.net.client.RemoteColumn` handle over
a pluggable transport: the default is an in-process loopback onto a
private :class:`~repro.net.catalog.ColumnCatalog` (still encoding and
decoding every frame), and passing ``transport=TcpTransport(...)``
moves the whole session onto a remote ``repro serve`` endpoint without
any other change.  :attr:`bytes_sent` / :attr:`bytes_received` are the
summed lengths of the actually-encoded frames, not estimates.

The session also implements the client-assisted stochastic-cracking
extension: with ``jitter_pivots > 0`` the client attaches that many
random encrypted pivot bounds to every query, giving the server
robustness pivots it could never generate itself (Section 5.5: data
"can be sorted only in a query-triggered manner, relying on encrypted
pivot values provided by the client").
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.client import ClientResult, TrustedClient
from repro.crypto.key import SecretKey
from repro.errors import ProtocolError, QueryError, UpdateError
from repro.net.catalog import ColumnCatalog
from repro.net.client import RemoteColumn
from repro.net.shard import ShardedRemoteColumn
from repro.net.transport import LoopbackTransport, Transport
from repro.obs import Observability


class OutsourcedDatabase:
    """One encrypted column outsourced to a (possibly remote) server.

    Args:
        values: the plaintext column to outsource.
        ambiguity: enable the Section 4.2 two-branch encryption.
        engine: ``"adaptive"`` (secure cracking) or ``"scan"``
            (SecureScan baseline).
        key: reuse an existing secret key; generated when omitted.
        seed: reproducibility seed for key generation, encryption
            randomness, and jitter pivots.
        key_length: ciphertext length ``l`` when generating a key.
        jitter_pivots: number of random client-supplied pivots attached
            to each query (0 disables; requires the adaptive engine).
        pivot_domain: half-open plaintext interval pivots are drawn
            from; defaults to the column's observed min/max.
        transport: channel to the server endpoint.  ``None`` (default)
            creates a private in-process catalog behind a loopback
            transport; a :class:`~repro.net.transport.TcpTransport`
            points the session at a ``repro serve`` endpoint.
        column: the name this session's column is registered under at
            the endpoint (sessions sharing one endpoint pick distinct
            names).
        codec: wire frame codec — ``"auto"`` (default) negotiates the
            compact binary codec with the endpoint and falls back to
            JSON against old peers; ``"json"`` / ``"binary"`` force
            one.
        shards: ``0`` (default) registers one catalog column; ``N >= 1``
            spreads the column over N catalog shards behind a
            :class:`~repro.net.shard.ShardedRemoteColumn` — every query
            fans out as one parallel batch and each shard cracks
            independently under its own lock.  ``shards=1`` is the
            sharded machinery with identity routing (byte-identical
            results to an unsharded column).
        min_piece_size / use_three_way / use_paper_tree_algorithms /
            record_stats: forwarded to the server engine.
    """

    def __init__(
        self,
        values: Sequence[int],
        ambiguity: bool = False,
        engine: str = "adaptive",
        key: SecretKey = None,
        seed: int = None,
        key_length: int = 4,
        fake_domain: Tuple[int, int] = None,
        jitter_pivots: int = 0,
        pivot_domain: Tuple[int, int] = None,
        auto_merge_threshold: int = None,
        min_piece_size: int = 1,
        use_three_way: bool = False,
        use_paper_tree_algorithms: bool = False,
        record_stats: bool = True,
        obs: Observability = None,
        transport: Transport = None,
        column: str = "values",
        codec: str = "auto",
        shards: int = 0,
    ) -> None:
        values = [int(v) for v in values]
        if jitter_pivots and engine != "adaptive":
            raise QueryError("jitter pivots require the adaptive engine")
        self._obs = obs if obs is not None else Observability()
        metrics = self._obs.metrics
        # Protocol counters exist from the start so a metrics snapshot
        # always shows them, even before the first query.
        self._round_trips = metrics.counter("protocol.round_trips")
        self._bytes_sent = metrics.counter("protocol.bytes_sent")
        self._bytes_received = metrics.counter("protocol.bytes_received")
        self._decrypt_seconds = metrics.counter("client.decrypt_seconds")
        self.client = TrustedClient(
            key=key,
            seed=seed,
            ambiguity=ambiguity,
            key_length=key_length,
            fake_domain=fake_domain,
        )
        rows, row_ids = self.client.encrypt_dataset(values)
        # The full server configuration is kept on the session (and at
        # the catalog) so maintenance operations rebuilding the column
        # (key rotation) restore every knob, not just a subset.
        self._server_config = dict(
            engine=engine,
            auto_merge_threshold=auto_merge_threshold,
            min_piece_size=min_piece_size,
            use_three_way=use_three_way,
            use_paper_tree_algorithms=use_paper_tree_algorithms,
            record_stats=record_stats,
        )
        if transport is None:
            # Loopback deployment: the session owns a private endpoint,
            # but still reaches it only through encoded frames.
            self._catalog = ColumnCatalog(obs=self._obs)
            transport = LoopbackTransport(self._catalog)
        else:
            self._catalog = None
        self._transport = transport
        self._column_name = column
        self._shards = int(shards)
        if self._shards < 0:
            raise UpdateError("shard count must be >= 0")
        if self._shards:
            self._remote = ShardedRemoteColumn(
                transport,
                column,
                shards=self._shards,
                physical_per_value=2 if ambiguity else 1,
                obs=self._obs,
                codec=codec,
            )
        else:
            self._remote = RemoteColumn(
                transport, column, obs=self._obs, codec=codec
            )
        self._remote.create(rows, row_ids, self._server_config)
        self._jitter_pivots = int(jitter_pivots)
        if pivot_domain is None and values:
            pivot_domain = (min(values), max(values) + 1)
        self._pivot_domain = pivot_domain
        self._pivot_rng = random.Random(None if seed is None else seed + 2)
        self._logical_count = len(values)
        self._physical_per_value = 2 if ambiguity else 1
        self._base_physical_count = len(rows)
        # Inserted rows leave the formulaic id space; track explicitly.
        self._inserted_physical_to_logical: Dict[int, int] = {}
        self._logical_to_physical: Dict[int, List[int]] = {}
        self.client_stats: List[ClientResult] = []

    def __len__(self) -> int:
        return self._logical_count

    @property
    def obs(self) -> Observability:
        """The session-wide observability bundle (shared with a
        loopback endpoint; a remote endpoint keeps its own)."""
        return self._obs

    @property
    def column_name(self) -> str:
        """The name this session's column is registered under."""
        return self._column_name

    @property
    def remote(self) -> RemoteColumn:
        """The protocol handle this session speaks through."""
        return self._remote

    @property
    def transport(self) -> Transport:
        """The transport under the session (loopback or TCP)."""
        return self._transport

    @property
    def shard_count(self) -> int:
        """Number of catalog shards behind this session (0 = unsharded)."""
        return self._shards

    @property
    def server(self):
        """The in-process :class:`~repro.core.server.SecureServer`.

        Only a loopback session can reach engine state directly (tests
        and benchmarks introspect cracking through it); over a remote
        transport the server lives in another process and this raises
        :class:`ProtocolError`.
        """
        if self._catalog is None:
            raise ProtocolError(
                "session is connected over a remote transport; "
                "server state is not locally reachable"
            )
        if self._shards:
            raise ProtocolError(
                "a sharded session has no single server; "
                "use shard_servers()"
            )
        return self._catalog.server(self._column_name)

    def shard_servers(self):
        """The in-process engines behind each shard, in shard order
        (loopback sessions only — same restriction as :attr:`server`)."""
        if self._catalog is None:
            raise ProtocolError(
                "session is connected over a remote transport; "
                "server state is not locally reachable"
            )
        if not self._shards:
            return [self._catalog.server(self._column_name)]
        return [
            self._catalog.server(name) for name in self._remote.shard_names
        ]

    @server.setter
    def server(self, new_server) -> None:
        """Swap the loopback column's engine (snapshot restore)."""
        if self._catalog is None:
            raise ProtocolError(
                "session is connected over a remote transport; "
                "server state is not locally reachable"
            )
        self._catalog.replace_server(self._column_name, new_server)

    @property
    def round_trips(self) -> int:
        """Query round trips so far (the ``protocol.round_trips`` counter)."""
        return self._round_trips.value

    @property
    def bytes_sent(self) -> int:
        """Workload bytes shipped to the server: summed lengths of the
        actually-encoded request frames (``protocol.bytes_sent``)."""
        return self._bytes_sent.value

    @property
    def bytes_received(self) -> int:
        """Workload bytes received from the server: summed lengths of
        the encoded response frames (``protocol.bytes_received``)."""
        return self._bytes_received.value

    def _account_exchange(self) -> None:
        """Fold the last exchange's frame lengths into the workload
        counters (maintenance traffic skips this)."""
        self._bytes_sent.add(self._remote.last_sent_bytes)
        self._bytes_received.add(self._remote.last_received_bytes)

    # -- queries ------------------------------------------------------------------

    def query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> ClientResult:
        """Run one range query end to end (one round trip).

        Either bound may be None for a one-sided query.
        """
        with self._obs.span("session-query", pivots=self._jitter_pivots):
            pivots = self._draw_pivots()
            message = self.client.make_query(
                low, high, low_inclusive, high_inclusive, pivots=pivots
            )
            response = self._remote.query(message)
            self._round_trips.add(1)
            self._account_exchange()
            result = self.client.decrypt_results(
                response.row_ids, response.rows, id_mapper=self._map_physical_id
            )
            self._decrypt_seconds.add(result.decrypt_seconds)
        self.client_stats.append(result)
        return result

    def query_many(self, specs: Sequence) -> List[ClientResult]:
        """Run many range queries in one pipelined round trip.

        ``specs`` is a sequence of ``(low, high)`` or ``(low, high,
        low_inclusive, high_inclusive)`` tuples — or objects with an
        ``as_args()`` method, like the workload generators'
        ``RangeQuery``.  All queries ship in a single
        ``batch_request`` frame; the server executes them in order
        under the column lock, so results are identical to issuing
        them sequentially, at a fraction of the round trips.  Counts as
        one round trip (one frame each way).
        """
        specs = list(specs)
        if not specs:
            return []
        with self._obs.span("session-query-many", queries=len(specs)):
            messages = []
            for spec in specs:
                args = spec.as_args() if hasattr(spec, "as_args") else tuple(spec)
                if not 2 <= len(args) <= 4:
                    raise QueryError(
                        "query spec must be (low, high[, low_inclusive"
                        "[, high_inclusive]]): %r" % (spec,)
                    )
                messages.append(
                    self.client.make_query(*args, pivots=self._draw_pivots())
                )
            responses = self._remote.query_many(messages)
            self._round_trips.add(1)
            self._account_exchange()
            results = []
            for response in responses:
                result = self.client.decrypt_results(
                    response.row_ids,
                    response.rows,
                    id_mapper=self._map_physical_id,
                )
                self._decrypt_seconds.add(result.decrypt_seconds)
                results.append(result)
        self.client_stats.extend(results)
        return results

    def query_point(self, value: int) -> ClientResult:
        """Run one equality query end to end."""
        return self.query(value, value, True, True)

    def query_below(self, bound: int, inclusive: bool = True) -> ClientResult:
        """One-sided query ``A <= bound`` (or ``<``); cracks one piece."""
        return self.query(high=bound, high_inclusive=inclusive)

    def query_above(self, bound: int, inclusive: bool = True) -> ClientResult:
        """One-sided query ``A >= bound`` (or ``>``); cracks one piece."""
        return self.query(low=bound, low_inclusive=inclusive)

    def query_values(self, low: int, high: int, **kwargs) -> np.ndarray:
        """Convenience: sorted plaintext values in range."""
        return np.sort(self.query(low, high, **kwargs).values)

    # -- updates --------------------------------------------------------------------

    def insert(self, value: int) -> int:
        """Encrypt and insert a new value; returns its logical id."""
        rows = self.client.encrypt_value(int(value))
        if self._shards:
            # The plaintext key hint routes the insert to its shard;
            # only the trusted client side ever sees it.
            physical_ids = self._remote.insert(rows, key_hint=int(value))
        else:
            physical_ids = self._remote.insert(rows)
        self._account_exchange()
        logical_id = self._logical_count
        self._logical_count += 1
        for physical_id in physical_ids:
            self._inserted_physical_to_logical[physical_id] = logical_id
        self._logical_to_physical[logical_id] = list(physical_ids)
        return logical_id

    def delete(self, logical_id: int) -> None:
        """Delete a value by logical id (base or inserted)."""
        self._remote.delete(self._physical_ids_of(logical_id))
        self._account_exchange()

    def merge(self) -> int:
        """Merge the server's pending buffer into the cracked column."""
        delta = self._remote.merge()
        self._account_exchange()
        return delta

    def rotate_key(self, new_seed: int = None) -> Dict[int, int]:
        """Re-encrypt everything under a fresh key.

        Periodic key rotation is standard hygiene — and under this
        scheme it is also the recovery path after a suspected
        known-plaintext exposure (the attacks of Section 3.5 break the
        *key*, not the primitive).  The rotation is a two-message
        protocol: ``RotateBegin`` makes the server merge pending state
        and ship every live row in one round; the client draws a fresh
        key, re-encrypts, and ships ``RotateApply``, on which the
        server rebuilds the column under its original configuration
        (auto-merge threshold, three-way cracking, paper-tree
        algorithms, stats recording, minimum piece size).  The adaptive
        index restarts empty — its structure was derived under the old
        ciphertexts.

        Logical ids are compacted; returns the old-to-new id mapping.

        The two messages are fenced: ``RotateBegin`` returns the
        column's mutation epoch, ``RotateApply`` echoes it, and the
        server refuses the rebuild with
        :class:`~repro.errors.RotationConflictError` if the column
        mutated in between (a concurrent session's insert/delete/merge
        would otherwise be silently erased).  On conflict the column is
        left intact under the old key; call :meth:`rotate_key` again to
        retry from a fresh snapshot.

        The fetch is genuinely unbounded (both bounds None — the scheme
        is arbitrary precision, so no finite sentinel range is safe)
        and internal: it attaches no jitter pivots and is excluded from
        :attr:`round_trips` / :attr:`client_stats` / :attr:`bytes_sent`,
        which account the observed workload only (the ``net.*``
        counters still see the maintenance frames).

        A sharded session rotates shard by shard instead (see
        :meth:`_rotate_key_sharded`): ids are *preserved* rather than
        compacted — each shard's rebuild must stay self-contained — so
        the returned mapping is the identity over live ids, and a fence
        conflict retries only the conflicting shard.
        """
        if self._shards:
            return self._rotate_key_sharded(new_seed)
        self._obs.metrics.add("session.key_rotations")
        begin = self._remote.rotate_begin()
        response = begin.response
        everything = self.client.decrypt_results(
            response.row_ids, response.rows, id_mapper=self._map_physical_id
        )
        old_ids = [int(i) for i in everything.logical_ids]
        values = [int(v) for v in everything.values]
        order = sorted(range(len(old_ids)), key=lambda i: old_ids[i])
        values = [values[i] for i in order]
        mapping = {old_ids[i]: new for new, i in enumerate(order)}
        new_client = TrustedClient(
            key=None,
            seed=new_seed,
            ambiguity=self.client.ambiguity,
            key_length=self.client.key.length,
            fake_domain=self.client.fake_domain,
        )
        rows, row_ids = new_client.encrypt_dataset(values)
        self._remote.rotate_apply(rows, row_ids, fence=begin.fence)
        # The key switch commits only after the server accepted the
        # rebuild: a fenced-off apply (RotationConflictError) leaves
        # both parties on the old key and the session fully usable.
        self.client = new_client
        self._logical_count = len(values)
        self._base_physical_count = len(rows)
        self._inserted_physical_to_logical = {}
        self._logical_to_physical = {}
        return mapping

    def _rotate_key_sharded(self, new_seed: int = None) -> Dict[int, int]:
        """Shard-by-shard key rotation, each shard under its own fence.

        Unlike the unsharded path, logical ids are *not* compacted:
        every re-encrypted row keeps its physical id, so each shard's
        rotation is fully self-contained and a conflict on one shard
        (a concurrent insert or delete that bumped its epoch) retries
        that shard alone while the others' rebuilds stand.  The id
        bookkeeping (insert maps, logical count) therefore survives
        unchanged, and the returned mapping is the identity over the
        ids seen live during the rotation.
        """
        self._obs.metrics.add("session.key_rotations")
        old_client = self.client
        new_client = TrustedClient(
            key=None,
            seed=new_seed,
            ambiguity=old_client.ambiguity,
            key_length=old_client.key.length,
            fake_domain=old_client.fake_domain,
        )
        live: set = set()

        def reencrypt(global_ids, rows):
            # Decrypt this shard's live rows under the old key, then
            # re-encrypt each logical value under the new key onto the
            # *same* physical ids (ambiguity pairs included: the fresh
            # pair lands on the pair's original two ids).
            result = old_client.decrypt_results(
                global_ids, rows, id_mapper=self._map_physical_id
            )
            new_rows: List = []
            new_ids: List[int] = []
            for logical_id, value in zip(result.logical_ids, result.values):
                logical_id, value = int(logical_id), int(value)
                live.add(logical_id)
                physicals = self._physical_ids_of(logical_id)
                for offset, row in enumerate(new_client.encrypt_value(value)):
                    new_rows.append(row)
                    new_ids.append(physicals[offset])
            return new_rows, new_ids

        self._remote.rotate_shards(reencrypt)
        # As in the unsharded path, the key switch commits only after
        # every shard accepted its rebuild.
        self.client = new_client
        return {logical_id: logical_id for logical_id in sorted(live)}

    # -- internals --------------------------------------------------------------------

    def _draw_pivots(self) -> Tuple[int, ...]:
        if not self._jitter_pivots or self._pivot_domain is None:
            return ()
        low, high = self._pivot_domain
        if high <= low:
            return ()
        return tuple(
            self._pivot_rng.randrange(low, high) for _ in range(self._jitter_pivots)
        )

    def _map_physical_id(self, physical_id: int) -> int:
        if physical_id < self._base_physical_count:
            return self.client.logical_id(physical_id)
        try:
            return self._inserted_physical_to_logical[physical_id]
        except KeyError:
            raise QueryError(
                "server returned unknown row id %d" % physical_id
            ) from None

    def _physical_ids_of(self, logical_id: int) -> List[int]:
        if logical_id < 0 or logical_id >= self._logical_count:
            raise UpdateError("unknown logical id %d" % logical_id)
        if logical_id in self._logical_to_physical:
            return self._logical_to_physical[logical_id]
        if self._physical_per_value == 1:
            return [logical_id]
        return [2 * logical_id, 2 * logical_id + 1]
