"""Encrypted query messages exchanged between client and server.

Section 4.3: "we solve this problem by having the query-issuing client
encrypt a breakpoint b in both ways, i.e., in its native way, as
Eb(b), and as an attribute value, Ev(b)".  An :class:`EncryptedBound`
carries exactly that pair; an :class:`EncryptedQuery` carries the two
bounds of a range predicate plus their (plaintext) inclusiveness flags
— the flags correspond to the query's comparison operators, which the
server must apply and therefore sees anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.ciphertext import BoundCiphertext, ValueCiphertext


@dataclass(frozen=True)
class EncryptedBound:
    """One query bound in both encryption modes.

    Attributes:
        eb: the ``Eb`` form, used for inequality checks against data
            rows and against AVL keys.
        ev: the ``Ev`` form, stored as the key when the bound enters
            the AVL tree (future bounds compare against it via their
            own ``Eb`` form).
    """

    eb: BoundCiphertext
    ev: ValueCiphertext

    @property
    def size_bytes(self) -> int:
        """Wire-size estimate of the double-encrypted bound."""
        return self.eb.size_bytes + self.ev.size_bytes


@dataclass(frozen=True)
class EncryptedBoundKey:
    """An AVL tree key: an encrypted bound plus its crack flavour.

    ``inclusive`` distinguishes the crack "rows with ``v < b`` before
    the position" (False) from "rows with ``v <= b``" (True); equal
    plaintext bounds with different flavours are distinct keys, ordered
    exclusive-first (predicate-set inclusion over the integers).
    """

    bound: EncryptedBound
    inclusive: bool


def compare_encrypted_keys(a: EncryptedBoundKey, b: EncryptedBoundKey) -> int:
    """Total order on encrypted tree keys.

    The scalar product ``a.eb . b.ev`` equals ``xi * (b_value -
    a_value)`` with ``xi > 0`` (tree ``Ev`` keys are encrypted without
    ambiguity), so its sign orders the underlying plaintext bounds
    without revealing them; exact ties fall back to the inclusiveness
    flag.  This is the only value-to-value comparison in the system and
    it is possible *only* because each bound was shipped in both modes.
    """
    sign = a.bound.eb.product_sign(b.bound.ev)
    if sign > 0:
        # b_value > a_value  ->  a orders first.
        return -1
    if sign < 0:
        return 1
    return int(a.inclusive) - int(b.inclusive)


@dataclass(frozen=True)
class EncryptedQuery:
    """A range query over encrypted data, as shipped to the server.

    Attributes:
        low, high: the encrypted bounds; either may be None for a
            one-sided query (``A <= x`` / ``A > x``), in which case the
            open side is unbounded and costs the server nothing — a
            one-sided query cracks at most one piece.
        low_inclusive, high_inclusive: the query's comparison
            operators.
        pivots: optional extra client-supplied bounds the server may
            crack on (client-assisted stochastic cracking — the server
            cannot invent pivots it can compare, Section 5.5).
    """

    low: Optional[EncryptedBound]
    high: Optional[EncryptedBound]
    low_inclusive: bool = True
    high_inclusive: bool = True
    pivots: Tuple[EncryptedBound, ...] = field(default_factory=tuple)

    @property
    def size_bytes(self) -> int:
        """Wire-size estimate of the whole query message."""
        total = 2  # inclusiveness flags
        for bound in (self.low, self.high) + self.pivots:
            if bound is not None:
                total += bound.size_bytes
        return total

    @property
    def left_key(self) -> Optional[EncryptedBoundKey]:
        """The crack separating non-qualifying low rows.

        An inclusive low side excludes rows with ``v < low`` (strict
        crack); an exclusive one excludes ``v <= low``.  None for an
        unbounded low side.
        """
        if self.low is None:
            return None
        return EncryptedBoundKey(self.low, inclusive=not self.low_inclusive)

    @property
    def right_key(self) -> Optional[EncryptedBoundKey]:
        """The crack whose left side is the qualifying high side.

        None for an unbounded high side.
        """
        if self.high is None:
            return None
        return EncryptedBoundKey(self.high, inclusive=self.high_inclusive)
