"""Server-state persistence: snapshot and restore encrypted servers.

A cloud server restarts; the adaptive index it cracked into existence
must not evaporate with it (the entire point of adaptive indexing is
that past queries already paid for it).  This module snapshots a
:class:`~repro.core.server.SecureServer` — ciphertext rows in their
current cracked order, the encrypted AVL tree (each node's double-
encrypted bound and position), the pending-update buffer — into a
JSON-compatible dictionary, and restores an equivalent server from it.
:func:`snapshot_catalog` / :func:`restore_catalog` do the same for a
whole endpoint: every named column of a
:class:`~repro.net.catalog.ColumnCatalog`, with its create-time engine
configuration, so a ``repro serve`` process can come back exactly
where it crashed.

Everything in a snapshot is ciphertext or public structure; snapshots
are exactly as confidential as the server's RAM (i.e. safe to hold at
the honest-but-curious server, revealing nothing beyond what query
processing already revealed).

Version history (server snapshots): version 1 omitted
``bytes_shipped`` and ``record_stats``; version 2 adds both.
Version-1 snapshots restore with the old defaults (zero bytes shipped,
stats recording on).

Catalog snapshots version independently: catalog version 1 carried
only the column map; version 2 adds the ``shards`` registry (logical
sharded columns — geometry plus ordered shard column names), so a
restored endpoint keeps validating shard consistency and re-exports
the ``catalog.shards`` gauge.  Version 3 adds the per-column mutation
``epochs`` map and the optional ``wal_seq`` watermark — the fence WAL
replay uses to skip entries the snapshot already contains.  Version-1
catalog snapshots restore with an empty registry; pre-3 snapshots
restore with every epoch at 0 (correct for a snapshot taken with no
WAL, whose replay starts from entry 1).

The file layer (:func:`save_snapshot` / :func:`load_snapshot` /
:func:`recover_catalog` / :func:`checkpoint_catalog`) adds durability:
snapshot files are written atomically (temp file + fsync +
``os.replace``), malformed persisted bytes surface as typed
:class:`~repro.errors.PersistenceError`\\ s, and a server data
directory — ``snapshot.json`` plus ``wal-*.seg`` segments — recovers
to exactly the state whose mutations were acknowledged.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.core.query import EncryptedBound, EncryptedBoundKey
from repro.core.server import SecureServer
from repro.core.wal import (
    WalReader,
    WalWriter,
    read_json_file,
    write_json_atomic,
)
from repro.crypto.ciphertext import BoundCiphertext, ValueCiphertext
from repro.crypto.serialization import ciphertext_from_dict, ciphertext_to_dict
from repro.errors import PersistenceError, SerializationError, UpdateError
from repro.net.catalog import ColumnCatalog
from repro.obs import Observability
from repro.store.updates import PendingUpdates

SNAPSHOT_VERSION = 2
CATALOG_SNAPSHOT_VERSION = 3

#: Snapshot versions the read path accepts (older ones restore with
#: documented defaults for the fields they predate).
SUPPORTED_VERSIONS = (1, 2)

#: Catalog snapshot versions the read path accepts.
SUPPORTED_CATALOG_VERSIONS = (1, 2, 3)

#: File name of the catalog snapshot inside a server data directory
#: (next to the ``wal-*.seg`` segments).
SNAPSHOT_FILENAME = "snapshot.json"


def snapshot_server(server: SecureServer) -> Dict[str, Any]:
    """Serialize a server's full state to a JSON-compatible dict."""
    engine = server.engine
    column = engine.column
    rows = [
        ciphertext_to_dict(column.row(index)) for index in range(len(column))
    ]
    tree_nodes = []
    if hasattr(engine, "tree"):
        for node in engine.tree.in_order():
            key: EncryptedBoundKey = node.key
            tree_nodes.append(
                {
                    "eb": ciphertext_to_dict(key.bound.eb),
                    "ev": ciphertext_to_dict(key.bound.ev),
                    "inclusive": key.inclusive,
                    "position": node.position,
                }
            )
    updates = server._updates
    return {
        "kind": "secure_server",
        "version": SNAPSHOT_VERSION,
        "engine_kind": server.engine_kind,
        "min_piece_size": getattr(engine, "_min_piece", 1),
        "use_three_way": getattr(engine, "_use_three_way", False),
        "use_paper_tree_algorithms": getattr(
            engine, "_use_paper_algorithms", False
        ),
        "record_stats": getattr(engine, "_record_stats", True),
        "rows": rows,
        "row_ids": [int(i) for i in column.row_ids],
        "tree": tree_nodes,
        "auto_merge_threshold": server._auto_merge_threshold,
        "pending": [
            {"row_id": row_id, "row": ciphertext_to_dict(row)}
            for row_id, row in updates.pending
        ],
        "tombstones": sorted(updates.tombstones),
        "next_row_id": updates.next_row_id,
        "queries_served": server.queries_served,
        "rows_shipped": server.rows_shipped,
        "bytes_shipped": server.bytes_shipped,
    }


def restore_server(
    snapshot: Dict[str, Any], obs: Observability = None
) -> SecureServer:
    """Rebuild an equivalent server from a snapshot.

    The restored server answers every query identically to the
    original: the column keeps its cracked physical order and the AVL
    tree its bounds and positions (rebalanced shape may differ — shape
    is not part of the contract).  Accepts any version in
    :data:`SUPPORTED_VERSIONS`; fields a version predates restore to
    their historical defaults.

    Raises:
        SerializationError: on a malformed or wrong-kind snapshot.
    """
    if snapshot.get("kind") != "secure_server":
        raise SerializationError(
            "expected a secure_server snapshot, got %r" % snapshot.get("kind")
        )
    if snapshot.get("version") not in SUPPORTED_VERSIONS:
        raise SerializationError(
            "unsupported snapshot version: %r" % snapshot.get("version")
        )
    try:
        rows = [ciphertext_from_dict(data) for data in snapshot["rows"]]
        row_ids = [int(i) for i in snapshot["row_ids"]]
        server = SecureServer(
            rows,
            row_ids,
            engine=snapshot["engine_kind"],
            auto_merge_threshold=snapshot.get("auto_merge_threshold"),
            min_piece_size=snapshot["min_piece_size"],
            use_three_way=snapshot["use_three_way"],
            use_paper_tree_algorithms=snapshot["use_paper_tree_algorithms"],
            record_stats=bool(snapshot.get("record_stats", True)),
            obs=obs,
        )
        engine = server.engine
        for node_data in snapshot["tree"]:
            eb = ciphertext_from_dict(node_data["eb"])
            ev = ciphertext_from_dict(node_data["ev"])
            if not isinstance(eb, BoundCiphertext) or not isinstance(
                ev, ValueCiphertext
            ):
                raise SerializationError("malformed tree node ciphertexts")
            key = EncryptedBoundKey(
                EncryptedBound(eb=eb, ev=ev),
                inclusive=bool(node_data["inclusive"]),
            )
            engine.tree.insert(key, int(node_data["position"]))
        server._updates = PendingUpdates.restore(
            int(snapshot["next_row_id"]),
            [
                (int(entry["row_id"]), ciphertext_from_dict(entry["row"]))
                for entry in snapshot["pending"]
            ],
            {int(i) for i in snapshot["tombstones"]},
        )
        server.queries_served = int(snapshot["queries_served"])
        server.rows_shipped = int(snapshot["rows_shipped"])
        server.bytes_shipped = int(snapshot.get("bytes_shipped", 0))
        return server
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed snapshot: %s" % exc) from exc


def snapshot_catalog(
    catalog: ColumnCatalog, wal_seq: Optional[int] = None
) -> Dict[str, Any]:
    """Serialize every column of an endpoint's catalog, plus the
    logical-shard registry grouping shard columns back together and
    each column's mutation epoch.

    ``wal_seq`` records the WAL position this snapshot captures (every
    logged entry with ``seq <= wal_seq`` is reflected in it); recovery
    replays only entries after it.  Pass it when snapshotting inside
    :meth:`~repro.net.catalog.ColumnCatalog.quiesced` — for a
    crash-consistent cut — as :func:`checkpoint_catalog` does.
    """
    columns = {}
    for name in catalog.column_names:
        columns[name] = {
            "config": catalog.config(name),
            "server": snapshot_server(catalog.server(name)),
        }
    snapshot = {
        "kind": "column_catalog",
        "version": CATALOG_SNAPSHOT_VERSION,
        "columns": columns,
        "shards": catalog.shards(),
        "epochs": catalog.epochs(),
    }
    if wal_seq is not None:
        snapshot["wal_seq"] = int(wal_seq)
    return snapshot


def restore_catalog(
    snapshot: Dict[str, Any], obs: Observability = None, **catalog_kwargs
) -> ColumnCatalog:
    """Rebuild a whole endpoint from a catalog snapshot.

    ``catalog_kwargs`` pass through to the
    :class:`~repro.net.catalog.ColumnCatalog` constructor (batch pool
    size, slow-query knobs), so a recovered serving endpoint keeps its
    configured concurrency.

    Raises:
        SerializationError: on a malformed or wrong-kind snapshot.
    """
    if snapshot.get("kind") != "column_catalog":
        raise SerializationError(
            "expected a column_catalog snapshot, got %r" % snapshot.get("kind")
        )
    if snapshot.get("version") not in SUPPORTED_CATALOG_VERSIONS:
        raise SerializationError(
            "unsupported catalog snapshot version: %r"
            % snapshot.get("version")
        )
    catalog = ColumnCatalog(obs=obs, **catalog_kwargs)
    try:
        columns = snapshot["columns"]
        items = sorted(columns.items())
    except (AttributeError, KeyError, TypeError) as exc:
        raise SerializationError("malformed catalog snapshot: %s" % exc) from exc
    # Pre-3 snapshots predate epochs: 0 for every column is correct
    # (their replay, if any, starts from the first WAL entry).
    epochs = snapshot.get("epochs", {})
    if not isinstance(epochs, dict):
        raise SerializationError("catalog snapshot epochs must be an object")
    for name, epoch in epochs.items():
        if (not isinstance(epoch, int) or isinstance(epoch, bool)
                or epoch < 0):
            raise SerializationError(
                "catalog snapshot epoch for %r must be an int >= 0" % name
            )
        if name not in columns:
            raise SerializationError(
                "catalog snapshot epoch for missing column %r" % name
            )
    for name, entry in items:
        try:
            config = dict(entry["config"])
            server_snapshot = entry["server"]
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                "malformed catalog snapshot column %r: %s" % (name, exc)
            ) from exc
        catalog.adopt_column(
            name,
            restore_server(server_snapshot, obs=catalog.obs),
            config,
            epoch=epochs.get(name, 0),
        )
    # Version-1 snapshots predate the registry: empty is correct.
    shards = snapshot.get("shards", {})
    if not isinstance(shards, dict):
        raise SerializationError("catalog snapshot shards must be an object")
    for logical, meta in sorted(shards.items()):
        try:
            count = int(meta["count"])
            per_value = int(meta.get("physical_per_value", 1))
            shard_columns = list(meta["columns"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                "malformed shard registry entry %r: %s" % (logical, exc)
            ) from exc
        if len(shard_columns) != count:
            raise SerializationError(
                "shard registry entry %r lists %d columns for count %d"
                % (logical, len(shard_columns), count)
            )
        for index, column_name in enumerate(shard_columns):
            if column_name is None:
                continue
            if column_name not in columns:
                raise SerializationError(
                    "shard registry entry %r references missing column %r"
                    % (logical, column_name)
                )
            try:
                catalog.register_shard(
                    column_name,
                    {
                        "of": logical,
                        "index": index,
                        "count": count,
                        "physical_per_value": per_value,
                    },
                )
            except UpdateError as exc:
                raise SerializationError(
                    "inconsistent shard registry entry %r: %s"
                    % (logical, exc)
                ) from exc
    return catalog


# -- durable files and recovery --------------------------------------------------


def save_snapshot(path: str, snapshot: Dict[str, Any]) -> None:
    """Write a snapshot dict to disk atomically.

    Temp file + fsync + ``os.replace``: a crash at any instant leaves
    either the previous complete snapshot or the new complete snapshot
    at ``path`` — never a torn mix.

    Raises:
        PersistenceError: when the bytes cannot be written.
    """
    write_json_atomic(path, snapshot)


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot dict back from disk.

    Raises:
        PersistenceError: unreadable, non-JSON, or non-object bytes
            (never a raw ``json`` or ``OSError`` leak).
    """
    data = read_json_file(path)
    if not isinstance(data, dict):
        raise PersistenceError(
            "snapshot file %r must hold a JSON object, got %s"
            % (path, type(data).__name__)
        )
    return data


def recover_catalog(
    directory: str, obs: Observability = None, **catalog_kwargs
) -> Tuple[ColumnCatalog, Dict[str, Any]]:
    """Rebuild a catalog from a server data directory.

    The directory holds an optional ``snapshot.json`` plus ``wal-*.seg``
    segments.  Recovery restores the snapshot (or starts empty), then
    replays every WAL entry after the snapshot's ``wal_seq`` watermark
    through the per-column epoch fence — so a snapshot taken without a
    watermark (a manual save) still recovers correctly, with already-
    contained entries skipped individually.

    Returns ``(catalog, info)`` where ``info`` reports what happened:
    ``{"snapshot": bool, "wal_seq": int, "replayed": int,
    "skipped": int, "last_seq": int}``.

    Raises:
        PersistenceError: malformed snapshot bytes, malformed WAL
            bytes beyond the tolerated torn tail, or an entry that
            cannot apply (gap, unknown column, engine failure).
    """
    snapshot_path = os.path.join(directory, SNAPSHOT_FILENAME)
    wal_seq = 0
    have_snapshot = os.path.exists(snapshot_path)
    if have_snapshot:
        data = load_snapshot(snapshot_path)
        try:
            catalog = restore_catalog(data, obs=obs, **catalog_kwargs)
        except PersistenceError:
            raise
        except SerializationError as exc:
            # The file satellite's contract: corrupt *persisted* state
            # is always a PersistenceError, whatever layer caught it.
            raise PersistenceError(
                "malformed snapshot %r: %s" % (snapshot_path, exc)
            ) from exc
        raw_seq = data.get("wal_seq", 0)
        if (not isinstance(raw_seq, int) or isinstance(raw_seq, bool)
                or raw_seq < 0):
            raise PersistenceError(
                "snapshot %r wal_seq must be an int >= 0" % snapshot_path
            )
        wal_seq = raw_seq
    else:
        catalog = ColumnCatalog(obs=obs, **catalog_kwargs)
    replayed = skipped = 0
    last_seq = wal_seq
    for entry in WalReader(directory).entries(after_seq=wal_seq):
        if catalog.apply_wal_entry(entry):
            replayed += 1
        else:
            skipped += 1
        last_seq = entry["seq"]
    return catalog, {
        "snapshot": have_snapshot,
        "wal_seq": wal_seq,
        "replayed": replayed,
        "skipped": skipped,
        "last_seq": last_seq,
    }


def checkpoint_catalog(
    catalog: ColumnCatalog, directory: str, wal: WalWriter
) -> int:
    """Snapshot-then-truncate: durably save the catalog, then drop the
    WAL segments the snapshot covers.

    The snapshot is cut under :meth:`ColumnCatalog.quiesced` (no
    mutation can commit while the cut is taken), written atomically,
    and only *after* it is safely on disk are whole segments at or
    below its watermark compacted away — a crash between the two steps
    merely leaves extra (idempotently skipped) entries in the log.

    Returns the WAL sequence number the snapshot captures.
    """
    with catalog.quiesced():
        seq = wal.last_seq
        snapshot = snapshot_catalog(catalog, wal_seq=seq)
    save_snapshot(os.path.join(directory, SNAPSHOT_FILENAME), snapshot)
    wal.compact(seq)
    return seq
