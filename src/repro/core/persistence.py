"""Server-state persistence: snapshot and restore encrypted servers.

A cloud server restarts; the adaptive index it cracked into existence
must not evaporate with it (the entire point of adaptive indexing is
that past queries already paid for it).  This module snapshots a
:class:`~repro.core.server.SecureServer` — ciphertext rows in their
current cracked order, the encrypted AVL tree (each node's double-
encrypted bound and position), the pending-update buffer — into a
JSON-compatible dictionary, and restores an equivalent server from it.
:func:`snapshot_catalog` / :func:`restore_catalog` do the same for a
whole endpoint: every named column of a
:class:`~repro.net.catalog.ColumnCatalog`, with its create-time engine
configuration, so a ``repro serve`` process can come back exactly
where it crashed.

Everything in a snapshot is ciphertext or public structure; snapshots
are exactly as confidential as the server's RAM (i.e. safe to hold at
the honest-but-curious server, revealing nothing beyond what query
processing already revealed).

Version history (server snapshots): version 1 omitted
``bytes_shipped`` and ``record_stats``; version 2 adds both.
Version-1 snapshots restore with the old defaults (zero bytes shipped,
stats recording on).

Catalog snapshots version independently: catalog version 1 carried
only the column map; version 2 adds the ``shards`` registry (logical
sharded columns — geometry plus ordered shard column names), so a
restored endpoint keeps validating shard consistency and re-exports
the ``catalog.shards`` gauge.  Version-1 catalog snapshots restore
with an empty registry.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.query import EncryptedBound, EncryptedBoundKey
from repro.core.server import SecureServer
from repro.crypto.ciphertext import BoundCiphertext, ValueCiphertext
from repro.crypto.serialization import ciphertext_from_dict, ciphertext_to_dict
from repro.errors import SerializationError, UpdateError
from repro.net.catalog import ColumnCatalog
from repro.obs import Observability
from repro.store.updates import PendingUpdates

SNAPSHOT_VERSION = 2
CATALOG_SNAPSHOT_VERSION = 2

#: Snapshot versions the read path accepts (older ones restore with
#: documented defaults for the fields they predate).
SUPPORTED_VERSIONS = (1, 2)

#: Catalog snapshot versions the read path accepts.
SUPPORTED_CATALOG_VERSIONS = (1, 2)


def snapshot_server(server: SecureServer) -> Dict[str, Any]:
    """Serialize a server's full state to a JSON-compatible dict."""
    engine = server.engine
    column = engine.column
    rows = [
        ciphertext_to_dict(column.row(index)) for index in range(len(column))
    ]
    tree_nodes = []
    if hasattr(engine, "tree"):
        for node in engine.tree.in_order():
            key: EncryptedBoundKey = node.key
            tree_nodes.append(
                {
                    "eb": ciphertext_to_dict(key.bound.eb),
                    "ev": ciphertext_to_dict(key.bound.ev),
                    "inclusive": key.inclusive,
                    "position": node.position,
                }
            )
    updates = server._updates
    return {
        "kind": "secure_server",
        "version": SNAPSHOT_VERSION,
        "engine_kind": server.engine_kind,
        "min_piece_size": getattr(engine, "_min_piece", 1),
        "use_three_way": getattr(engine, "_use_three_way", False),
        "use_paper_tree_algorithms": getattr(
            engine, "_use_paper_algorithms", False
        ),
        "record_stats": getattr(engine, "_record_stats", True),
        "rows": rows,
        "row_ids": [int(i) for i in column.row_ids],
        "tree": tree_nodes,
        "auto_merge_threshold": server._auto_merge_threshold,
        "pending": [
            {"row_id": row_id, "row": ciphertext_to_dict(row)}
            for row_id, row in updates.pending
        ],
        "tombstones": sorted(updates.tombstones),
        "next_row_id": updates.next_row_id,
        "queries_served": server.queries_served,
        "rows_shipped": server.rows_shipped,
        "bytes_shipped": server.bytes_shipped,
    }


def restore_server(
    snapshot: Dict[str, Any], obs: Observability = None
) -> SecureServer:
    """Rebuild an equivalent server from a snapshot.

    The restored server answers every query identically to the
    original: the column keeps its cracked physical order and the AVL
    tree its bounds and positions (rebalanced shape may differ — shape
    is not part of the contract).  Accepts any version in
    :data:`SUPPORTED_VERSIONS`; fields a version predates restore to
    their historical defaults.

    Raises:
        SerializationError: on a malformed or wrong-kind snapshot.
    """
    if snapshot.get("kind") != "secure_server":
        raise SerializationError(
            "expected a secure_server snapshot, got %r" % snapshot.get("kind")
        )
    if snapshot.get("version") not in SUPPORTED_VERSIONS:
        raise SerializationError(
            "unsupported snapshot version: %r" % snapshot.get("version")
        )
    try:
        rows = [ciphertext_from_dict(data) for data in snapshot["rows"]]
        row_ids = [int(i) for i in snapshot["row_ids"]]
        server = SecureServer(
            rows,
            row_ids,
            engine=snapshot["engine_kind"],
            auto_merge_threshold=snapshot.get("auto_merge_threshold"),
            min_piece_size=snapshot["min_piece_size"],
            use_three_way=snapshot["use_three_way"],
            use_paper_tree_algorithms=snapshot["use_paper_tree_algorithms"],
            record_stats=bool(snapshot.get("record_stats", True)),
            obs=obs,
        )
        engine = server.engine
        for node_data in snapshot["tree"]:
            eb = ciphertext_from_dict(node_data["eb"])
            ev = ciphertext_from_dict(node_data["ev"])
            if not isinstance(eb, BoundCiphertext) or not isinstance(
                ev, ValueCiphertext
            ):
                raise SerializationError("malformed tree node ciphertexts")
            key = EncryptedBoundKey(
                EncryptedBound(eb=eb, ev=ev),
                inclusive=bool(node_data["inclusive"]),
            )
            engine.tree.insert(key, int(node_data["position"]))
        server._updates = PendingUpdates.restore(
            int(snapshot["next_row_id"]),
            [
                (int(entry["row_id"]), ciphertext_from_dict(entry["row"]))
                for entry in snapshot["pending"]
            ],
            {int(i) for i in snapshot["tombstones"]},
        )
        server.queries_served = int(snapshot["queries_served"])
        server.rows_shipped = int(snapshot["rows_shipped"])
        server.bytes_shipped = int(snapshot.get("bytes_shipped", 0))
        return server
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed snapshot: %s" % exc) from exc


def snapshot_catalog(catalog: ColumnCatalog) -> Dict[str, Any]:
    """Serialize every column of an endpoint's catalog, plus the
    logical-shard registry grouping shard columns back together."""
    columns = {}
    for name in catalog.column_names:
        columns[name] = {
            "config": catalog.config(name),
            "server": snapshot_server(catalog.server(name)),
        }
    return {
        "kind": "column_catalog",
        "version": CATALOG_SNAPSHOT_VERSION,
        "columns": columns,
        "shards": catalog.shards(),
    }


def restore_catalog(
    snapshot: Dict[str, Any], obs: Observability = None
) -> ColumnCatalog:
    """Rebuild a whole endpoint from a catalog snapshot.

    Raises:
        SerializationError: on a malformed or wrong-kind snapshot.
    """
    if snapshot.get("kind") != "column_catalog":
        raise SerializationError(
            "expected a column_catalog snapshot, got %r" % snapshot.get("kind")
        )
    if snapshot.get("version") not in SUPPORTED_CATALOG_VERSIONS:
        raise SerializationError(
            "unsupported catalog snapshot version: %r"
            % snapshot.get("version")
        )
    catalog = ColumnCatalog(obs=obs)
    try:
        columns = snapshot["columns"]
        items = sorted(columns.items())
    except (AttributeError, KeyError, TypeError) as exc:
        raise SerializationError("malformed catalog snapshot: %s" % exc) from exc
    for name, entry in items:
        try:
            config = dict(entry["config"])
            server_snapshot = entry["server"]
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                "malformed catalog snapshot column %r: %s" % (name, exc)
            ) from exc
        catalog.adopt_column(
            name, restore_server(server_snapshot, obs=catalog.obs), config
        )
    # Version-1 snapshots predate the registry: empty is correct.
    shards = snapshot.get("shards", {})
    if not isinstance(shards, dict):
        raise SerializationError("catalog snapshot shards must be an object")
    for logical, meta in sorted(shards.items()):
        try:
            count = int(meta["count"])
            per_value = int(meta.get("physical_per_value", 1))
            shard_columns = list(meta["columns"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                "malformed shard registry entry %r: %s" % (logical, exc)
            ) from exc
        if len(shard_columns) != count:
            raise SerializationError(
                "shard registry entry %r lists %d columns for count %d"
                % (logical, len(shard_columns), count)
            )
        for index, column_name in enumerate(shard_columns):
            if column_name is None:
                continue
            if column_name not in columns:
                raise SerializationError(
                    "shard registry entry %r references missing column %r"
                    % (logical, column_name)
                )
            try:
                catalog.register_shard(
                    column_name,
                    {
                        "of": logical,
                        "index": index,
                        "count": count,
                        "physical_per_value": per_value,
                    },
                )
            except UpdateError as exc:
                raise SerializationError(
                    "inconsistent shard registry entry %r: %s"
                    % (logical, exc)
                ) from exc
    return catalog
