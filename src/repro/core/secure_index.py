"""Secure adaptive indexing engine (the paper's contribution).

Mirrors the plaintext :class:`repro.cracking.index.AdaptiveIndex`
query flow — locate the two bound cracks, reorganise at most two
pieces, return the qualifying contiguous area — but every comparison
runs through scalar products on ciphertexts:

* data rows are classified against a query bound via
  ``sign(Eb(b) . Ev(v))``;
* AVL keys (previous bounds, stored in ``Ev`` mode) are compared to a
  new bound (arriving in ``Eb`` mode) the same way — the double
  encryption of Section 4.3.

The engine works identically whether rows came from plain or ambiguous
encryption: fake interpretations are just rows whose pseudo-values the
client will discard.  Nothing here touches a key or a plaintext.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.cracking.avl import AVLTree
from repro.cracking.cracker_tree import add_crack, find_piece
from repro.cracking.index import (
    MeteredQueryStats,
    QueryStats,
    _BoundResolution,
)
from repro.core.encrypted_avl import add_crack_encrypted, find_piece_encrypted
from repro.core.encrypted_column import EncryptedColumn
from repro.core.query import (
    EncryptedBound,
    EncryptedBoundKey,
    EncryptedQuery,
    compare_encrypted_keys,
)
from repro.errors import IndexStateError
from repro.linalg.kernels import ProductCache, single_product
from repro.obs import Observability


class SecureAdaptiveIndex:
    """Query-triggered cracking over an :class:`EncryptedColumn`.

    Args:
        column: the encrypted column (owned by the engine thereafter).
        min_piece_size: pieces at or below this size are scanned with
            scalar products instead of cracked — the Section 2.2
            threshold that also caps structural order leakage.
        use_three_way: crack once, three ways, when both bounds land in
            a single raw piece.
        use_paper_tree_algorithms: route piece localisation through the
            pseudocode-literal transcriptions of Section 4.3 instead of
            the generic helpers (identical results; fidelity mode).
        record_stats: append per-query :class:`QueryStats` to
            :attr:`stats_log`.
        obs: observability bundle (tracing + metrics + audit); the
            engine adopts its column's bundle when omitted, so kernel
            tier accounting and engine accounting always share one
            metrics registry.  Metric counters are recorded regardless
            of ``record_stats`` — that flag only controls the
            :attr:`stats_log` view.
    """

    def __init__(
        self,
        column: EncryptedColumn,
        min_piece_size: int = 1,
        use_three_way: bool = False,
        use_paper_tree_algorithms: bool = False,
        record_stats: bool = True,
        obs: Observability = None,
    ) -> None:
        self._column = column
        self._tree = AVLTree(compare_encrypted_keys)
        self._min_piece = max(1, int(min_piece_size))
        self._use_three_way = use_three_way
        self._use_paper_algorithms = use_paper_tree_algorithms
        self._record_stats = record_stats
        self._obs = obs if obs is not None else column.obs
        self.stats_log: List[QueryStats] = []

    @property
    def obs(self) -> Observability:
        """The engine's observability bundle."""
        return self._obs

    def __len__(self) -> int:
        return len(self._column)

    @property
    def column(self) -> EncryptedColumn:
        """The underlying encrypted column."""
        return self._column

    @property
    def tree(self) -> AVLTree:
        """The encrypted AVL cracker index."""
        return self._tree

    # -- querying ---------------------------------------------------------------

    def query(self, query: EncryptedQuery) -> Tuple[np.ndarray, List]:
        """Answer one encrypted range query.

        Cracks (at most two pieces, or one three-way) as a side effect
        and returns ``(row_ids, ciphertext_rows)`` of the qualifying
        tuples — the single-round response of paper requirement 5.
        """
        indices, stats = self._answer(query)
        row_ids = self._column.row_ids_at(indices)
        rows = self._column.rows_at(indices)
        stats.result_count = len(row_ids)
        if self._record_stats:
            self.stats_log.append(stats)
        return row_ids, rows

    def qualifying_indices(self, query: EncryptedQuery) -> np.ndarray:
        """Physical indices of qualifying rows (cracks as a side effect).

        Lower-level hook used by the server for tombstone filtering
        before materialising ciphertexts.
        """
        indices, stats = self._answer(query)
        stats.result_count = len(indices)
        if self._record_stats:
            self.stats_log.append(stats)
        return indices

    # -- internals --------------------------------------------------------------

    def _answer(
        self, query: EncryptedQuery
    ) -> Tuple[np.ndarray, QueryStats]:
        """Run one query under a fresh product cache; returns its stats.

        The cache lives for exactly this query, so a crack's products
        are reused by a subsequent edge-piece scan over the same bound
        (the column permutes the cached arrays alongside every
        reorganisation); kernel tier counts and cache hits land on the
        query's :class:`QueryStats`.
        """
        stats = MeteredQueryStats(self._obs.metrics)
        fast_before, exact_before = self._column.kernel_counters.snapshot()
        tree_comparisons_before = self._tree.comparison_count
        with self._obs.span("engine-query", pivots=len(query.pivots)):
            with self._column.use_product_cache(ProductCache()) as cache:
                for pivot in query.pivots:
                    self._crack_pivot(pivot, stats)
                indices = self._execute(query, stats)
        stats.comparisons += (
            self._tree.comparison_count - tree_comparisons_before
        )
        fast_after, exact_after = self._column.kernel_counters.snapshot()
        stats.kernel_fast_products = fast_after - fast_before
        stats.kernel_exact_products = exact_after - exact_before
        stats.product_cache_hits = cache.hits
        metrics = self._obs.metrics
        metrics.observe("query.cracks_per_query", stats.cracks)
        metrics.set("index.avl_depth", self._tree.height())
        metrics.set("index.pieces", len(self._tree) + 1)
        return indices, stats

    def _execute(self, query: EncryptedQuery, stats: QueryStats) -> np.ndarray:
        size = len(self._column)
        if size == 0:
            return np.empty(0, dtype=np.int64)
        left_key = query.left_key
        right_key = query.right_key
        if self._use_three_way and left_key is not None and right_key is not None:
            three_way = self._try_three_way(query, stats)
            if three_way is not None:
                return np.arange(three_way[0], three_way[1], dtype=np.int64)
        if left_key is None:
            left = _BoundResolution(position=0)
        else:
            left = self._resolve(left_key, stats)
        if right_key is None:
            right = _BoundResolution(position=size)
        else:
            right = self._resolve(right_key, stats)
        if (
            not left.is_exact
            and not right.is_exact
            and left.piece == right.piece
        ):
            return self._timed_scan(left.piece, query, stats)
        segments: List[np.ndarray] = []
        if left.is_exact:
            start = left.position
        else:
            start = left.piece[1]
            segments.append(self._timed_scan(left.piece, query, stats))
        end = right.position if right.is_exact else right.piece[0]
        if start < end:
            segments.append(np.arange(start, end, dtype=np.int64))
        if not right.is_exact:
            segments.append(self._timed_scan(right.piece, query, stats))
        if not segments:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(segments)

    def _resolve(
        self, key: EncryptedBoundKey, stats: QueryStats
    ) -> _BoundResolution:
        """Exact crack position for ``key``, cracking the piece if needed."""
        size = len(self._column)
        audit = self._obs.audit
        tick = time.perf_counter()
        with self._obs.span("find-piece"):
            node = self._tree.find(key)
            if node is None:
                piece_lo, piece_hi = self._find_piece(key, size)
        stats.search_seconds += time.perf_counter() - tick
        if node is not None:
            if audit.enabled:
                audit.record("find", bound=audit.ref(key.bound.eb),
                             position=node.position)
            return _BoundResolution(position=node.position)
        if audit.enabled:
            audit.record("find", bound=audit.ref(key.bound.eb),
                         lo=piece_lo, hi=piece_hi)
        if piece_hi - piece_lo <= self._min_piece:
            return _BoundResolution(piece=(piece_lo, piece_hi))
        rows = piece_hi - piece_lo
        tick = time.perf_counter()
        with self._obs.span("crack", lo=piece_lo, hi=piece_hi, rows=rows):
            split = self._column.crack(
                piece_lo, piece_hi, key.bound.eb, key.inclusive
            )
        stats.crack_seconds += time.perf_counter() - tick
        stats.cracked_rows += rows
        stats.cracks += 1
        stats.comparisons += rows
        self._obs.metrics.observe("index.piece_rows", rows)
        if audit.enabled:
            audit.record("crack", lo=piece_lo, hi=piece_hi, splits=[split],
                         bound=audit.ref(key.bound.eb),
                         inclusive=key.inclusive)
        tick = time.perf_counter()
        with self._obs.span("insert-bound", position=split):
            self._add_crack(key, split, size)
        stats.insert_seconds += time.perf_counter() - tick
        return _BoundResolution(position=split)

    def _crack_pivot(self, pivot: EncryptedBound, stats: QueryStats) -> None:
        """Crack on a client-supplied auxiliary pivot (stochastic mode)."""
        self._resolve(EncryptedBoundKey(pivot, inclusive=False), stats)

    def _try_three_way(
        self, query: EncryptedQuery, stats: QueryStats
    ) -> Optional[Tuple[int, int]]:
        """One-pass three-way crack when both bounds share a raw piece."""
        size = len(self._column)
        left_key, right_key = query.left_key, query.right_key
        tick = time.perf_counter()
        known = (
            self._tree.find(left_key) is not None
            or self._tree.find(right_key) is not None
        )
        left_piece = self._find_piece(left_key, size)
        right_piece = self._find_piece(right_key, size)
        stats.search_seconds += time.perf_counter() - tick
        if known or left_piece != right_piece:
            return None
        piece_lo, piece_hi = left_piece
        if piece_hi - piece_lo <= self._min_piece:
            return None
        rows = piece_hi - piece_lo
        audit = self._obs.audit
        tick = time.perf_counter()
        with self._obs.span("crack", lo=piece_lo, hi=piece_hi, rows=rows,
                            three_way=True):
            split0, split1 = self._column.crack_three(
                piece_lo,
                piece_hi,
                query.low.eb,
                query.low_inclusive,
                query.high.eb,
                query.high_inclusive,
            )
        stats.crack_seconds += time.perf_counter() - tick
        stats.cracked_rows += rows
        stats.cracks += 1
        stats.comparisons += 2 * rows
        self._obs.metrics.observe("index.piece_rows", rows)
        if audit.enabled:
            audit.record("crack", lo=piece_lo, hi=piece_hi,
                         splits=[split0, split1],
                         bound=audit.ref(query.low.eb),
                         bound_high=audit.ref(query.high.eb),
                         three_way=True)
        tick = time.perf_counter()
        with self._obs.span("insert-bound", position=split0):
            self._add_crack(left_key, split0, size)
        with self._obs.span("insert-bound", position=split1):
            self._add_crack(right_key, split1, size)
        stats.insert_seconds += time.perf_counter() - tick
        return split0, split1

    def _timed_scan(self, piece, query: EncryptedQuery, stats: QueryStats) -> np.ndarray:
        tick = time.perf_counter()
        low_eb = query.low.eb if query.low is not None else None
        high_eb = query.high.eb if query.high is not None else None
        with self._obs.span("edge-scan", lo=piece[0], hi=piece[1]):
            indices = self._column.scan_qualifying(
                piece[0],
                piece[1],
                low_eb,
                query.low_inclusive,
                high_eb,
                query.high_inclusive,
            )
        stats.scan_seconds += time.perf_counter() - tick
        sides = (low_eb is not None) + (high_eb is not None)
        stats.comparisons += sides * (piece[1] - piece[0])
        audit = self._obs.audit
        if audit.enabled:
            audit.record("scan", lo=piece[0], hi=piece[1],
                         bound=audit.ref(low_eb),
                         bound_high=audit.ref(high_eb),
                         matched=len(indices))
        return indices

    def _find_piece(self, key: EncryptedBoundKey, size: int) -> Tuple[int, int]:
        if self._use_paper_algorithms:
            return find_piece_encrypted(self._tree, key, size)
        return find_piece(self._tree, key, size)

    def _add_crack(self, key: EncryptedBoundKey, split: int, size: int):
        if self._use_paper_algorithms:
            return add_crack_encrypted(self._tree, key, split, size)
        return add_crack(self._tree, key, split, size)

    # -- updates -------------------------------------------------------------------

    def locate_piece_for_row(self, row) -> Tuple[int, int]:
        """Piece ``[lo, hi)`` where a new encrypted row belongs.

        Routes the row down the tree comparing it against each node's
        ``Eb`` form (``sign(Eb(b_node) . Ev(v_new)) == sign(v_new -
        b_node)``) — the server can do this without learning
        ``v_new``.  Used by the ripple merge of pending inserts.  Each
        comparison goes through the scalar-product kernel so it shares
        the column's per-tier accounting.
        """
        node = self._tree.root
        piece_lo, piece_hi = 0, len(self._column)
        while node is not None:
            eb = node.key.bound.eb
            product = single_product(
                eb.vector,
                row.numerators,
                eb.max_abs,
                row.max_abs,
                self._column.kernel_counters,
            )
            sign = (product > 0) - (product < 0)
            belongs_left = sign < 0 or (sign == 0 and node.key.inclusive)
            if belongs_left:
                piece_hi = node.position
                node = node.left
            else:
                piece_lo = node.position
                node = node.right
        return piece_lo, piece_hi

    def insert_row(self, row, row_id: int) -> int:
        """Ripple-insert one row into its piece; returns the position.

        Physically inserts at the upper edge of the target piece and
        shifts every crack position at or beyond it by one, keeping all
        tree invariants intact.
        """
        with self._obs.span("ripple-insert", row_id=row_id):
            __, piece_hi = self.locate_piece_for_row(row)
            self._column.insert_at(piece_hi, row, row_id)
            for node in self._tree.in_order():
                if node.position >= piece_hi:
                    node.position += 1
        self._obs.metrics.add("index.ripple_inserts")
        audit = self._obs.audit
        if audit.enabled:
            audit.record("ripple-insert", row_id=row_id, position=piece_hi)
        return piece_hi

    def delete_row(self, row_id: int) -> int:
        """Physically remove a row by id; returns its old position."""
        position = self._column.physical_index_of(row_id)
        self._column.delete_at(position)
        for node in self._tree.in_order():
            if node.position > position:
                node.position -= 1
        self._obs.metrics.add("index.row_deletes")
        audit = self._obs.audit
        if audit.enabled:
            audit.record("row-delete", row_id=row_id, position=position)
        return position

    # -- introspection ----------------------------------------------------------------

    def piece_boundaries(self) -> List[int]:
        """Sorted crack positions including column ends (leakage input)."""
        positions = sorted({node.position for node in self._tree.in_order()})
        return [0] + positions + [len(self._column)]

    def check_invariants(self) -> None:
        """Assert every indexed crack still partitions the column.

        Notably the *server* can run this check itself — each node
        stores the bound's ``Eb`` form, so partition membership is a
        sign test.  (It learns nothing new: the partition is exactly
        what cracking already revealed.)

        Raises:
            AssertionError: on any violated invariant.
        """
        self._tree.check_invariants()
        size = len(self._column)
        for node in self._tree.in_order():
            if not 0 <= node.position <= size:
                raise IndexStateError("node position out of range")
            products = self._column.products(0, size, node.key.bound.eb)
            if node.key.inclusive:
                left_ok = np.all(products[: node.position] <= 0)
                right_ok = np.all(products[node.position:] > 0)
            else:
                left_ok = np.all(products[: node.position] < 0)
                right_ok = np.all(products[node.position:] >= 0)
            assert left_ok, "rows before the crack violate its predicate"
            assert right_ok, "rows after the crack violate its predicate"
