"""Pseudocode-literal ``findpiece`` / ``addCrack`` (paper, Section 4.3).

The secure engine localises pieces through the comparator-generic
helpers in :mod:`repro.cracking.cracker_tree`; this module transcribes
the paper's two algorithms case by case, keeping their structure
(descend to a frontier node, then distinguish the min / max / below /
above cases through scalar products).  The test-suite drives both
formulations over the same query sequences and asserts they always
agree — the transcription is the fidelity artefact, the generic helper
the production path.

Terminology: ``ScalarProduct(Eb, key)`` in the paper is our
``key.bound.eb`` ... no — the *searched* bound arrives in ``Eb`` mode
and tree keys are stored in ``Ev`` mode, so the paper's
``ScalarProduct(Eb, fNode.key)`` is ``eb_new . ev_node =
xi * (b_node - b_new)``: positive means the searched bound is *smaller*
than the node's.  The helper :func:`_plaintext_order` flips that sign
into conventional "searched minus node" orientation, which keeps the
case analysis readable.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cracking.avl import AVLNode, AVLTree
from repro.core.query import EncryptedBoundKey, compare_encrypted_keys


def _plaintext_order(searched: EncryptedBoundKey, node: AVLNode) -> int:
    """Sign of ``searched_bound - node_bound`` (ties by crack flavour)."""
    return compare_encrypted_keys(searched, node.key)


def _descend(tree: AVLTree, key: EncryptedBoundKey) -> Optional[AVLNode]:
    """The paper's ``findNode``: the frontier node of a BST search.

    Walks from the root following scalar-product comparisons until the
    next child pointer is empty; the returned node is the would-be
    parent of ``key`` (or the exact node when the key is indexed).
    """
    node = tree.root
    last = None
    while node is not None:
        last = node
        sign = _plaintext_order(key, node)
        if sign == 0:
            return node
        node = node.left if sign < 0 else node.right
    return last


def find_piece_encrypted(
    tree: AVLTree, key: EncryptedBoundKey, total_size: int
) -> Tuple[int, int]:
    """The paper's ``findpiece`` over encrypted keys.

    Returns the physical range ``[posL, posH)`` of the piece in which
    the (unindexed) bound falls.  The paper's four cases:

    * **Case 1** — the bound exceeds the largest indexed bound: the
      piece starts at the max node's position and runs to the end.
    * **Case 2** — the search frontier is the min node: the piece ends
      at the min node (bound below all indexed bounds) or starts at it
      (bound between min and its successor).
    * **Case 3** — the bound is below the frontier node: the piece is
      bounded above by it and below by its predecessor.
    * **Case 4** — the bound is above the frontier node: the piece is
      bounded below by it and above by its successor.

    Exact matches are the caller's business (the engine checks the tree
    before calling, as the select operator does in the paper's flow).
    """
    pos_lo, pos_hi = 0, total_size
    root = tree.root
    if root is None:
        return pos_lo, pos_hi
    min_node = tree.min_node()
    max_node = tree.max_node()
    frontier = _descend(tree, key)
    beyond_max = _plaintext_order(key, max_node) > 0
    if beyond_max:
        # Case 1: everything from the last indexed crack to the end.
        return max_node.position, total_size
    if frontier is min_node:
        # Case 2: at the low end of the indexed range.
        if _plaintext_order(key, min_node) < 0:
            return 0, min_node.position
        pos_lo = min_node.position
        successor = tree.successor(min_node)
        if successor is not None:
            pos_hi = successor.position
        return pos_lo, pos_hi
    if _plaintext_order(key, frontier) < 0:
        # Case 3: between the frontier's predecessor and the frontier.
        pos_hi = frontier.position
        predecessor = tree.predecessor(frontier)
        if predecessor is not None:
            pos_lo = predecessor.position
        return pos_lo, pos_hi
    # Case 4: between the frontier and its successor.
    pos_lo = frontier.position
    successor = tree.successor(frontier)
    if successor is not None:
        pos_hi = successor.position
    return pos_lo, pos_hi


def add_crack_encrypted(
    tree: AVLTree,
    key: EncryptedBoundKey,
    position: int,
    total_size: int,
) -> Optional[AVLNode]:
    """The paper's ``addCrack`` over encrypted keys.

    Registers that the column was just partitioned at ``position``
    around ``key``.  Case analysis as in the pseudocode:

    * line 1 — boundary positions carry no information: skip;
    * **Case 1** — the successor-side neighbour already records this
      position: skip (the gap between the bounds is empty);
    * **Case 2** — the predecessor-side neighbour records it: skip;
    * **Case 3** — a node with this exact key exists: refresh its
      position;
    * **Case 4** — otherwise insert a fresh node (with both encrypted
      forms of the bound as its key) and rebalance.
    """
    if position <= 0 or position >= total_size:
        return None
    if tree.root is not None:
        exact = tree.find(key)
        if exact is not None:
            # Case 3.
            exact.position = position
            return exact
        frontier = _descend(tree, key)
        if _plaintext_order(key, frontier) > 0:
            # Key sits after the frontier: the frontier is its
            # predecessor, its successor the next node up (Case 1/2).
            predecessor, successor = frontier, tree.successor(frontier)
        else:
            predecessor, successor = tree.predecessor(frontier), frontier
        if successor is not None and successor.position == position:
            # Case 1.
            return successor
        if predecessor is not None and predecessor.position == position:
            # Case 2.
            return predecessor
    # Case 4.
    return tree.insert(key, position)
