"""Order leakage by structure (paper, Sections 4.1-4.2).

Cracking progressively sorts the column: after enough queries, an
adversary observing the physical layout and the crack positions can
resolve the relative order of many tuple pairs.  Two metrics make that
quantitative:

* :func:`resolved_order_fraction` — the fraction of physical row pairs
  whose relative order the piece structure reveals (pairs in different
  pieces are ordered; pairs inside one piece are not).  1.0 means a
  fully sorted (fully leaked) column — what an order-preserving scheme
  such as OPES leaks *before any query runs*.
* :func:`ambiguous_resolved_order_fraction` — the same question about
  *logical* records when each spawns two interpretations: a pair of
  logical records is resolved only if every interpretation combination
  agrees on the order, which is exactly the paper's claim that
  ambiguity keeps a record's position uncertain "even when that record
  of interest is identified".

The :func:`audit_piece_boundaries` / :func:`audit_crack_events` helpers
bridge this analysis to the server-side
:class:`~repro.obs.audit.AuditLog`: instead of reasoning about what a
curious server *could* see, they compute the same metrics from the
record of what it actually *did* see.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import numpy as np


def piece_index_per_row(
    boundaries: Sequence[int], total_rows: int
) -> np.ndarray:
    """Map each physical position to the index of its piece.

    Args:
        boundaries: sorted crack positions including 0 and
            ``total_rows`` (``piece_boundaries()`` of either engine).
        total_rows: the column size.
    """
    boundaries = list(boundaries)
    if not boundaries or boundaries[0] != 0 or boundaries[-1] != total_rows:
        raise ValueError("boundaries must start at 0 and end at the column size")
    pieces = np.zeros(total_rows, dtype=np.int64)
    for piece, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
        pieces[lo:hi] = piece
    return pieces


def resolved_order_fraction(boundaries: Sequence[int], total_rows: int) -> float:
    """Fraction of physical row pairs ordered by the piece structure.

    Closed form: with piece sizes ``n_k``, the unresolved pairs are
    those within one piece, so the resolved fraction is
    ``1 - sum(C(n_k, 2)) / C(N, 2)``.
    """
    if total_rows < 2:
        return 0.0
    sizes = np.diff(np.asarray(list(boundaries), dtype=np.int64))
    if sizes.sum() != total_rows:
        raise ValueError("boundaries do not cover the column")
    within = float((sizes * (sizes - 1)).sum()) / 2.0
    total = total_rows * (total_rows - 1) / 2.0
    return 1.0 - within / total


def ambiguous_resolved_order_fraction(
    piece_of_physical: np.ndarray,
    physical_ids_per_logical: Dict[int, Tuple[int, int]],
    physical_position_of_id: Dict[int, int],
    sample_pairs: int = 20000,
    seed: int = None,
) -> float:
    """Fraction of *logical* record pairs the structure fully resolves.

    A logical pair (x, y) counts as resolved iff, for every choice of
    interpretation (a of x, b of y), ``piece(a) < piece(b)`` — or
    ``>`` for every choice.  With the real interpretation hidden, any
    disagreement leaves the adversary uncertain.

    Args:
        piece_of_physical: piece index per physical position.
        physical_ids_per_logical: the two physical row ids per logical
            record.
        physical_position_of_id: current physical position per row id.
        sample_pairs: Monte-Carlo pair budget (exact enumeration is
            quadratic).
        seed: sampling seed.
    """
    logical_ids = list(physical_ids_per_logical)
    if len(logical_ids) < 2:
        return 0.0
    rng = random.Random(seed)
    resolved = 0
    for _ in range(sample_pairs):
        x, y = rng.sample(logical_ids, 2)
        pieces_x = [
            piece_of_physical[physical_position_of_id[p]]
            for p in physical_ids_per_logical[x]
        ]
        pieces_y = [
            piece_of_physical[physical_position_of_id[p]]
            for p in physical_ids_per_logical[y]
        ]
        if max(pieces_x) < min(pieces_y) or max(pieces_y) < min(pieces_x):
            resolved += 1
    return resolved / sample_pairs


def audit_crack_events(events: Sequence) -> List:
    """The crack events of an audit trace.

    Accepts :class:`~repro.obs.audit.AuditEvent` objects or their
    ``to_dict`` form.  One event is recorded per crack *operation*
    (a three-way crack is one event carrying two splits), so the event
    count equals the ``cracks`` total of the engine's
    :class:`~repro.cracking.index.QueryStats` log.
    """
    out = []
    for event in events:
        kind = event["event"] if isinstance(event, dict) else event.kind
        if kind == "crack":
            out.append(event)
    return out


def audit_piece_boundaries(events: Sequence, total_rows: int) -> List[int]:
    """Piece boundaries reconstructed from an audit trace.

    Every crack event carries the physical split positions the server
    observed; their union (plus the column ends) is the piece structure
    an honest-but-curious server knows.  For a query-only workload this
    is *exactly* ``piece_boundaries()`` of the engine — crack positions
    never move once created.  Inserts/deletes shift physical positions,
    so for mixed workloads this reconstruction is the (conservative)
    view of an adversary that does not re-derive the shifts; feed the
    result to :func:`resolved_order_fraction` for a leakage figure
    grounded in the actual trace.
    """
    splits = set()
    for event in audit_crack_events(events):
        data = event if isinstance(event, dict) else event.data
        for split in data["splits"]:
            splits.add(int(split))
    return [0] + sorted(s for s in splits if 0 < s < total_rows) + [total_rows]


def predicted_crack_events(stats_log: Sequence) -> int:
    """Crack-event count the audit log of a workload must contain.

    Sums ``cracks`` over a :class:`~repro.cracking.index.QueryStats`
    log; by construction (one audit event per crack operation) an audit
    log recorded alongside the same workload has exactly this many
    ``"crack"`` events — the cross-check the observability tests
    enforce.
    """
    return sum(stats.cracks for stats in stats_log)


def leakage_series(
    engine,
    queries,
    checkpoints: Sequence[int],
) -> List[Tuple[int, float]]:
    """Resolved-order fraction after selected numbers of queries.

    Runs ``queries`` through ``engine`` (anything exposing ``query``
    and ``piece_boundaries``) and records
    :func:`resolved_order_fraction` at each checkpoint.  This is the
    ablation behind the paper's argument that cracking "never leak[s]
    the total data order by a fully sorted index, as OPES does by
    default" — the fraction approaches but never reaches 1 when a
    piece-size threshold is configured.
    """
    checkpoints = sorted(set(checkpoints))
    series: List[Tuple[int, float]] = []
    total = len(engine)
    for count, query in enumerate(queries, start=1):
        engine.query(*query.as_args())
        if count in checkpoints:
            series.append(
                (count, resolved_order_fraction(engine.piece_boundaries(), total))
            )
    return series
