"""Security analysis instrumentation.

:mod:`repro.analysis.leakage` quantifies the paper's Section 4.1
observation — "the more refined the [index] tree becomes, the more
information it can leak about the order of underlying tuples" — and
the Section 4.2 counter-measure: with two interpretations per record,
"the position of a record of interest in the index is uncertain even
when that record of interest is identified".
"""

from repro.analysis.entropy import (
    ambiguous_rank_entropy,
    initial_rank_entropy,
    residual_rank_entropy,
)
from repro.analysis.leakage import (
    piece_index_per_row,
    resolved_order_fraction,
    ambiguous_resolved_order_fraction,
    leakage_series,
)

__all__ = [
    "ambiguous_rank_entropy",
    "initial_rank_entropy",
    "residual_rank_entropy",
    "piece_index_per_row",
    "resolved_order_fraction",
    "ambiguous_resolved_order_fraction",
    "leakage_series",
]
