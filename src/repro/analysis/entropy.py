"""Positional-entropy leakage: rank uncertainty in bits.

The resolved-order fraction (:mod:`repro.analysis.leakage`) counts
*pairs* the structure orders; this module measures the complementary
per-record quantity: given the piece structure, how many bits of
uncertainty remain about a record's **rank** in the sorted order?

* A record inside a piece of ``n`` rows has a rank known only up to
  that piece: ``log2(n)`` bits of uncertainty (the piece's rows are
  unordered among themselves — cracking never sorts within pieces,
  Section 2.2).
* Averaged over a uniformly chosen record, the column's *residual
  entropy* is ``sum_k (n_k / N) * log2(n_k)`` bits; ``log2(N)`` for a
  never-queried column, 0 for a fully cracked one (what OPES leaks at
  load time).
* Under ambiguity, a targeted record has two candidate pieces and the
  adversary does not know which is real: its rank uncertainty spans
  both pieces (paper, Section 4.2 — "the position of a record of
  interest in the index is uncertain even when that record of interest
  is identified").
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.leakage import piece_index_per_row


def residual_rank_entropy(boundaries: Sequence[int], total_rows: int) -> float:
    """Average bits of rank uncertainty for a uniformly random record.

    ``log2(N)`` before any query; strictly decreasing as cracking
    refines pieces; 0 when every piece is a single row.
    """
    if total_rows <= 0:
        return 0.0
    sizes = np.diff(np.asarray(list(boundaries), dtype=np.int64))
    if sizes.sum() != total_rows:
        raise ValueError("boundaries do not cover the column")
    sizes = sizes[sizes > 0]
    weights = sizes / total_rows
    return float(np.sum(weights * np.log2(sizes)))


def initial_rank_entropy(total_rows: int) -> float:
    """The pre-query baseline, ``log2(N)``."""
    if total_rows <= 0:
        return 0.0
    return math.log2(total_rows)


def ambiguous_rank_entropy(
    boundaries: Sequence[int],
    total_rows: int,
    physical_ids_per_logical: Dict[int, Tuple[int, int]],
    physical_position_of_id: Dict[int, int],
) -> float:
    """Average rank-uncertainty bits for a *targeted* logical record.

    The adversary has identified a record (knows its two physical
    interpretations) but not which is real: candidate ranks span both
    interpretations' pieces, so the uncertainty is
    ``log2(n_real_piece + n_fake_piece)`` averaged over records — at
    least one bit more than the unambiguous case even on a fully
    cracked column.
    """
    if not physical_ids_per_logical:
        return 0.0
    pieces = piece_index_per_row(boundaries, total_rows)
    sizes = np.diff(np.asarray(list(boundaries), dtype=np.int64))
    total = 0.0
    for interpretations in physical_ids_per_logical.values():
        span = 0
        seen_pieces = set()
        for physical_id in interpretations:
            piece = int(pieces[physical_position_of_id[physical_id]])
            if piece not in seen_pieces:
                seen_pieces.add(piece)
                span += int(sizes[piece])
        total += math.log2(max(2, span))
    return total / len(physical_ids_per_logical)
