"""OPES: an order-preserving encryption baseline (paper, Section 2.1).

The paper positions Agrawal et al.'s Order-Preserving Encryption
Scheme as the extant indexable alternative — and rejects it: "OPES
reveals the data order, hence cannot overcome attacks based on
statistical analysis ... OPES provides an overkill solution".  To make
that comparison executable, this module implements a deterministic
order-preserving scheme in the lazy-binary-descent style (Boldyreva et
al., cited as [6] by the paper): the secret key pseudo-randomly embeds
the plaintext domain into a much larger ciphertext range, splitting
range mass at every domain bisection.

Properties (all exercised by tests):

* strictly monotone, hence injective: ``a < b  =>  E(a) < E(b)``;
* deterministic: equal plaintexts encrypt equally (frequency leakage —
  one of the reasons the paper's scheme refuses determinism);
* the *server* can sort, index, and range-partition ciphertexts by
  itself — which is precisely the total-order leak the paper's scheme
  avoids (see the OPES ablation benchmark).

This is a faithful baseline, not a secure construction; like the
paper, we use it only as the point of comparison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

from repro.errors import DecryptionError, EncryptionError, KeyGenerationError

#: Extra ciphertext-range bits beyond the domain size; each domain
#: bisection needs slack to randomise its split point.
DEFAULT_EXPANSION_BITS = 16


@dataclass(frozen=True)
class OpesKey:
    """Secret key: a seed plus the fixed domain/range geometry."""

    seed: bytes
    domain: Tuple[int, int]
    range_: Tuple[int, int]

    def __post_init__(self) -> None:
        if self.domain[1] <= self.domain[0]:
            raise KeyGenerationError("empty OPES domain")
        if self.range_[1] - self.range_[0] < self.domain[1] - self.domain[0]:
            raise KeyGenerationError("OPES range smaller than domain")


def generate_opes_key(
    domain: Tuple[int, int],
    seed: int = 0,
    expansion_bits: int = DEFAULT_EXPANSION_BITS,
) -> OpesKey:
    """Generate a key for plaintexts in the half-open ``domain``."""
    width = (domain[1] - domain[0]) << expansion_bits
    seed_bytes = hashlib.sha256(b"opes-key:%d" % seed).digest()
    return OpesKey(seed=seed_bytes, domain=domain, range_=(0, width))


class OpesCipher:
    """Deterministic order-preserving encryption over integers."""

    def __init__(self, key: OpesKey) -> None:
        self.key = key
        # The descent tree's upper levels repeat across values; caching
        # split points turns per-value cost from 31 hashes into a few.
        self._split_cache = {}

    def _split_point(
        self, d_lo: int, d_hi: int, r_lo: int, r_hi: int
    ) -> Tuple[int, int]:
        """Deterministic split of domain and range at this node.

        The domain splits at its midpoint; the range split is drawn
        pseudo-randomly (keyed by the node) from the interval leaving
        both halves at least as much range as domain.  Node identity is
        the domain interval (range intervals follow deterministically),
        so results are memoised per node.
        """
        cached = self._split_cache.get((d_lo, d_hi))
        if cached is not None:
            return cached
        d_mid = (d_lo + d_hi) // 2
        left_need = d_mid - d_lo
        right_need = d_hi - d_mid
        low = r_lo + left_need
        high = r_hi - right_need
        digest = hashlib.sha256(
            self.key.seed + b"|%d|%d" % (d_lo, d_hi)
        ).digest()
        draw = int.from_bytes(digest, "big")
        r_mid = low + draw % (high - low + 1)
        self._split_cache[(d_lo, d_hi)] = (d_mid, r_mid)
        return d_mid, r_mid

    def encrypt(self, value: int) -> int:
        """Order-preserving ciphertext of ``value``.

        Raises:
            EncryptionError: if the value is outside the key's domain.
        """
        value = int(value)
        d_lo, d_hi = self.key.domain
        if not d_lo <= value < d_hi:
            raise EncryptionError(
                "value %d outside OPES domain [%d, %d)" % (value, d_lo, d_hi)
            )
        r_lo, r_hi = self.key.range_
        while d_hi - d_lo > 1:
            d_mid, r_mid = self._split_point(d_lo, d_hi, r_lo, r_hi)
            if value < d_mid:
                d_hi, r_hi = d_mid, r_mid
            else:
                d_lo, r_lo = d_mid, r_mid
        return r_lo

    def encrypt_bound(self, bound: int) -> int:
        """Encrypt a query bound (clamped to the domain edges).

        Order preservation makes bound encryption the same operation
        as value encryption; out-of-domain bounds clamp to the edges so
        range queries spanning past the domain still work.
        """
        d_lo, d_hi = self.key.domain
        return self.encrypt(min(max(int(bound), d_lo), d_hi - 1))

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt` by the same deterministic descent.

        Raises:
            DecryptionError: if the ciphertext does not correspond to
                any plaintext cell under this key.
        """
        ciphertext = int(ciphertext)
        d_lo, d_hi = self.key.domain
        r_lo, r_hi = self.key.range_
        if not r_lo <= ciphertext < r_hi:
            raise DecryptionError("ciphertext outside the OPES range")
        while d_hi - d_lo > 1:
            d_mid, r_mid = self._split_point(d_lo, d_hi, r_lo, r_hi)
            if ciphertext < r_mid:
                d_hi, r_hi = d_mid, r_mid
            else:
                d_lo, r_lo = d_mid, r_mid
        if ciphertext != r_lo:
            raise DecryptionError(
                "ciphertext %d is not a valid encryption" % ciphertext
            )
        return d_lo
