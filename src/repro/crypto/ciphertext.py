"""Ciphertext containers.

Three ciphertext kinds exist in the system:

* :class:`ValueCiphertext` — an attribute value encrypted in mode
  ``Ev`` (paper, Section 3.3): an integer vector of length ``l``
  together with a positive common denominator (1 except for rows
  derived from ambiguity vectors).  These are the rows the server
  stores, cracks, and returns.
* :class:`BoundCiphertext` — a query bound encrypted in mode ``Eb``;
  always integral.  Comparable against value ciphertexts only.
* :class:`AmbiguousCiphertext` — the length-``(l+1)`` vector of
  Section 4.2, whose ``l``-prefix and ``l``-suffix are *both* valid
  value rows; exactly one (secret) branch is real.

All containers are immutable.  Because denominators are positive, the
sign of a scalar product over the numerators equals the sign of the
exact rational product — the only fact cracking relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

from repro.linalg.vectors import IntVector, dot


def _vector_size_bytes(components) -> int:
    """Wire-size estimate of an integer vector: minimal two's-complement
    bytes per component plus a one-byte length prefix each."""
    return sum(
        (abs(int(x)).bit_length() + 8) // 8 + 1 for x in components
    )


@dataclass(frozen=True)
class ValueCiphertext:
    """An ``Ev``-mode row: integer numerators over a positive denominator."""

    numerators: IntVector
    denominator: int = 1

    def __post_init__(self) -> None:
        if self.denominator <= 0:
            raise ValueError("ciphertext denominator must be positive")

    @property
    def length(self) -> int:
        """Ciphertext length ``l``."""
        return len(self.numerators)

    @property
    def size_bytes(self) -> int:
        """Wire-size estimate (numerators + denominator)."""
        return _vector_size_bytes(self.numerators) + _vector_size_bytes(
            (self.denominator,)
        )

    @cached_property
    def max_abs(self) -> int:
        """Largest absolute numerator — the magnitude bound the scalar
        product kernel uses to prove int64 safety (see
        :mod:`repro.linalg.kernels`)."""
        return max((abs(int(x)) for x in self.numerators), default=0)


@dataclass(frozen=True)
class BoundCiphertext:
    """An ``Eb``-mode query bound; integral by construction."""

    vector: IntVector

    @property
    def length(self) -> int:
        """Ciphertext length ``l``."""
        return len(self.vector)

    @property
    def size_bytes(self) -> int:
        """Wire-size estimate."""
        return _vector_size_bytes(self.vector)

    @cached_property
    def max_abs(self) -> int:
        """Largest absolute component (kernel overflow-proof metadata)."""
        return max((abs(int(x)) for x in self.vector), default=0)

    def product_sign(self, value: ValueCiphertext) -> int:
        """Sign of ``Eb(b) . Ev(v)``, i.e. of ``xi(v) * (v - b)``.

        Returns -1, 0, or +1.  This is the only comparison primitive
        the server possesses (paper requirement 1-3): it never reveals
        the magnitude of ``v - b`` (Section 3.2) and cannot be applied
        between two values or two bounds.
        """
        product = dot(self.vector, value.numerators)
        if product > 0:
            return 1
        if product < 0:
            return -1
        return 0


@dataclass(frozen=True)
class AmbiguousCiphertext:
    """The length-``(l+1)`` two-interpretation vector of Section 4.2.

    The server derives both the prefix and the suffix interpretation and
    manages each as an independent row; only the key holder can tell
    which one is real (the branch whose decrypted multiplier ``xi`` is
    an odd positive integer).
    """

    numerators: IntVector
    denominator: int

    def __post_init__(self) -> None:
        if self.denominator <= 0:
            raise ValueError("ciphertext denominator must be positive")
        if len(self.numerators) < 4:
            raise ValueError("ambiguous ciphertexts have length l + 1 >= 4")

    @property
    def length(self) -> int:
        """Underlying ciphertext length ``l`` (stored vector is ``l + 1``)."""
        return len(self.numerators) - 1

    @property
    def size_bytes(self) -> int:
        """Wire-size estimate (numerators + denominator)."""
        return _vector_size_bytes(self.numerators) + _vector_size_bytes(
            (self.denominator,)
        )

    def interpretations(self) -> Tuple[ValueCiphertext, ValueCiphertext]:
        """Return the two possible rows: ``(l-prefix, l-suffix)``.

        Both pass the scheme's structural checks; the server cannot
        distinguish them (the owner randomises which end carries the
        real row at encryption time).
        """
        prefix = ValueCiphertext(self.numerators[:-1], self.denominator)
        suffix = ValueCiphertext(self.numerators[1:], self.denominator)
        return prefix, suffix
