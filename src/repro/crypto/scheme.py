"""Encryption, decryption, and comparison (paper, Sections 3 and 4.2).

The scheme composes three obscurement layers:

1. *Noise addition* (3.1) — payloads ``(xi*v, -xi)`` / ``(1, b)`` are
   embedded at secret positions of a length-``l`` vector whose
   remaining slots carry noise: orthogonal to the secret direction
   ``u`` for values, collinear to ``u`` for bounds, so noise terms
   cancel in every bound-value scalar product.
2. *Scalar multiplication* (3.2) — a random positive multiplier
   ``xi(v)`` obscures the norm of ``v - b``; only the sign survives.
3. *Matrix multiplication* (3.3) — values are multiplied by ``M^-1``,
   bounds by ``M^T``, so products telescope:
   ``Eb(b) . Ev(v) = xi(v) * (v - b)``.

The ambiguity layer (4.2) optionally extends each value ciphertext to
length ``l + 1`` such that both the ``l``-prefix and the ``l``-suffix
are structurally valid rows; the real branch is identified only by the
key holder through the odd-integer convention on ``xi``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Optional, Tuple

from repro.crypto.ciphertext import (
    AmbiguousCiphertext,
    BoundCiphertext,
    ValueCiphertext,
)
from repro.crypto.key import SecretKey, generate_key
from repro.errors import AmbiguityError, DecryptionError, EncryptionError
from repro.linalg.intmat import mat_vec, mat_transpose
from repro.linalg.solve import solve_affine
from repro.linalg.vectors import IntVector, dot, orthogonal_vector, scale


def compare(bound: BoundCiphertext, value: ValueCiphertext) -> int:
    """Server-side comparison: sign of ``v - b`` (times ``sign(xi)``).

    For rows produced by :meth:`Encryptor.encrypt_value` the multiplier
    is positive, so the result is exactly ``sign(v - b)``.  Returns
    -1, 0, or +1.
    """
    return bound.product_sign(value)


@dataclass(frozen=True)
class DecryptedRow:
    """Outcome of decrypting one server row.

    Attributes:
        value: the recovered plaintext, or None for a fake (ambiguity)
            row.
        multiplier: the recovered ``xi`` as an exact rational; real rows
            always carry an odd positive integer.
        is_real: True when the odd-integer convention identifies the
            row as a real value (Section 4.2).
    """

    value: Optional[int]
    multiplier: Fraction
    is_real: bool


class Encryptor:
    """Key-holder operations: encrypt values/bounds, decrypt rows.

    Instances are owned by the data owner and trusted clients; the
    server never sees one.  All randomness flows through the instance's
    ``rng`` so experiments are reproducible.

    Args:
        key: the secret key.
        rng: randomness source; a fresh ``random.Random(seed)`` is
            created when only ``seed`` is given.
        seed: convenience seed, ignored when ``rng`` is passed.
        multiplier_bound: ``xi`` is drawn odd from ``[1, multiplier_bound]``
            and ``lambda`` nonzero from ``[-multiplier_bound, multiplier_bound]``.
        noise_magnitude: magnitude of the raw noise samples.
    """

    def __init__(
        self,
        key: SecretKey,
        rng: random.Random = None,
        seed: int = None,
        multiplier_bound: int = 1 << 16,
        noise_magnitude: int = 1 << 16,
    ) -> None:
        if multiplier_bound < 1:
            raise EncryptionError("multiplier bound must be >= 1")
        self.key = key
        self._rng = rng if rng is not None else random.Random(seed)
        self._multiplier_bound = multiplier_bound
        self._noise_magnitude = noise_magnitude
        self._matrix_t = mat_transpose(key.matrix)
        #: Count of ambiguous encryptions that fell back to an
        #: unsteered counterfeit (see generate_steerable_key).
        self.steering_fallbacks = 0

    # -- mode Ev: values ------------------------------------------------

    def encrypt_value(self, value: int) -> ValueCiphertext:
        """Encrypt an attribute value in mode ``Ev`` (Section 3.3).

        ``Ev(v) = M^-1 @ (xi * (payload(v) + noise_perp))`` with the
        multiplier ``xi`` odd and positive (the oddness carries the
        real/fake convention of Section 4.2 even for rows that are
        never wrapped in ambiguity).
        """
        value = int(value)  # exact big-int arithmetic, never numpy scalars
        xi = self._draw_odd_multiplier()
        noise = orthogonal_vector(
            self.key.u, self._rng, magnitude=self._noise_magnitude
        )
        pre_image = self.key.assemble(
            xi * value, -xi, scale(noise, xi)
        )
        return ValueCiphertext(mat_vec(self.key.matrix_inverse, pre_image))

    def encrypt_value_ambiguous(
        self,
        value: int,
        fake_domain: Tuple[int, int] = None,
        fake_value: int = None,
        max_attempts: int = 64,
    ) -> AmbiguousCiphertext:
        """Encrypt with the deliberate-error layer of Section 4.2.

        Produces a length-``(l+1)`` vector whose prefix and suffix are
        both structurally valid rows; the variant (theta appended as
        prefix or suffix) is drawn uniformly so the server cannot learn
        which end is real.  The owner verifies that only the real
        branch decrypts to an odd positive integer multiplier and
        resamples otherwise, exactly as the paper prescribes ("the fact
        that only one decryption attempt delivers an odd integer ... is
        verified by the data owner during encryption").

        The fake branch can be *steered*: the paper likens the result
        to "adding counterfeit records in our database", and its
        client-side evaluation (Figure 13a) shows fakes qualifying for
        range queries about as often as real rows — i.e. counterfeit
        pseudo-values distributed like the data.  Passing
        ``fake_domain`` (half-open) draws a counterfeit uniformly from
        it and uses the owner's free encryption parameters (noise
        orientation and multipliers) to make the fake branch decode to
        exactly that counterfeit, with a positive (so
        comparison-consistent) but never odd-integral multiplier;
        ``fake_value`` pins the counterfeit instead.  With neither, the
        fake branch is left unsteered (structurally valid but decoding
        to an arbitrary huge pseudo-value, which no realistic range
        query ever matches).  Steering requires ``l >= 4`` — at
        ``l = 3`` value noise is identically zero and there is no free
        parameter to steer with.

        Raises:
            AmbiguityError: when no admissible ciphertext is found
                within ``max_attempts`` (or steering is requested at
                ``l = 3``).
        """
        value = int(value)  # exact big-int arithmetic, never numpy scalars
        if fake_value is not None or fake_domain is not None:
            if fake_value is not None:
                fake_value = int(fake_value)
            if fake_domain is not None:
                fake_domain = (int(fake_domain[0]), int(fake_domain[1]))
            return self._encrypt_ambiguous_steered(
                value, fake_domain, fake_value, max_attempts
            )
        for _ in range(max_attempts):
            real = self.encrypt_value(value)
            theta_as_suffix = bool(self._rng.getrandbits(1))
            ambiguous = self._attach_theta(real, theta_as_suffix)
            prefix, suffix = ambiguous.interpretations()
            real_row = prefix if theta_as_suffix else suffix
            fake_row = suffix if theta_as_suffix else prefix
            if not self.decrypt_row(real_row).is_real:
                raise AmbiguityError("real branch failed the odd-xi check")
            if not self.decrypt_row(fake_row).is_real:
                return ambiguous
        raise AmbiguityError(
            "fake branch kept decrypting like a real row after %d attempts"
            % max_attempts
        )

    def _encrypt_ambiguous_steered(
        self,
        value: int,
        fake_domain: Tuple[int, int],
        fake_value: int,
        max_attempts: int,
    ) -> AmbiguousCiphertext:
        """Two-interpretation ciphertext with a chosen counterfeit.

        Solves, exactly over the rationals, for a length-``(l+1)``
        vector ``a`` such that (with ``ro``/``fo`` the real/fake window
        offsets and ``r`` the key's ambiguity row):

        1. ``M @ a[ro:ro+l]`` carries payload ``(xi*v, -xi)``  (real);
        2. ``r . a[ro:ro+l] = 0``   (real noise orthogonal to ``u``);
        3. ``r . a[fo:fo+l] = 0``   (fake noise orthogonal — the theta
           condition of Section 4.2);
        4. ``M @ a[fo:fo+l]`` has payload ratio ``fake_value`` (the
           counterfeit).

        Free solution dimensions (``l > 4``) are randomised; attempts
        are rejected until the fake multiplier is positive (so the
        counterfeit row compares consistently, like a genuinely
        inserted record) and fails the odd-integer convention.
        """
        if self.key.length < 4:
            raise AmbiguityError(
                "steered counterfeits need ciphertext length >= 4"
            )
        strict = fake_value is not None
        if fake_value is not None:
            fake_domain = (fake_value, fake_value + 1)
        for _ in range(max_attempts):
            first_variant = bool(self._rng.getrandbits(1))
            for theta_as_suffix in (first_variant, not first_variant):
                ambiguous = self._solve_steered(
                    value, fake_domain, theta_as_suffix
                )
                if ambiguous is None:
                    continue
                prefix, suffix = ambiguous.interpretations()
                real_row = prefix if theta_as_suffix else suffix
                fake_row = suffix if theta_as_suffix else prefix
                real = self.decrypt_row(real_row)
                fake = self.decrypt_row(fake_row)
                if not real.is_real or real.value != value:
                    continue
                if fake.is_real or fake.multiplier <= 0:
                    continue
                return ambiguous
        if strict:
            raise AmbiguityError(
                "no admissible steered ciphertext in %d attempts" % max_attempts
            )
        # The achievable counterfeit range is key-dependent (see
        # generate_steerable_key); for keys that cannot reach this
        # domain, degrade to the unsteered construction rather than
        # fail — the row stays two-faced, the counterfeit just never
        # matches realistic queries.
        self.steering_fallbacks += 1
        return self.encrypt_value_ambiguous(value, max_attempts=max_attempts)

    def _solve_steered(
        self,
        value: int,
        fake_domain: Tuple[int, int],
        theta_as_suffix: bool,
    ) -> Optional[AmbiguousCiphertext]:
        """One steering attempt; None when this draw is inadmissible.

        The *structural* constraints on the ambiguity vector ``a`` —
        the real window's payload ratio and both windows' noise
        orthogonality — are homogeneous, leaving a solution subspace of
        dimension ``l - 2 >= 2``.  A random 2-dimensional pencil
        ``a(t) = b1 + t * b2`` inside it is drawn; along the pencil the
        real and fake multipliers are linear in ``t`` and the fake
        pseudo-value is a fractional-linear function of ``t``, so

        * sampling a counterfeit target uniformly from the domain and
          inverting the fractional-linear map yields the unique ``t``
          realising it (accepted when both multipliers then share a
          sign — the global flip makes them positive), and
        * when uniform targets keep failing, the exactly-computed
          feasible ``t`` region (two quadratic sign conditions with
          rational roots) provides a fallback point whose counterfeit
          still lands inside the domain.

        The surviving vector is flipped positive, then scaled so the
        real multiplier is a random odd integer — the scale freedom is
        exactly the paper's ``xi(v)``.
        """
        length = self.key.length
        p0, p1 = self.key.payload_positions
        matrix = self.key.matrix
        r = self.key.ambiguity_row
        real_offset = 0 if theta_as_suffix else 1
        fake_offset = 1 - real_offset
        unknowns = length + 1

        def window_row(coeffs, offset: int) -> list:
            row = [Fraction(0)] * unknowns
            for j, c in enumerate(coeffs):
                row[offset + j] += c
            return row

        real_payload0 = window_row(matrix[p0], real_offset)
        real_payload1 = window_row(matrix[p1], real_offset)
        coefficients = [
            # payload0 + v * payload1 == 0: the real window decodes to v.
            [a + value * b for a, b in zip(real_payload0, real_payload1)],
            window_row(r, real_offset),
            window_row(r, fake_offset),
        ]
        solution = solve_affine(coefficients, [Fraction(0)] * len(coefficients))
        if solution is None:
            return None
        __, basis = solution
        if len(basis) < 2:
            return None
        b1, b2 = self._random_pencil(basis)

        def form(row) -> Tuple[Fraction, Fraction]:
            """A linear functional of a(t) as (constant, slope) in t."""
            return (
                sum(m * x for m, x in zip(row, b1)),
                sum(m * x for m, x in zip(row, b2)),
            )

        # mu_re(t) = p + q t, mu_fk(t) = c0 + c1 t, P0_fk(t) = a0 + a1 t.
        p, q = form([-x for x in real_payload1])
        c0, c1 = form([-x for x in window_row(matrix[p1], fake_offset)])
        a0, a1 = form(window_row(matrix[p0], fake_offset))
        t = self._pick_parameter(fake_domain, p, q, c0, c1, a0, a1)
        if t is None:
            return None
        vector = [x + t * y for x, y in zip(b1, b2)]
        real_multiplier = p + q * t
        if real_multiplier == 0:
            return None
        if real_multiplier < 0:
            vector = [-x for x in vector]
            real_multiplier = -real_multiplier
        # Scale so the real multiplier becomes a random odd integer.
        scale_factor = Fraction(self._draw_odd_multiplier()) / real_multiplier
        vector = [x * scale_factor for x in vector]
        denominator = 1
        for entry in vector:
            denominator = denominator * entry.denominator // gcd(
                denominator, entry.denominator
            )
        numerators = tuple(int(entry * denominator) for entry in vector)
        if all(n == 0 for n in numerators):
            return None
        return AmbiguousCiphertext(numerators, denominator)

    def _random_pencil(self, basis) -> Tuple[list, list]:
        """Two random independent combinations of the nullspace basis."""
        if len(basis) == 2:
            return list(basis[0]), list(basis[1])
        while True:
            coeffs1 = [self._rng.randint(-8, 8) for _ in basis]
            coeffs2 = [self._rng.randint(-8, 8) for _ in basis]
            # Independence of the coefficient vectors implies
            # independence of the combinations (basis is independent).
            cross_ok = any(
                coeffs1[i] * coeffs2[j] != coeffs1[j] * coeffs2[i]
                for i in range(len(basis))
                for j in range(i + 1, len(basis))
            )
            if not cross_ok:
                continue
            b1 = [
                sum(c * row[k] for c, row in zip(coeffs1, basis))
                for k in range(len(basis[0]))
            ]
            b2 = [
                sum(c * row[k] for c, row in zip(coeffs2, basis))
                for k in range(len(basis[0]))
            ]
            if any(b1) and any(b2):
                return b1, b2

    def _pick_parameter(
        self,
        fake_domain: Tuple[int, int],
        p: Fraction,
        q: Fraction,
        c0: Fraction,
        c1: Fraction,
        a0: Fraction,
        a1: Fraction,
        uniform_tries: int = 12,
    ) -> Optional[Fraction]:
        """Find t with sign(mu_re) == sign(mu_fk) and counterfeit in domain.

        Conditions on ``t``::

            f(t) = (p + q t)(c0 + c1 t) > 0          (consistent fake)
            g(t) = (P0 - lo*mu_fk)(P0 - hi*mu_fk) <= 0   (in-domain)

        with ``P0 = a0 + a1 t`` and ``mu_fk = c0 + c1 t`` (the domain
        condition is multiplied through by ``mu_fk^2``, so it is
        sign-safe).  Uniform counterfeit targets are tried first (their
        acceptance keeps the counterfeit distribution uniform over the
        feasible part of the domain); the fallback tests the O(1)
        rational candidate points defined by the roots of the four
        linear factors.
        """
        domain_lo = Fraction(fake_domain[0])
        domain_hi = Fraction(fake_domain[1] - 1)
        if domain_hi < domain_lo:
            domain_hi = domain_lo

        def feasible(t: Fraction, strict_domain: bool = False) -> bool:
            mu_re = p + q * t
            mu_fk = c0 + c1 * t
            if mu_re * mu_fk <= 0:
                return False
            payload0 = a0 + a1 * t
            lower = payload0 - domain_lo * mu_fk
            upper = payload0 - domain_hi * mu_fk
            return lower * upper <= 0

        # Accept-reject on uniform integer counterfeits: invert the
        # fractional-linear map c = P0 / mu_fk at the target.
        span = fake_domain[1] - fake_domain[0]
        for _ in range(uniform_tries):
            target = fake_domain[0] + self._rng.randrange(max(1, span))
            denominator = a1 - target * c1
            if denominator == 0:
                continue
            t = Fraction(target * c0 - a0, denominator)
            if (p + q * t) * (c0 + c1 * t) > 0:
                return t
        # Fallback: candidate points around the roots of all factors.
        roots = []
        for constant, slope in (
            (p, q),
            (c0, c1),
            (a0 - domain_lo * c0, a1 - domain_lo * c1),
            (a0 - domain_hi * c0, a1 - domain_hi * c1),
        ):
            if slope != 0:
                roots.append(-constant / slope)
        roots = sorted(set(roots))
        candidates = []
        if roots:
            candidates.append(roots[0] - 1)
            for left, right in zip(roots, roots[1:]):
                candidates.append((left + right) / 2)
            candidates.append(roots[-1] + 1)
            candidates.extend(roots)
        else:
            candidates.append(Fraction(0))
        feasible_points = [t for t in candidates if feasible(t)]
        if not feasible_points:
            return None
        return feasible_points[self._rng.randrange(len(feasible_points))]

    def _attach_theta(
        self, real: ValueCiphertext, theta_as_suffix: bool
    ) -> AmbiguousCiphertext:
        """Compute theta and build the two-interpretation vector.

        theta is the unique rational making the *other* end's noise
        contents (after multiplying back by ``M``) orthogonal to ``u``:
        with the precomputed row ``r`` (``r . x == u . noise(M @ x)``),

        * suffix variant (``(Ev; theta)``): fake row is
          ``(Ev[1:], theta)`` and ``theta = -(sum r[i] Ev[i+1]) / r[-1]``;
        * prefix variant (``(theta; Ev)``): fake row is
          ``(theta, Ev[:-1])`` and ``theta = -(sum r[i] Ev[i-1]) / r[0]``.
        """
        r = self.key.ambiguity_row
        ev = real.numerators
        length = self.key.length
        if theta_as_suffix:
            shifted = sum(r[i] * ev[i + 1] for i in range(length - 1))
            theta = Fraction(-shifted, r[-1])
        else:
            shifted = sum(r[i] * ev[i - 1] for i in range(1, length))
            theta = Fraction(-shifted, r[0])
        denominator = theta.denominator
        scaled = tuple(e * denominator for e in ev)
        if theta_as_suffix:
            numerators = scaled + (theta.numerator,)
        else:
            numerators = (theta.numerator,) + scaled
        return AmbiguousCiphertext(numerators, denominator)

    # -- mode Eb: bounds -------------------------------------------------

    def encrypt_bound(self, bound: int) -> BoundCiphertext:
        """Encrypt a query bound in mode ``Eb`` (Section 3.3).

        ``Eb(b) = M^T @ (payload(1, b) + lambda * u)``.
        """
        bound = int(bound)  # exact big-int arithmetic, never numpy scalars
        lam = self._draw_nonzero()
        pre_image = self.key.assemble(1, bound, scale(self.key.u, lam))
        return BoundCiphertext(mat_vec(self._matrix_t, pre_image))

    # -- decryption -------------------------------------------------------

    def decrypt_row(self, row: ValueCiphertext) -> DecryptedRow:
        """Decrypt one server row, classifying real vs fake.

        Multiplies back by ``M``, reads the payload slots, and applies
        the odd-integer convention: a row is real iff the recovered
        ``xi`` is an odd positive integer; then ``v = x[p0] / xi``.

        A row is real iff (a) its noise contents are orthogonal to the
        secret direction ``u`` — every honestly produced row (real or
        counterfeit branch) satisfies this exactly, while tampering
        with any ciphertext component breaks it with overwhelming
        probability, so the check doubles as integrity protection —
        (b) the recovered ``xi`` is an odd positive integer, and
        (c) the payload decodes to an integral plaintext (the client
        knows the column holds integers; a fake branch can, rarely,
        mimic the odd-xi convention alone, and the owner additionally
        resamples at encryption time whenever a fake passes all
        checks).
        """
        pre_image = mat_vec(self.key.matrix, row.numerators)
        payload0, payload1 = self.key.payload_projection(pre_image)
        noise = self.key.noise_projection(pre_image)
        if dot(self.key.u, noise) != 0:
            return DecryptedRow(
                value=None, multiplier=Fraction(0), is_real=False
            )
        multiplier = Fraction(-payload1, row.denominator)
        xi_is_odd_integer = (
            multiplier > 0
            and multiplier.denominator == 1
            and multiplier.numerator % 2 == 1
        )
        if not xi_is_odd_integer:
            return DecryptedRow(value=None, multiplier=multiplier, is_real=False)
        value = Fraction(payload0, -payload1)
        if value.denominator != 1:
            return DecryptedRow(value=None, multiplier=multiplier, is_real=False)
        return DecryptedRow(value=int(value), multiplier=multiplier, is_real=True)

    def decrypt_value(self, row: ValueCiphertext) -> int:
        """Decrypt a row known to be real; raise on fakes.

        Raises:
            DecryptionError: if the row is a fake interpretation.
        """
        decrypted = self.decrypt_row(row)
        if not decrypted.is_real:
            raise DecryptionError("row is a fake (ambiguity) interpretation")
        return decrypted.value

    # -- analysis hooks (key-holder only) ----------------------------------

    def pre_image(self, row: ValueCiphertext) -> Tuple[IntVector, int]:
        """Return the pre-matrix noisy vector of a row (numerators, den).

        This is what an adversary would observe *if* the matrix layer
        were absent — the starting point of the Section 3.5 noise-layer
        attack.  Requires the key; exposed for the attack simulations
        and tests.
        """
        return mat_vec(self.key.matrix, row.numerators), row.denominator

    def bound_pre_image(self, bound: BoundCiphertext) -> IntVector:
        """Return the pre-matrix noisy vector of a bound ciphertext."""
        inverse_t = mat_transpose(self.key.matrix_inverse)
        return mat_vec(inverse_t, bound.vector)

    # -- internals ---------------------------------------------------------

    def _draw_odd_multiplier(self) -> int:
        """Draw ``xi``: odd, positive, uniform over ``[1, bound]``."""
        half = (self._multiplier_bound + 1) // 2
        return 2 * self._rng.randrange(half) + 1

    def _draw_nonzero(self) -> int:
        """Draw ``lambda``: nonzero, uniform over ``[-bound, bound]``."""
        bound = self._multiplier_bound
        draw = self._rng.randint(1, 2 * bound)
        return draw - bound - 1 if draw <= bound else draw - bound


def probe_steerable(
    key: SecretKey,
    fake_domain: Tuple[int, int],
    seed: int = None,
    probes: int = 5,
) -> bool:
    """Whether counterfeits in ``fake_domain`` are reachable under ``key``.

    The achievable counterfeit range of the ambiguity layer is a
    key-dependent interval (the solution space of the structural
    constraints is finite-dimensional — at ``l = 4`` it is a plane, and
    the in-domain / sign-consistent conditions carve an interval out of
    its projective line).  Empirically the property is binary per key:
    either counterfeits across the whole domain are reachable or none
    are.  This probes a handful of values spread over the domain.
    """
    if key.length < 4:
        return False
    encryptor = Encryptor(key, seed=seed)
    low, high = fake_domain
    span = max(1, high - low - 1)
    probe_values = [low + span * i // max(1, probes - 1) for i in range(probes)]
    for value in probe_values:
        try:
            encryptor._encrypt_ambiguous_steered(
                value, fake_domain, None, max_attempts=4
            )
        except AmbiguityError:
            return False
        if encryptor.steering_fallbacks:
            return False
    return True


def generate_steerable_key(
    length: int,
    fake_domain: Tuple[int, int],
    seed: int = None,
    max_attempts: int = 64,
) -> SecretKey:
    """Generate a key whose ambiguity layer can reach ``fake_domain``.

    Data owners enabling ambiguity should pick their key with this
    function (roughly 85% of random keys qualify, so the retry loop is
    short): it resamples :func:`repro.crypto.key.generate_key` until
    :func:`probe_steerable` passes.

    Raises:
        KeyGenerationError: if no steerable key is found within the
            attempt budget.
    """
    from repro.errors import KeyGenerationError

    base = 0 if seed is None else seed
    for attempt in range(max_attempts):
        key = generate_key(length=length, seed=base + attempt if seed is not None else None)
        if probe_steerable(key, fake_domain, seed=base + attempt):
            return key
    raise KeyGenerationError(
        "no steerable key found in %d attempts" % max_attempts
    )
