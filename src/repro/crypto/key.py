"""The total encryption key (paper, Section 3.4).

A key consists of:

1. the secret direction ``u`` (the paper's unit vector — only the
   direction matters for orthogonality, so we keep it integral for
   exact arithmetic),
2. the secret payload positions occupied by ``(xi*v, -xi)`` in value
   vectors and ``(1, b)`` in bound vectors,
3. the invertible matrix ``M`` (here: unimodular, so ``M^-1`` is also
   an integer matrix and ciphertexts stay integral),
4. the ciphertext length ``l`` chosen by the data owner (Section 3.5:
   security against known-plaintext attacks grows with ``l``).

The per-plaintext secrets — the noise orientation ``u_perp(v)``, the
multipliers ``xi(v)`` and ``lambda(b)`` — are drawn at encryption time
by :class:`repro.crypto.scheme.Encryptor` and never stored.

The key also precomputes the *ambiguity row vector* ``r`` with
``r . x == u . noise(M @ x)`` for any ciphertext-space vector ``x``;
the fake-branch offset theta of Section 4.2 is a ratio of two ``r``
products, so keeping ``r`` around makes ambiguity encryption O(l)
instead of O(l^2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import KeyGenerationError
from repro.linalg.intmat import IntMatrix, mat_mul, mat_vec, mat_transpose, random_unimodular
from repro.linalg.vectors import IntVector, dot, is_zero

#: Smallest ciphertext length that leaves room for one noise slot.
MIN_LENGTH = 3

#: Paper default (Section 5: "we encrypt data with default key size l = 4").
DEFAULT_LENGTH = 4


@dataclass(frozen=True)
class SecretKey:
    """Immutable secret key; known to data owner and trusted clients only.

    Attributes:
        length: ciphertext length ``l`` (>= 3).
        payload_positions: the two secret positions ``(p0, p1)`` holding
            the payload contents (``xi*v`` / ``1`` at ``p0`` and
            ``-xi`` / ``b`` at ``p1``).
        noise_positions: the remaining ``l - 2`` positions, ascending.
        u: secret direction in ``Z^(l-2)``; bound noise is collinear to
            ``u``, value noise orthogonal to it.
        matrix: the secret unimodular matrix ``M``.
        matrix_inverse: ``M^-1`` (integral because ``det M = +/-1``).
        ambiguity_row: precomputed row ``r`` with
            ``r . x == u . noise(M @ x)``; both ``r[0]`` and ``r[-1]``
            are guaranteed nonzero so that either ambiguity variant
            (theta as prefix or suffix) is well defined.
    """

    length: int
    payload_positions: Tuple[int, int]
    noise_positions: Tuple[int, ...]
    u: IntVector
    matrix: IntMatrix
    matrix_inverse: IntMatrix
    ambiguity_row: IntVector = field(repr=False)

    def __post_init__(self) -> None:
        if self.length < MIN_LENGTH:
            raise KeyGenerationError(
                "ciphertext length must be >= %d, got %d" % (MIN_LENGTH, self.length)
            )
        p0, p1 = self.payload_positions
        if p0 == p1 or not (0 <= p0 < self.length and 0 <= p1 < self.length):
            raise KeyGenerationError("payload positions must be distinct and in range")
        expected_noise = tuple(
            i for i in range(self.length) if i not in (p0, p1)
        )
        if tuple(self.noise_positions) != expected_noise:
            raise KeyGenerationError("noise positions inconsistent with payload positions")
        if len(self.u) != self.length - 2 or is_zero(self.u):
            raise KeyGenerationError("u must be a nonzero vector of length l - 2")

    # -- helpers used by the scheme ------------------------------------

    def assemble(self, payload0: int, payload1: int, noise: IntVector) -> IntVector:
        """Place payload and noise contents at their secret positions."""
        if len(noise) != len(self.noise_positions):
            raise ValueError("noise subvector has wrong length")
        x = [0] * self.length
        p0, p1 = self.payload_positions
        x[p0] = payload0
        x[p1] = payload1
        for pos, value in zip(self.noise_positions, noise):
            x[pos] = value
        return tuple(x)

    def noise_projection(self, x: IntVector) -> IntVector:
        """Extract the noise-slot contents of a ciphertext-space vector."""
        return tuple(x[pos] for pos in self.noise_positions)

    def payload_projection(self, x: IntVector) -> Tuple[int, int]:
        """Extract the payload-slot contents ``(x[p0], x[p1])``."""
        p0, p1 = self.payload_positions
        return x[p0], x[p1]


def generate_key(
    length: int = DEFAULT_LENGTH,
    seed: int = None,
    rng: random.Random = None,
    u_magnitude: int = 1 << 12,
    max_attempts: int = 256,
) -> SecretKey:
    """Generate a fresh secret key.

    Retries matrix / direction sampling until the ambiguity row ``r``
    has nonzero first and last components, which the fake-branch theta
    of Section 4.2 divides by (a zero there would make one ambiguity
    variant degenerate).

    Args:
        length: ciphertext length ``l`` (paper default 4; Figure 12
            sweeps 4..64).
        seed: convenience seed; ignored when ``rng`` is given.
        rng: caller-owned randomness source.
        u_magnitude: components of ``u`` are drawn from
            ``[-u_magnitude, u_magnitude]``.
        max_attempts: resampling budget.

    Raises:
        KeyGenerationError: if no admissible key is found within the
            attempt budget (practically impossible for random keys).
    """
    if rng is None:
        rng = random.Random(seed)
    if length < MIN_LENGTH:
        raise KeyGenerationError(
            "ciphertext length must be >= %d, got %d" % (MIN_LENGTH, length)
        )
    for _ in range(max_attempts):
        p0, p1 = rng.sample(range(length), 2)
        noise_positions = tuple(i for i in range(length) if i not in (p0, p1))
        u = tuple(
            rng.randint(-u_magnitude, u_magnitude) for _ in range(length - 2)
        )
        if is_zero(u):
            continue
        matrix, matrix_inverse = random_unimodular(length, rng)
        ambiguity_row = _ambiguity_row(matrix, noise_positions, u)
        if ambiguity_row[0] == 0 or ambiguity_row[-1] == 0:
            continue
        return SecretKey(
            length=length,
            payload_positions=(p0, p1),
            noise_positions=noise_positions,
            u=u,
            matrix=matrix,
            matrix_inverse=matrix_inverse,
            ambiguity_row=ambiguity_row,
        )
    raise KeyGenerationError(
        "could not generate an ambiguity-compatible key in %d attempts" % max_attempts
    )


def _ambiguity_row(
    matrix: IntMatrix, noise_positions: Tuple[int, ...], u: IntVector
) -> IntVector:
    """Precompute ``r`` with ``r . x == u . noise(M @ x)``.

    ``noise(y)`` selects the noise-position components of ``y``; hence
    ``r = u^T @ N @ M`` where ``N`` is the noise-selection matrix.  In
    the paper's Table 1 algebra this is ``(M^T @ Pc @ E @ u)^T`` — the
    ``W`` matrix of Section 4.2 contracted with ``u``.
    """
    length = len(matrix)
    r = [0] * length
    for u_component, pos in zip(u, noise_positions):
        row = matrix[pos]
        for j in range(length):
            r[j] += u_component * row[j]
    return tuple(r)
