"""Executable versions of the paper's Section 3.5 attack sketches.

Two attacks are implemented, matching the two layers analysed there:

* :func:`recover_payload_positions` — the *known-ciphertext* attack on
  the noise + scalar layers alone (i.e. on pre-matrix vectors, "assume
  an adversary, Alice, who directly observes noisy vectors before they
  are multiplied by M").  Alice enumerates all ``C(l, 2)`` payload
  position hypotheses and keeps those whose complementary coordinates
  have inner product 0 across every observed pair.  The paper concludes
  this layer "is easy to break" in polynomial time; the tests confirm
  the attack succeeds and count the hypotheses tried.

* :class:`BoundRecoveryAttack` — a *known-plaintext* attack against
  bound ciphertexts.  Because every ``Eb(b)`` is a linear image of
  ``(1, b, lambda)``, all bound ciphertexts live in a 3-dimensional
  subspace regardless of ``l``; once the observed pairs span it
  (three generic pairs!), a linear functional ``w`` with
  ``w . Eb(b) = b`` decrypts every future bound.  This is *stronger*
  than the paper's sketch: the paper counts the ``O(l)`` pairs needed
  to reconstruct the whole key, but query bounds — whose noise
  dimension is one (``lambda * u``) — fall to a constant number of
  leaked pairs.  EXPERIMENTS.md discusses the discrepancy.

* :class:`ValueRecoveryAttack` — the known-plaintext attack against
  *value* ciphertexts, whose noise spans ``l - 3`` free dimensions.
  No linear functional recovers ``v`` (the multiplier ``xi`` gets in
  the way), but a *ratio* of two functionals does:
  ``(w1 . Ev) / (w2 . Ev) = v``, since the key rows ``M[p0]`` and
  ``-M[p1]`` satisfy it exactly.  Each known pair yields one
  homogeneous linear equation ``w1 . Ev - v * (w2 . Ev) = 0`` in the
  ``2l`` unknowns ``(w1, w2)``, so ``O(l)`` pairs pin the solution ray
  — matching the paper's ``N >= (l^2 + l - 2)/(l - 1) + 1 = O(l)``
  count and its conclusion that security "strongly depends on the
  chosen ciphertext size l".

All attacks operate only on material an adversary of the stated model
could hold; they import nothing from the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from repro.crypto.ciphertext import BoundCiphertext, ValueCiphertext
from repro.errors import AttackError
from repro.linalg.solve import solve_affine
from repro.linalg.vectors import IntVector


@dataclass(frozen=True)
class PositionHypothesisResult:
    """Outcome of the noise-layer position-recovery attack.

    Attributes:
        consistent_hypotheses: payload position pairs that survived all
            observations (order within a pair is not recoverable —
            both orderings describe the same slot set).
        hypotheses_tested: total number of candidate pairs examined,
            ``C(l, 2)`` — the paper's polynomial bound.
    """

    consistent_hypotheses: Tuple[Tuple[int, int], ...]
    hypotheses_tested: int

    @property
    def unique(self) -> bool:
        """True when exactly one hypothesis survived."""
        return len(self.consistent_hypotheses) == 1


def recover_payload_positions(
    observations: Sequence[Tuple[IntVector, IntVector]],
) -> PositionHypothesisResult:
    """Known-ciphertext attack on the noise layer (pre-matrix vectors).

    Args:
        observations: pairs ``(bound_pre_image, value_pre_image)`` of
            noisy vectors as they would appear *without* the matrix
            layer.  Obtainable via
            :meth:`repro.crypto.scheme.Encryptor.bound_pre_image` /
            :meth:`~repro.crypto.scheme.Encryptor.pre_image` in the
            simulated breach.

    Returns:
        All payload-position hypotheses consistent with every
        observation.  With a handful of observations the true pair is
        almost surely the unique survivor.
    """
    if not observations:
        raise AttackError("the attack needs at least one observation")
    length = len(observations[0][0])
    if any(len(b) != length or len(v) != length for b, v in observations):
        raise AttackError("observations must share one ciphertext length")
    survivors: List[Tuple[int, int]] = []
    hypotheses = list(combinations(range(length), 2))
    for hypothesis in hypotheses:
        i, j = hypothesis
        consistent = True
        for bound_vec, value_vec in observations:
            full = sum(x * y for x, y in zip(bound_vec, value_vec))
            residual = full - bound_vec[i] * value_vec[i] - bound_vec[j] * value_vec[j]
            if residual != 0:
                consistent = False
                break
        if consistent:
            survivors.append(hypothesis)
    return PositionHypothesisResult(
        consistent_hypotheses=tuple(survivors),
        hypotheses_tested=len(hypotheses),
    )


@dataclass
class BoundRecoveryAttack:
    """Known-plaintext attack recovering a bound-decryption functional.

    Collect pairs with :meth:`observe`, then :meth:`fit`.  If fitting
    succeeds, :meth:`decrypt_bound` recovers the plaintext of any
    future bound ciphertext under the same key.

    The functional exists because ``Eb(b) = A @ (1, b, lambda)`` for a
    fixed secret ``l x 3`` matrix ``A``; a ``w`` with
    ``w^T A = (0, 1, 0)`` satisfies ``w . Eb(b) = b`` for *every* b and
    lambda.  Generic keys admit such a ``w`` whenever ``l >= 3``.
    """

    def __init__(self) -> None:
        self._observations: List[Tuple[int, BoundCiphertext]] = []
        self._functional: Optional[Tuple[Fraction, ...]] = None

    @property
    def observation_count(self) -> int:
        """Number of plaintext-ciphertext pairs observed so far."""
        return len(self._observations)

    @property
    def functional(self) -> Optional[Tuple[Fraction, ...]]:
        """The fitted functional ``w``, or None before a successful fit."""
        return self._functional

    def observe(self, plaintext_bound: int, ciphertext: BoundCiphertext) -> None:
        """Record one leaked plaintext-ciphertext pair."""
        if self._observations:
            expected = self._observations[0][1].length
            if ciphertext.length != expected:
                raise AttackError("inconsistent ciphertext lengths")
        self._observations.append((plaintext_bound, ciphertext))
        self._functional = None

    def fit(self) -> bool:
        """Solve ``w . Eb_i = b_i`` exactly; return True on success.

        Runs rational Gaussian elimination on the observed system.  An
        inconsistent system (impossible for genuine observations under
        one key) returns False, as does an underdetermined system whose
        particular solution fails self-validation on the observations.
        """
        if not self._observations:
            return False
        length = self._observations[0][1].length
        rows = [
            [Fraction(x) for x in ct.vector] + [Fraction(b)]
            for b, ct in self._observations
        ]
        solution = _solve_rational(rows, length)
        if solution is None:
            return False
        for b, ct in self._observations:
            if sum(w * x for w, x in zip(solution, ct.vector)) != b:
                return False
        self._functional = tuple(solution)
        return True

    def decrypt_bound(self, ciphertext: BoundCiphertext) -> Fraction:
        """Apply the fitted functional to a fresh bound ciphertext.

        Raises:
            AttackError: if :meth:`fit` has not succeeded yet.
        """
        if self._functional is None:
            raise AttackError("call fit() successfully before decrypting")
        return sum(
            w * x for w, x in zip(self._functional, ciphertext.vector)
        )


class ValueRecoveryAttack:
    """Known-plaintext attack recovering a value-decryption *ratio*.

    Collect pairs with :meth:`observe`, then :meth:`fit`; on success
    :meth:`decrypt_value` recovers the plaintext of any fresh value
    ciphertext under the same key.  The number of pairs required grows
    linearly with the ciphertext length ``l`` (roughly ``2l - 3``) —
    the executable form of the paper's Section 3.5 security argument.
    """

    def __init__(self) -> None:
        self._observations: List[Tuple[int, "ValueCiphertext"]] = []
        self._w1: Optional[Tuple[Fraction, ...]] = None
        self._w2: Optional[Tuple[Fraction, ...]] = None

    @property
    def observation_count(self) -> int:
        """Number of plaintext-ciphertext pairs observed so far."""
        return len(self._observations)

    def observe(self, plaintext_value: int, ciphertext) -> None:
        """Record one leaked value plaintext-ciphertext pair."""
        if self._observations:
            expected = self._observations[0][1].length
            if ciphertext.length != expected:
                raise AttackError("inconsistent ciphertext lengths")
        self._observations.append((plaintext_value, ciphertext))
        self._w1 = None
        self._w2 = None

    def fit(self) -> bool:
        """Find ``(w1, w2)`` with ``w1 . Ev = v * (w2 . Ev)`` on all pairs.

        The system is homogeneous; the basis of its nullspace is
        searched for an element whose ``w2`` component does not vanish
        on the observations (a ratio needs a nonzero denominator).
        With too few pairs the nullspace is large and the returned
        functional usually fails on fresh ciphertexts — callers should
        validate on held-out pairs, as :func:`pairs_needed_to_break`
        does.
        """
        if not self._observations:
            return False
        length = self._observations[0][1].length
        rows = []
        for value, ciphertext in self._observations:
            numerators = ciphertext.numerators
            rows.append(
                [Fraction(x) for x in numerators]
                + [Fraction(-value * x) for x in numerators]
            )
        solution = solve_affine(rows, [Fraction(0)] * len(rows))
        if solution is None:
            return False
        __, basis = solution
        for candidate in basis:
            w1, w2 = candidate[:length], candidate[length:]
            if all(x == 0 for x in w2):
                continue
            denominators_ok = all(
                sum(w * x for w, x in zip(w2, ct.numerators)) != 0
                for __, ct in self._observations
            )
            if denominators_ok:
                self._w1, self._w2 = tuple(w1), tuple(w2)
                return True
        return False

    def decrypt_value(self, ciphertext) -> Fraction:
        """Apply the fitted ratio functional to a fresh value ciphertext.

        Raises:
            AttackError: before a successful :meth:`fit`, or when the
                denominator functional vanishes on this ciphertext.
        """
        if self._w1 is None:
            raise AttackError("call fit() successfully before decrypting")
        numerator = sum(
            w * x for w, x in zip(self._w1, ciphertext.numerators)
        )
        denominator = sum(
            w * x for w, x in zip(self._w2, ciphertext.numerators)
        )
        if denominator == 0:
            raise AttackError("denominator functional vanished")
        return Fraction(numerator, denominator)


def pairs_needed_to_break(attack, pair_stream, holdout, limit: int) -> Optional[int]:
    """Feed pairs until the fitted attack decrypts every holdout pair.

    Args:
        attack: a :class:`BoundRecoveryAttack` or
            :class:`ValueRecoveryAttack` (fresh).
        pair_stream: iterable of ``(plaintext, ciphertext)`` leaks.
        holdout: validation pairs never fed to the attack; the method
            name on the attack (``decrypt_bound`` / ``decrypt_value``)
            is chosen by duck typing.
        limit: maximum pairs to feed.

    Returns:
        The number of pairs after which the attack generalised, or
        None if it never did within ``limit``.
    """
    decrypt = getattr(attack, "decrypt_value", None) or attack.decrypt_bound
    if hasattr(attack, "decrypt_value") and hasattr(attack, "decrypt_bound"):
        raise AttackError("ambiguous attack object")  # pragma: no cover
    for count, (plaintext, ciphertext) in enumerate(pair_stream, start=1):
        if count > limit:
            return None
        attack.observe(plaintext, ciphertext)
        if not attack.fit():
            continue
        try:
            if all(decrypt(ct) == pt for pt, ct in holdout):
                return count
        except AttackError:
            continue
    return None


def _solve_rational(
    augmented: List[List[Fraction]], unknowns: int
) -> Optional[List[Fraction]]:
    """Gaussian elimination over Q; free variables are set to zero.

    Args:
        augmented: rows ``[a_1 .. a_n | rhs]``.
        unknowns: number of unknowns ``n``.

    Returns:
        A particular solution, or None when the system is inconsistent.
    """
    rows = [row[:] for row in augmented]
    pivot_cols: List[int] = []
    row_index = 0
    for col in range(unknowns):
        pivot_row = next(
            (r for r in range(row_index, len(rows)) if rows[r][col] != 0), None
        )
        if pivot_row is None:
            continue
        rows[row_index], rows[pivot_row] = rows[pivot_row], rows[row_index]
        pivot = rows[row_index][col]
        rows[row_index] = [x / pivot for x in rows[row_index]]
        for r in range(len(rows)):
            if r != row_index and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    x - factor * y for x, y in zip(rows[r], rows[row_index])
                ]
        pivot_cols.append(col)
        row_index += 1
        if row_index == len(rows):
            break
    # Inconsistency: a zero row with nonzero right-hand side.
    for r in range(row_index, len(rows)):
        if all(x == 0 for x in rows[r][:unknowns]) and rows[r][unknowns] != 0:
            return None
    solution = [Fraction(0)] * unknowns
    for r, col in enumerate(pivot_cols):
        solution[col] = rows[r][unknowns]
    return solution


def rank_matching_attack(
    ciphertexts: Sequence[int],
    known_value_multiset: Sequence[int],
) -> dict:
    """Break a deterministic order-preserving encryption by rank matching.

    The paper's core objection to OPES (Section 2.1): it "reveals the
    data order, hence cannot overcome attacks based on statistical
    analysis on encrypted data".  This is that attack in its strongest
    form: an adversary who knows the plaintext *multiset* (for example
    public reference data whose encrypted copy it observes) aligns the
    sorted unique ciphertexts with the sorted unique plaintexts and
    decrypts the entire column — no key material involved.

    Frequency information transfers too: because deterministic OPE maps
    equal plaintexts to equal ciphertexts, the i-th most common
    ciphertext is the i-th most common plaintext even when only the
    frequency *distribution* (not the exact multiset) is known.

    Args:
        ciphertexts: the encrypted column as the adversary sees it.
        known_value_multiset: the adversary's knowledge of the
            plaintext values (same multiset, any order).

    Returns:
        Mapping of ciphertext to recovered plaintext.

    Raises:
        AttackError: if the multisets have incompatible shapes (the
            adversary's background knowledge is wrong).
    """
    unique_ciphertexts = sorted(set(int(c) for c in ciphertexts))
    unique_values = sorted(set(int(v) for v in known_value_multiset))
    if len(unique_ciphertexts) != len(unique_values):
        raise AttackError(
            "distinct-count mismatch: %d ciphertexts vs %d known values"
            % (len(unique_ciphertexts), len(unique_values))
        )
    return dict(zip(unique_ciphertexts, unique_values))
