"""Stable JSON-compatible serialization for keys and ciphertexts.

In the database-as-a-service deployment the data owner generates the
key once, shares it with trusted clients out of band, and ships
ciphertexts to the server; all three artefacts therefore need a stable
wire format.  We use plain JSON-compatible dictionaries (Python ints
are arbitrary precision, and JSON numbers carry them losslessly through
Python's ``json`` module), each tagged with a ``kind`` and a format
``version`` so future layouts can coexist.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from repro.crypto.ciphertext import (
    AmbiguousCiphertext,
    BoundCiphertext,
    ValueCiphertext,
)
from repro.crypto.key import SecretKey
from repro.errors import SerializationError

FORMAT_VERSION = 1

Ciphertext = Union[ValueCiphertext, BoundCiphertext, AmbiguousCiphertext]


def key_to_dict(key: SecretKey) -> Dict[str, Any]:
    """Serialize a secret key to a JSON-compatible dictionary."""
    return {
        "kind": "secret_key",
        "version": FORMAT_VERSION,
        "length": key.length,
        "payload_positions": list(key.payload_positions),
        "u": list(key.u),
        "matrix": [list(row) for row in key.matrix],
        "matrix_inverse": [list(row) for row in key.matrix_inverse],
        "ambiguity_row": list(key.ambiguity_row),
    }


def key_from_dict(data: Dict[str, Any]) -> SecretKey:
    """Reconstruct a secret key; validates the tag and version."""
    _check_kind(data, "secret_key")
    try:
        payload_positions = tuple(data["payload_positions"])
        length = int(data["length"])
        return SecretKey(
            length=length,
            payload_positions=payload_positions,
            noise_positions=tuple(
                i for i in range(length) if i not in payload_positions
            ),
            u=tuple(int(x) for x in data["u"]),
            matrix=tuple(tuple(int(x) for x in row) for row in data["matrix"]),
            matrix_inverse=tuple(
                tuple(int(x) for x in row) for row in data["matrix_inverse"]
            ),
            ambiguity_row=tuple(int(x) for x in data["ambiguity_row"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed secret key payload: %s" % exc) from exc


def ciphertext_to_dict(ciphertext: Ciphertext) -> Dict[str, Any]:
    """Serialize any ciphertext kind to a JSON-compatible dictionary."""
    if isinstance(ciphertext, ValueCiphertext):
        return {
            "kind": "value",
            "version": FORMAT_VERSION,
            "numerators": list(ciphertext.numerators),
            "denominator": ciphertext.denominator,
        }
    if isinstance(ciphertext, BoundCiphertext):
        return {
            "kind": "bound",
            "version": FORMAT_VERSION,
            "vector": list(ciphertext.vector),
        }
    if isinstance(ciphertext, AmbiguousCiphertext):
        return {
            "kind": "ambiguous",
            "version": FORMAT_VERSION,
            "numerators": list(ciphertext.numerators),
            "denominator": ciphertext.denominator,
        }
    raise SerializationError(
        "cannot serialize object of type %s" % type(ciphertext).__name__
    )


def ciphertext_from_dict(data: Dict[str, Any]) -> Ciphertext:
    """Reconstruct a ciphertext from its dictionary form."""
    kind = data.get("kind")
    try:
        if kind == "value":
            return ValueCiphertext(
                tuple(int(x) for x in data["numerators"]),
                int(data["denominator"]),
            )
        if kind == "bound":
            return BoundCiphertext(tuple(int(x) for x in data["vector"]))
        if kind == "ambiguous":
            return AmbiguousCiphertext(
                tuple(int(x) for x in data["numerators"]),
                int(data["denominator"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed ciphertext payload: %s" % exc) from exc
    raise SerializationError("unknown ciphertext kind: %r" % (kind,))


def dumps(obj: Union[SecretKey, Ciphertext]) -> str:
    """Serialize a key or ciphertext to a JSON string."""
    if isinstance(obj, SecretKey):
        return json.dumps(key_to_dict(obj), separators=(",", ":"))
    return json.dumps(ciphertext_to_dict(obj), separators=(",", ":"))


def loads(text: str) -> Union[SecretKey, Ciphertext]:
    """Parse a JSON string produced by :func:`dumps`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError("invalid JSON: %s" % exc) from exc
    if not isinstance(data, dict):
        raise SerializationError("expected a JSON object")
    if data.get("kind") == "secret_key":
        return key_from_dict(data)
    return ciphertext_from_dict(data)


def _check_kind(data: Dict[str, Any], expected: str) -> None:
    """Validate the ``kind`` tag and format version of a payload."""
    if data.get("kind") != expected:
        raise SerializationError(
            "expected kind %r, got %r" % (expected, data.get("kind"))
        )
    if data.get("version") != FORMAT_VERSION:
        raise SerializationError(
            "unsupported format version: %r" % (data.get("version"),)
        )


def query_to_dict(query) -> Dict[str, Any]:
    """Serialize an :class:`repro.core.query.EncryptedQuery` message.

    Completes the wire format: with this and :func:`response_to_dict`
    the whole client/server protocol is JSON-transportable.
    """
    def bound_to_dict(bound):
        if bound is None:
            return None
        return {
            "eb": ciphertext_to_dict(bound.eb),
            "ev": ciphertext_to_dict(bound.ev),
        }

    return {
        "kind": "query",
        "version": FORMAT_VERSION,
        "low": bound_to_dict(query.low),
        "high": bound_to_dict(query.high),
        "low_inclusive": query.low_inclusive,
        "high_inclusive": query.high_inclusive,
        "pivots": [bound_to_dict(p) for p in query.pivots],
    }


def query_from_dict(data: Dict[str, Any]):
    """Reconstruct an encrypted query message."""
    from repro.core.query import EncryptedBound, EncryptedQuery

    _check_kind(data, "query")

    def bound_from_dict(payload):
        if payload is None:
            return None
        eb = ciphertext_from_dict(payload["eb"])
        ev = ciphertext_from_dict(payload["ev"])
        if not isinstance(eb, BoundCiphertext) or not isinstance(
            ev, ValueCiphertext
        ):
            raise SerializationError("malformed encrypted bound")
        return EncryptedBound(eb=eb, ev=ev)

    try:
        return EncryptedQuery(
            low=bound_from_dict(data["low"]),
            high=bound_from_dict(data["high"]),
            low_inclusive=bool(data["low_inclusive"]),
            high_inclusive=bool(data["high_inclusive"]),
            pivots=tuple(bound_from_dict(p) for p in data["pivots"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed query payload: %s" % exc) from exc


def response_to_dict(response) -> Dict[str, Any]:
    """Serialize a :class:`repro.core.server.ServerResponse`."""
    return {
        "kind": "response",
        "version": FORMAT_VERSION,
        "row_ids": [int(i) for i in response.row_ids],
        "rows": [ciphertext_to_dict(row) for row in response.rows],
    }


def response_from_dict(data: Dict[str, Any]):
    """Reconstruct a server response."""
    import numpy as np

    from repro.core.server import ServerResponse

    _check_kind(data, "response")
    try:
        rows = [ciphertext_from_dict(row) for row in data["rows"]]
        if not all(isinstance(row, ValueCiphertext) for row in rows):
            raise SerializationError("responses carry value rows only")
        return ServerResponse(
            row_ids=np.array([int(i) for i in data["row_ids"]], dtype=np.int64),
            rows=rows,
        )
    except (KeyError, TypeError, ValueError, OverflowError) as exc:
        # OverflowError: a fuzzed row id exceeding int64 must surface as
        # a typed serialization failure, not a raw numpy error.
        raise SerializationError(
            "malformed response payload: %s" % exc
        ) from exc
