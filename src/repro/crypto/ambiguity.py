"""Formal (Table 1) derivation of the ambiguity offset theta.

:class:`repro.crypto.scheme.Encryptor` computes theta through the
precomputed ambiguity row ``r`` — an O(l) contraction.  This module
re-derives theta literally along the paper's Section 4.2 algebra using
the structured matrices of Table 1::

    theta = (Ev . e1  -  Ev^T S W . u) / (e_l^T W . u),
    W = M^T @ Pc_{l,(l-2)} @ E_{l,(l-2)}

for the suffix variant ``(Ev; theta)``, and the mirrored expression for
the prefix variant.  It exists to cross-validate the fast path — the
faithfulness tests assert both derivations agree exactly — and to make
the paper's matrix formulation executable for readers.
"""

from __future__ import annotations

from fractions import Fraction

from repro.crypto.ciphertext import ValueCiphertext
from repro.crypto.key import SecretKey
from repro.linalg.intmat import mat_mul, mat_transpose, mat_vec
from repro.linalg.structured import (
    complementary_permutation_matrix,
    expansion_matrix,
    shift_matrix,
)
from repro.linalg.vectors import dot


def noise_contraction_matrix(key: SecretKey):
    """Return ``W @ u`` where ``W = M^T Pc E`` (paper, Section 4.2).

    ``W`` maps the secret direction ``u`` from noise-coordinate space
    into ciphertext space such that ``x . (W u) == u . noise(M x)`` for
    any ciphertext-space ``x``; it therefore equals the key's
    precomputed ``ambiguity_row``, which the faithfulness tests verify.
    """
    length = key.length
    pc = complementary_permutation_matrix(length, key.payload_positions)
    expand = expansion_matrix(length, length - 2)
    w = mat_mul(mat_mul(mat_transpose(key.matrix), pc), expand)
    return mat_vec(w, key.u)


def theta_suffix_variant(key: SecretKey, real: ValueCiphertext) -> Fraction:
    """Theta for the ``(Ev; theta)`` layout, via the paper's formula.

    The fake row is ``S^T Ev + (theta - Ev . e1) e_l`` (cyclic up-shift
    with theta replacing the wrapped-around first component); requiring
    its pre-image noise to be orthogonal to ``u`` gives

        theta = (Ev . e1) - (Ev^T S (W u)) / (e_l^T (W u)).
    """
    ev = real.numerators
    length = key.length
    wu = noise_contraction_matrix(key)
    shift = shift_matrix(length)
    # Ev^T S == (S^T Ev)^T: the cyclic up-shift (Ev[1], ..., Ev[l-1], Ev[0]).
    ev_t_s = mat_vec(mat_transpose(shift), ev)
    # The up-shift wraps Ev[0] into the last slot; the paper's formula
    # subtracts it back out (the fake row carries theta there instead).
    numerator = dot(ev_t_s, wu) - ev[0] * wu[-1]
    return Fraction(-numerator, wu[-1])


def theta_prefix_variant(key: SecretKey, real: ValueCiphertext) -> Fraction:
    """Theta for the ``(theta; Ev)`` layout (mirrored derivation).

    The fake row is ``(theta, Ev[0], ..., Ev[l-2])``; orthogonality of
    its pre-image noise to ``u`` gives
    ``theta = -(sum_{i>=1} (W u)[i] * Ev[i-1]) / (W u)[0]``.
    """
    ev = real.numerators
    wu = noise_contraction_matrix(key)
    shifted = sum(wu[i] * ev[i - 1] for i in range(1, key.length))
    return Fraction(-shifted, wu[0])
