"""The paper's indexable encryption scheme (Sections 3 and 4.2).

Public surface:

* :class:`repro.crypto.key.SecretKey` and
  :func:`repro.crypto.key.generate_key` — the total encryption key of
  Section 3.4 (unit direction ``u``, payload positions, unimodular
  matrix ``M``).
* :class:`repro.crypto.scheme.Encryptor` — the two complementary
  encryption modes ``Ev`` (values) and ``Eb`` (bounds), decryption, and
  the ambiguity layer of Section 4.2.
* :func:`repro.crypto.scheme.compare` — the server-side scalar-product
  comparison ``sign(Eb(b) . Ev(v)) == sign(v - b)``.
* :mod:`repro.crypto.attacks` — executable versions of the Section 3.5
  attack sketches.
"""

from repro.crypto.ciphertext import (
    AmbiguousCiphertext,
    BoundCiphertext,
    ValueCiphertext,
)
from repro.crypto.key import SecretKey, generate_key
from repro.crypto.opes import OpesCipher, generate_opes_key
from repro.crypto.scheme import (
    DecryptedRow,
    Encryptor,
    compare,
    generate_steerable_key,
    probe_steerable,
)

__all__ = [
    "AmbiguousCiphertext",
    "BoundCiphertext",
    "ValueCiphertext",
    "SecretKey",
    "generate_key",
    "OpesCipher",
    "generate_opes_key",
    "DecryptedRow",
    "Encryptor",
    "compare",
    "generate_steerable_key",
    "probe_steerable",
]
