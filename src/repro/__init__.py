"""Adaptive Indexing over Encrypted Numeric Data — full reproduction.

A from-scratch Python implementation of Karras, Nikitin, Saad, Bhatt,
Antyukhov & Idreos, *Adaptive Indexing over Encrypted Numeric Data*,
SIGMOD 2016: a lightweight linear-algebra encryption scheme under which
a cloud server can evaluate range and point queries and build a
cracking index *on demand*, without ever learning values or their
order up front.

Quickstart::

    from repro import OutsourcedDatabase

    db = OutsourcedDatabase([13, 16, 4, 9, 2, 12, 7, 1], seed=42)
    result = db.query(4, 12)        # one encrypted round trip
    sorted(result.values)           # -> [4, 7, 9, 12]

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.crypto` — the indexable encryption scheme (Section 3)
  and ambiguity layer (Section 4.2).
* :mod:`repro.cracking` — the database-cracking substrate
  (Section 2.2) over plaintext columns.
* :mod:`repro.core` — the secure adaptive index, SecureScan baseline,
  and the client/server sessions (Sections 4-5).
* :mod:`repro.net` — the wire seam: protocol envelopes, loopback/TCP
  transports, and the multi-column server catalog
  (``docs/protocol.md``).
* :mod:`repro.store` — the column-store substrate and update buffer.
* :mod:`repro.workloads` — datasets and query workload generators.
* :mod:`repro.analysis` — order-leakage metrics (Section 4.1).
* :mod:`repro.obs` — tracing, metrics, and leakage auditing
  (``docs/observability.md``).
* :mod:`repro.bench` — the harness regenerating every figure of the
  paper's evaluation.
"""

from repro.core import (
    ClientResult,
    OutsourcedDatabase,
    SecureAdaptiveIndex,
    SecureScan,
    SecureServer,
    TrustedClient,
)
from repro.cracking import AdaptiveIndex, FullScanIndex, FullSortIndex
from repro.crypto import Encryptor, SecretKey, generate_key
from repro.obs import Observability

__version__ = "1.0.0"

__all__ = [
    "ClientResult",
    "OutsourcedDatabase",
    "SecureAdaptiveIndex",
    "SecureScan",
    "SecureServer",
    "TrustedClient",
    "AdaptiveIndex",
    "FullScanIndex",
    "FullSortIndex",
    "Encryptor",
    "SecretKey",
    "generate_key",
    "Observability",
    "__version__",
]
