"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish configuration mistakes, cryptographic
failures, and index-state violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KeyError_(ReproError):
    """A secret key is malformed or cannot be generated.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


class KeyGenerationError(KeyError_):
    """Key generation failed (e.g. a degenerate ambiguity denominator
    persisted across the retry budget)."""


class EncryptionError(ReproError):
    """A plaintext could not be encrypted under the given key."""


class DecryptionError(ReproError):
    """A ciphertext does not decrypt to a consistent plaintext under the
    given key (wrong key, corrupted ciphertext, or a fake branch)."""


class AmbiguityError(ReproError):
    """The ambiguity layer could not produce a valid two-branch
    ciphertext (e.g. both branches decrypt to odd integers after the
    retry budget)."""


class SerializationError(ReproError):
    """A key or ciphertext could not be serialized or deserialized."""


class PersistenceError(SerializationError):
    """Durable state (a snapshot file or a WAL segment) is malformed:
    truncated beyond the tolerated torn tail, bit-flipped (CRC
    mismatch), out of sequence, or structurally invalid.  A
    :class:`SerializationError` because corrupt persisted bytes are a
    deserialization failure, but typed so recovery tooling can react to
    storage corruption specifically."""


class IndexStateError(ReproError):
    """An adaptive index invariant was violated (internal error) or an
    operation was attempted against an incompatible index state."""


class QueryError(ReproError):
    """A query is malformed (e.g. inverted bounds or an unknown
    predicate operator)."""


class UpdateError(ReproError):
    """An insert/delete could not be applied to the store."""


class ProtocolError(ReproError):
    """The client/server session protocol was violated (e.g. a response
    for an unknown query id)."""


class TransportError(ProtocolError):
    """The transport under a session failed (connection refused, timed
    out, or closed mid-exchange).  A :class:`ProtocolError` because a
    broken transport violates the session protocol, but typed so
    callers can retry connectivity failures specifically."""


class ServerBusyError(ReproError):
    """The endpoint rejected a request under load (its bounded request
    queue was full, or it is draining for shutdown).  The request was
    *never dispatched*, so retrying after a backoff is always safe —
    even for non-idempotent operations."""


class ReadOnlyError(UpdateError):
    """The endpoint is a read replica: it serves queries, fetches, and
    telemetry but refuses every mutation.  The message names the
    primary endpoint writes must go to."""


class RotationConflictError(UpdateError):
    """A ``rotate_apply`` was fenced off because the column mutated
    between ``rotate_begin`` and ``rotate_apply`` (a concurrent insert,
    delete, or merge).  The column is left intact under the old key;
    the client restarts the rotation from ``rotate_begin``."""


class AttackError(ReproError):
    """An attack simulation was configured inconsistently (not a failure
    of the attack itself — unsuccessful attacks return results)."""
