"""Pending-update buffer: graceful inserts and deletes.

The scheme must "gracefully accommodate newly arriving data values and
support updates in the encrypted data" (paper requirement 6).  The
adaptive-indexing literature handles updates with pending buffers that
are merged into the cracked column lazily (Idreos et al., *Updating a
cracked database*); this module provides the generic buffer shared by
the engines:

* inserts land in an append-only pending area, scanned per query until
  merged;
* deletes are tombstones on row ids, filtered from every result and
  physically reclaimed on merge.

The buffer is payload-agnostic: the plain engine stores integers, the
secure server stores ciphertext rows.
"""

from __future__ import annotations

from typing import Generic, List, Set, Tuple, TypeVar

from repro.errors import UpdateError

Payload = TypeVar("Payload")


class PendingUpdates(Generic[Payload]):
    """Append-only insert buffer plus a tombstone set.

    Row ids for inserted rows continue the base column's id space, so
    positional results remain unambiguous across merges.

    Args:
        next_row_id: first id to assign (the base column size).
    """

    def __init__(self, next_row_id: int) -> None:
        if next_row_id < 0:
            raise UpdateError("row ids must be non-negative")
        self._next_row_id = next_row_id
        self._pending: List[Tuple[int, Payload]] = []
        self._tombstones: Set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[Tuple[int, Payload]]:
        """Snapshot of pending ``(row_id, payload)`` inserts."""
        return list(self._pending)

    @property
    def tombstones(self) -> Set[int]:
        """Snapshot of deleted row ids."""
        return set(self._tombstones)

    @property
    def next_row_id(self) -> int:
        """The id the next insert will receive."""
        return self._next_row_id

    def insert(self, payload: Payload) -> int:
        """Buffer one new row; returns its assigned row id."""
        row_id = self._next_row_id
        self._next_row_id += 1
        self._pending.append((row_id, payload))
        return row_id

    def delete(self, row_id: int) -> None:
        """Tombstone a row id (base or pending).

        Deleting an id that was never assigned is an error; deleting
        twice is idempotent.
        """
        if row_id < 0 or row_id >= self._next_row_id:
            raise UpdateError("row id %d was never assigned" % row_id)
        self._tombstones.add(row_id)

    def is_deleted(self, row_id: int) -> bool:
        """Whether a row id is tombstoned."""
        return row_id in self._tombstones

    @classmethod
    def restore(
        cls,
        next_row_id: int,
        pending: List[Tuple[int, Payload]],
        tombstones: Set[int],
    ) -> "PendingUpdates[Payload]":
        """Rebuild a buffer from persisted state (see
        :mod:`repro.core.persistence`)."""
        buffer: PendingUpdates[Payload] = cls(next_row_id)
        buffer._pending = [(int(row_id), payload) for row_id, payload in pending]
        buffer._tombstones = {int(row_id) for row_id in tombstones}
        return buffer

    def drain(self) -> Tuple[List[Tuple[int, Payload]], Set[int]]:
        """Hand over and clear the buffered state (called by merges).

        Returns:
            ``(pending_inserts, tombstones)`` — pending inserts exclude
            rows that were inserted and deleted before any merge.
        """
        live = [
            (row_id, payload)
            for row_id, payload in self._pending
            if row_id not in self._tombstones
        ]
        tombstones = self._tombstones
        self._pending = []
        self._tombstones = set()
        return live, tombstones
