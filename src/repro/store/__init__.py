"""Minimal column-store substrate (paper, Sections 2.2 and 5).

The paper's prototype "precisely implements the select operator of a
modern column-store ... data is stored one column-at-a-time in
fixed-width dense arrays".  This package provides that substrate:

* :mod:`repro.store.select` — range predicates and the scan select
  operator shared across engines.
* :mod:`repro.store.table` — named columns, tables, positional tuple
  reconstruction, and per-column adaptive indexes.
* :mod:`repro.store.updates` — the pending-insert / tombstone buffer
  used to accommodate updates gracefully (paper requirement 6).
"""

from repro.store.select import RangePredicate, scan_select
from repro.store.table import Column, Table
from repro.store.updates import PendingUpdates

__all__ = ["RangePredicate", "scan_select", "Column", "Table", "PendingUpdates"]
