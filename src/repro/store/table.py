"""Named columns, tables, and positional tuple reconstruction.

Modern column-stores answer a selection on one attribute with a set of
positions, then *reconstruct* the remaining attributes of qualifying
tuples by positional fetches (paper, Sections 2.2 and 5).  A
:class:`Table` holds fixed-width dense :class:`Column` arrays and
supports exactly that flow; attaching an adaptive index to a column
turns its selects into cracking selects, one column at a time, without
affecting sibling columns (their arrays are addressed by the returned
base positions).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.cracking.index import AdaptiveIndex
from repro.errors import QueryError, UpdateError
from repro.store.select import RangePredicate, scan_select


class Column:
    """One fixed-width dense integer attribute."""

    def __init__(self, name: str, values) -> None:
        if not name:
            raise ValueError("column name must be non-empty")
        self.name = name
        self._values = np.array(values, dtype=np.int64).reshape(-1)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the column contents in base order."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def fetch(self, positions: np.ndarray) -> np.ndarray:
        """Positional tuple reconstruction for this attribute."""
        return self._values[np.asarray(positions, dtype=np.int64)]


class Table:
    """A set of equal-length columns addressed by base positions.

    Args:
        columns: mapping of name to array-like, all the same length.
    """

    def __init__(self, columns: Dict[str, Iterable[int]]) -> None:
        self._columns: Dict[str, Column] = {}
        self._indexes: Dict[str, AdaptiveIndex] = {}
        self._nrows: Optional[int] = None
        for name, values in columns.items():
            self.add_column(name, values)

    def __len__(self) -> int:
        return self._nrows or 0

    @property
    def column_names(self) -> List[str]:
        """Names of all columns, in insertion order."""
        return list(self._columns)

    def add_column(self, name: str, values) -> Column:
        """Add a column; length must match existing columns."""
        column = Column(name, values)
        if self._nrows is None:
            self._nrows = len(column)
        elif len(column) != self._nrows:
            raise UpdateError(
                "column %r has %d rows, table has %d"
                % (name, len(column), self._nrows)
            )
        if name in self._columns:
            raise UpdateError("column %r already exists" % name)
        self._columns[name] = column
        return column

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._columns[name]
        except KeyError:
            raise QueryError("unknown column: %r" % name) from None

    # -- adaptive indexing -------------------------------------------------

    def crack_column(self, name: str, **index_kwargs) -> AdaptiveIndex:
        """Attach (or return) an adaptive cracking index on a column.

        Subsequent :meth:`select` calls on this column run through the
        index and refine it as a side effect.
        """
        if name not in self._indexes:
            self._indexes[name] = AdaptiveIndex(
                self.column(name).values, **index_kwargs
            )
        return self._indexes[name]

    def index_for(self, name: str) -> Optional[AdaptiveIndex]:
        """The adaptive index on a column, if one was attached."""
        return self._indexes.get(name)

    # -- query processing -----------------------------------------------------

    def select(self, name: str, predicate: RangePredicate) -> np.ndarray:
        """Positions of rows whose ``name`` attribute satisfies the predicate.

        Runs through the column's adaptive index when present (cracking
        as a side effect), otherwise scans.
        """
        index = self._indexes.get(name)
        if index is None:
            return scan_select(self.column(name).values, predicate)
        return index.query(
            predicate.low,
            predicate.high,
            predicate.low_inclusive,
            predicate.high_inclusive,
        )

    def fetch(
        self, positions: np.ndarray, names: Iterable[str] = None
    ) -> Dict[str, np.ndarray]:
        """Reconstruct tuples at ``positions`` for the given columns."""
        if names is None:
            names = self.column_names
        return {name: self.column(name).fetch(positions) for name in names}
