"""Range predicates and the scan select operator.

A :class:`RangePredicate` is the normal form of every query in the
system: two bounds with independent inclusiveness.  Engines interpret
it through cracking or scalar products; this module also provides the
plain vectorised scan, the baseline interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError


@dataclass(frozen=True)
class RangePredicate:
    """A one-attribute range predicate ``low <=/< A <=/< high``.

    Point queries are the degenerate case ``low == high`` with both
    sides inclusive.
    """

    low: int
    high: int
    low_inclusive: bool = True
    high_inclusive: bool = True

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(
                "inverted range: low=%r > high=%r" % (self.low, self.high)
            )

    @classmethod
    def point(cls, value: int) -> "RangePredicate":
        """The equality predicate ``A == value``."""
        return cls(value, value, True, True)

    @property
    def is_empty(self) -> bool:
        """True when no value can satisfy the predicate."""
        return self.low == self.high and not (
            self.low_inclusive and self.high_inclusive
        )

    def contains(self, value: int) -> bool:
        """Whether a single value satisfies the predicate."""
        above = value >= self.low if self.low_inclusive else value > self.low
        below = value <= self.high if self.high_inclusive else value < self.high
        return above and below

    def mask(self, values: np.ndarray) -> np.ndarray:
        """Vectorised membership over an integer array."""
        values = np.asarray(values)
        above = values >= self.low if self.low_inclusive else values > self.low
        below = values <= self.high if self.high_inclusive else values < self.high
        return above & below

    def selectivity(self, domain_low: int, domain_high: int) -> float:
        """Fraction of a dense integer domain the predicate covers."""
        if domain_high <= domain_low:
            raise QueryError("empty domain")
        span = self.high - self.low
        span += int(self.low_inclusive) + int(self.high_inclusive) - 1
        return max(span, 0) / (domain_high - domain_low)


def scan_select(values: np.ndarray, predicate: RangePredicate) -> np.ndarray:
    """Positions of qualifying rows by a full vectorised scan."""
    return np.flatnonzero(predicate.mask(values))
