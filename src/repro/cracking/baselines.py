"""Plaintext baselines: full scan and sort-once indexing.

These bracket adaptive indexing from both sides, as in the adaptive
indexing literature the paper builds on: a full scan pays nothing up
front and a full column cost per query; a complete sort pays the whole
indexing cost on the first query (or at load time) and trivial costs
afterwards.  Cracking interpolates between the two.  The encrypted
counterpart of the scan baseline is
:class:`repro.core.secure_scan.SecureScan` (the paper's *SecureScan*);
a sort-once baseline has no encrypted counterpart — the scheme
deliberately makes server-side sorting impossible (Section 5.5).
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.cracking.index import QueryStats
from repro.errors import QueryError


class FullScanIndex:
    """No index at all: every query scans the whole column."""

    def __init__(self, values, record_stats: bool = True) -> None:
        self._values = np.array(values, dtype=np.int64).reshape(-1)
        self._record_stats = record_stats
        self.stats_log: List[QueryStats] = []

    def __len__(self) -> int:
        return len(self._values)

    def query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Return base positions of qualifying rows by scanning.

        Either bound may be None for a one-sided query.
        """
        if low is not None and high is not None and low > high:
            raise QueryError("inverted range: low=%r > high=%r" % (low, high))
        tick = time.perf_counter()
        mask = np.ones(len(self._values), dtype=bool)
        if low is not None:
            mask &= self._values >= low if low_inclusive else self._values > low
        if high is not None:
            mask &= (
                self._values <= high if high_inclusive else self._values < high
            )
        result = np.flatnonzero(mask)
        if self._record_stats:
            stats = QueryStats(scan_seconds=time.perf_counter() - tick,
                               result_count=len(result))
            self.stats_log.append(stats)
        return result

    def query_point(self, value: int) -> np.ndarray:
        """Equality query by scanning."""
        return self.query(value, value, True, True)


class FullSortIndex:
    """Sort-once baseline: complete ordering built at load time.

    The load-time sort cost is recorded in :attr:`build_seconds`; each
    query then runs two binary searches.  This is the upfront-indexing
    strategy adaptive indexing exists to avoid ("requiring neither a
    priori idle time nor a priori workload knowledge") — and the one an
    order-preserving scheme such as OPES would enable on the server,
    leaking the total order (Section 2.1).
    """

    def __init__(self, values, record_stats: bool = True) -> None:
        base = np.array(values, dtype=np.int64).reshape(-1)
        tick = time.perf_counter()
        self._order = np.argsort(base, kind="stable")
        self._sorted = base[self._order]
        self.build_seconds = time.perf_counter() - tick
        self._record_stats = record_stats
        self.stats_log: List[QueryStats] = []

    def __len__(self) -> int:
        return len(self._sorted)

    def query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Return base positions of qualifying rows via binary search.

        Either bound may be None for a one-sided query.
        """
        if low is not None and high is not None and low > high:
            raise QueryError("inverted range: low=%r > high=%r" % (low, high))
        tick = time.perf_counter()
        if low is None:
            start = 0
        else:
            start = np.searchsorted(
                self._sorted, low, side="left" if low_inclusive else "right"
            )
        if high is None:
            end = len(self._sorted)
        else:
            end = np.searchsorted(
                self._sorted, high, side="right" if high_inclusive else "left"
            )
        result = self._order[start:end].copy()
        if self._record_stats:
            stats = QueryStats(search_seconds=time.perf_counter() - tick,
                               result_count=len(result))
            self.stats_log.append(stats)
        return result

    def query_point(self, value: int) -> np.ndarray:
        """Equality query via binary search."""
        return self.query(value, value, True, True)
