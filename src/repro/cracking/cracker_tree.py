"""Piece localisation and registration over the cracker AVL tree.

These two helpers realise the paper's ``findpiece`` and ``addCrack``
procedures (Section 4.3) in comparator-generic form, so the identical
logic drives the plaintext and the encrypted engines; the encrypted
engine additionally ships a pseudocode-literal transcription in
:mod:`repro.core.encrypted_avl`, and the test-suite asserts the two
formulations always agree.

A tree node ``(key, position)`` records that a past crack partitioned
the column at ``position`` around the bound ``key``: every row before
``position`` satisfies the bound's predicate, every row from
``position`` on does not.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cracking.avl import AVLNode, AVLTree


def find_piece(tree: AVLTree, key, total_size: int) -> Tuple[int, int]:
    """Locate the piece ``[pos_lo, pos_hi)`` in which ``key`` falls.

    Equivalent to the paper's ``findpiece``: the lower bound comes from
    the largest indexed bound not exceeding ``key``, the upper bound
    from the smallest indexed bound not below it (whole column when the
    tree is empty or ``key`` lies outside the indexed range — the
    paper's Cases 1 and 2).

    For an exact match both ends collapse onto the node's position,
    which callers treat as "already indexed, nothing to crack".
    """
    pos_lo, pos_hi = 0, total_size
    floor_node = tree.floor(key)
    if floor_node is not None:
        pos_lo = floor_node.position
    ceiling_node = tree.ceiling(key)
    if ceiling_node is not None:
        pos_hi = ceiling_node.position
    return pos_lo, pos_hi


def add_crack(
    tree: AVLTree, key, position: int, total_size: int
) -> Optional[AVLNode]:
    """Register a crack ``key -> position``; return the node, or None.

    Mirrors the paper's ``addCrack``:

    * boundary positions (0 or the column size) carry no information
      and are not stored (pseudocode line 1);
    * if a node with an equal key exists, its position is refreshed
      (Case 3);
    * if the immediate neighbour bound already splits at the same
      position, no node is added — the piece between the two bounds is
      empty, so the new bound adds no discriminating power (Cases 1-2);
    * otherwise a fresh node is inserted, rebalancing as needed
      (Case 4).
    """
    if position <= 0 or position >= total_size:
        return None
    existing = tree.find(key)
    if existing is not None:
        existing.position = position
        return existing
    floor_node = tree.floor(key)
    if floor_node is not None and floor_node.position == position:
        return floor_node
    ceiling_node = tree.ceiling(key)
    if ceiling_node is not None and ceiling_node.position == position:
        return ceiling_node
    return tree.insert(key, position)
