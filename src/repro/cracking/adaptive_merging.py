"""Adaptive merging: the incremental-merge-sort flavour of adaptive
indexing.

The paper situates cracking among its siblings: "database cracking can
be validly described as an incremental quicksort, while another
alternative for adaptive indexing, adaptive merging, can be seen as an
incremental external merge sort" (Section 4.1).  This module implements
that sibling over plaintext columns, completing the family for the
cracking-vs-merging ablation:

* at load time the column is cut into ``run_count`` *sorted runs*
  (cheap: sorting R runs costs R * (n/R) log(n/R) < n log n);
* each range query binary-searches every run, *extracts* the
  qualifying rows, and merges them into the sorted *final partition*;
* data migrates from runs to the final partition exactly as fast as
  queries demand it — once a value range has been queried, it lives in
  the final partition and later queries touch only binary searches.

Adaptive merging converges in fewer queries than cracking (each range
is fully sorted after one touch) at a higher per-query cost early —
the classic trade-off, visible in ``benchmarks/bench_abl_merging.py``.

Note the security angle the paper draws from this equivalence: *any*
adaptive index tends toward sorted order, which is why the encrypted
design needs the ambiguity layer and the piece-size threshold.  An
encrypted adaptive-merging variant is impossible under the paper's
scheme precisely because the server cannot sort ciphertexts — runs
could not be built (Section 5.5); this engine is plaintext-only.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.cracking.index import QueryStats
from repro.errors import QueryError


class AdaptiveMergingIndex:
    """Incremental external merge sort, driven by queries.

    Args:
        values: the column (copied).
        run_count: number of initial sorted runs (models memory-sized
            sort batches).
        record_stats: append per-query :class:`QueryStats` to
            :attr:`stats_log` (extraction time is booked as
            ``crack_seconds`` — it is the physical-reorganisation cost
            of this method).
    """

    def __init__(self, values, run_count: int = 16, record_stats: bool = True) -> None:
        base = np.array(values, dtype=np.int64).reshape(-1)
        if run_count < 1:
            raise QueryError("need at least one run")
        tick = time.perf_counter()
        boundaries = np.linspace(0, len(base), run_count + 1).astype(int)
        self._runs: List[Tuple[np.ndarray, np.ndarray]] = []
        for lo, hi in zip(boundaries, boundaries[1:]):
            if hi <= lo:
                continue
            chunk = base[lo:hi]
            order = np.argsort(chunk, kind="stable")
            self._runs.append((chunk[order], (np.arange(lo, hi)[order])))
        self._final_values = np.empty(0, dtype=np.int64)
        self._final_positions = np.empty(0, dtype=np.int64)
        self.build_seconds = time.perf_counter() - tick
        self._record_stats = record_stats
        self.stats_log: List[QueryStats] = []

    def __len__(self) -> int:
        return len(self._final_values) + sum(len(v) for v, __ in self._runs)

    @property
    def final_partition_size(self) -> int:
        """Rows already merged into the sorted final partition."""
        return len(self._final_values)

    @property
    def run_count(self) -> int:
        """Surviving (non-empty) runs."""
        return len(self._runs)

    # -- querying -----------------------------------------------------------

    def query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Answer a range query, migrating touched rows to the final
        partition as a side effect.

        Either bound may be None for a one-sided query.  Returns base
        positions of qualifying rows.
        """
        if low is not None and high is not None and low > high:
            raise QueryError("inverted range: low=%r > high=%r" % (low, high))
        stats = QueryStats()
        tick = time.perf_counter()
        moved_values: List[np.ndarray] = []
        moved_positions: List[np.ndarray] = []
        surviving: List[Tuple[np.ndarray, np.ndarray]] = []
        for run_values, run_positions in self._runs:
            start, end = _range_slice(
                run_values, low, high, low_inclusive, high_inclusive
            )
            if end > start:
                moved_values.append(run_values[start:end])
                moved_positions.append(run_positions[start:end])
                run_values = np.delete(run_values, slice(start, end))
                run_positions = np.delete(run_positions, slice(start, end))
                stats.cracked_rows += end - start
            stats.comparisons += 2 * max(
                1, int(np.log2(len(run_values) + 2))
            )
            if len(run_values):
                surviving.append((run_values, run_positions))
        self._runs = surviving
        if moved_values:
            combined_values = np.concatenate(
                [self._final_values] + moved_values
            )
            combined_positions = np.concatenate(
                [self._final_positions] + moved_positions
            )
            order = np.argsort(combined_values, kind="stable")
            self._final_values = combined_values[order]
            self._final_positions = combined_positions[order]
        stats.crack_seconds = time.perf_counter() - tick

        tick = time.perf_counter()
        start, end = _range_slice(
            self._final_values, low, high, low_inclusive, high_inclusive
        )
        result = self._final_positions[start:end].copy()
        stats.search_seconds = time.perf_counter() - tick
        stats.result_count = len(result)
        if self._record_stats:
            self.stats_log.append(stats)
        return result

    def query_point(self, value: int) -> np.ndarray:
        """Equality query."""
        return self.query(value, value, True, True)

    # -- introspection --------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert sortedness and conservation of rows.

        Raises:
            AssertionError: on any violated invariant.
        """
        assert np.all(np.diff(self._final_values) >= 0), "final not sorted"
        for run_values, run_positions in self._runs:
            assert np.all(np.diff(run_values) >= 0), "run not sorted"
            assert len(run_values) == len(run_positions)
        all_positions = np.concatenate(
            [self._final_positions]
            + [positions for __, positions in self._runs]
        )
        assert len(np.unique(all_positions)) == len(all_positions), (
            "rows duplicated or lost"
        )


def _range_slice(sorted_values, low, high, low_inclusive, high_inclusive):
    """Half-open slice of a sorted array covered by an optional range."""
    if low is None:
        start = 0
    else:
        start = np.searchsorted(
            sorted_values, low, side="left" if low_inclusive else "right"
        )
    if high is None:
        end = len(sorted_values)
    else:
        end = np.searchsorted(
            sorted_values, high, side="right" if high_inclusive else "left"
        )
    return start, max(start, end)
