"""Database cracking substrate (paper, Section 2.2).

Self-contained adaptive-indexing machinery over *plaintext* columns —
the baseline the paper builds on — plus the pieces shared with the
encrypted engine:

* :mod:`repro.cracking.avl` — AVL tree with a pluggable comparator
  (the same tree indexes plaintext bounds and encrypted bound vectors).
* :mod:`repro.cracking.algorithms` — ``CrackInTwo`` (the paper's
  Algorithm 1), a three-way variant, and vectorised equivalents.
* :mod:`repro.cracking.cracker_tree` — the paper's ``findpiece`` and
  ``addCrack`` procedures, generic over the key comparator.
* :mod:`repro.cracking.column` / :mod:`repro.cracking.index` — the
  plaintext cracker column and adaptive index engine.
* :mod:`repro.cracking.stochastic` — random-pivot (stochastic)
  cracking, the robustness variant the paper cites.
* :mod:`repro.cracking.baselines` — full scan and sort-once baselines.
"""

from repro.cracking.adaptive_merging import AdaptiveMergingIndex
from repro.cracking.avl import AVLTree
from repro.cracking.baselines import FullScanIndex, FullSortIndex
from repro.cracking.column import CrackerColumn
from repro.cracking.index import AdaptiveIndex, QueryStats
from repro.cracking.sort_touch import SortTouchAdaptiveIndex
from repro.cracking.stochastic import StochasticAdaptiveIndex

__all__ = [
    "AdaptiveMergingIndex",
    "AVLTree",
    "CrackerColumn",
    "AdaptiveIndex",
    "QueryStats",
    "FullScanIndex",
    "FullSortIndex",
    "SortTouchAdaptiveIndex",
    "StochasticAdaptiveIndex",
]
