"""AVL tree with a pluggable key comparator.

Past adaptive-indexing work keeps track of column pieces with an
in-memory AVL tree (paper, Section 2.2: "we also need a data structure
to localize a piece of interest ... an in-memory AVL-tree"); the
encrypted design of Section 4.3 reuses the same structure with keys
compared through scalar products.  This implementation therefore takes
the comparator as a constructor argument: plaintext engines pass a
tuple comparison, the secure engine passes
``sign(Eb(new) . Ev(node))``-based comparison.

Each node maps an opaque key to an integer ``position`` (the crack
offset in the column) and keys are unique under the comparator.
Rebalancing is the classic height-balanced AVL scheme; all mutating
and searching operations are O(log n).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, TypeVar

Key = TypeVar("Key")
Comparator = Callable[[Key, Key], int]


class AVLNode:
    """One tree node: an indexed crack bound and its column position."""

    __slots__ = ("key", "position", "left", "right", "height")

    def __init__(self, key, position: int) -> None:
        self.key = key
        self.position = position
        self.left: Optional[AVLNode] = None
        self.right: Optional[AVLNode] = None
        self.height = 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "AVLNode(key=%r, position=%d)" % (self.key, self.position)


class AVLTree:
    """Height-balanced search tree over comparator-ordered opaque keys.

    Args:
        comparator: total order on keys; returns negative / zero /
            positive like C's ``strcmp``.  For the secure engine this
            is the only place encrypted bounds are ever compared to
            each other — via their double encryption (Section 4.3).
    """

    def __init__(self, comparator: Comparator) -> None:
        self._comparator = comparator
        self._root: Optional[AVLNode] = None
        self._size = 0
        #: Total key comparisons performed (cost-model instrumentation;
        #: for the secure engine each one is a scalar product).
        self.comparison_count = 0

    def _cmp(self, a, b) -> int:
        self.comparison_count += 1
        return self._comparator(a, b)

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> Optional[AVLNode]:
        """The root node (None for an empty tree)."""
        return self._root

    # -- queries ---------------------------------------------------------

    def find(self, key) -> Optional[AVLNode]:
        """Return the node with exactly this key, or None."""
        node = self._root
        while node is not None:
            sign = self._cmp(key, node.key)
            if sign == 0:
                return node
            node = node.left if sign < 0 else node.right
        return None

    def floor(self, key) -> Optional[AVLNode]:
        """Largest node with ``node.key <= key``, or None."""
        node, best = self._root, None
        while node is not None:
            sign = self._cmp(key, node.key)
            if sign == 0:
                return node
            if sign > 0:
                best = node
                node = node.right
            else:
                node = node.left
        return best

    def ceiling(self, key) -> Optional[AVLNode]:
        """Smallest node with ``node.key >= key``, or None."""
        node, best = self._root, None
        while node is not None:
            sign = self._cmp(key, node.key)
            if sign == 0:
                return node
            if sign < 0:
                best = node
                node = node.left
            else:
                node = node.right
        return best

    def min_node(self) -> Optional[AVLNode]:
        """Node with the smallest key, or None for an empty tree."""
        node = self._root
        while node is not None and node.left is not None:
            node = node.left
        return node

    def max_node(self) -> Optional[AVLNode]:
        """Node with the largest key, or None for an empty tree."""
        node = self._root
        while node is not None and node.right is not None:
            node = node.right
        return node

    def successor(self, node: AVLNode) -> Optional[AVLNode]:
        """In-order successor of ``node`` (search from the root)."""
        if node.right is not None:
            walk = node.right
            while walk.left is not None:
                walk = walk.left
            return walk
        candidate, walk = None, self._root
        while walk is not None and walk is not node:
            if self._cmp(node.key, walk.key) < 0:
                candidate = walk
                walk = walk.left
            else:
                walk = walk.right
        return candidate

    def predecessor(self, node: AVLNode) -> Optional[AVLNode]:
        """In-order predecessor of ``node`` (search from the root)."""
        if node.left is not None:
            walk = node.left
            while walk.right is not None:
                walk = walk.right
            return walk
        candidate, walk = None, self._root
        while walk is not None and walk is not node:
            if self._cmp(node.key, walk.key) > 0:
                candidate = walk
                walk = walk.right
            else:
                walk = walk.left
        return candidate

    def in_order(self) -> Iterator[AVLNode]:
        """Yield all nodes in ascending key order (iterative walk)."""
        stack: List[AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    def height(self) -> int:
        """Tree height (0 for an empty tree)."""
        return self._root.height if self._root is not None else 0

    def check_invariants(self) -> None:
        """Assert AVL balance and key ordering (used by tests).

        Raises:
            AssertionError: on any violated invariant.
        """
        keys = [node.key for node in self.in_order()]
        for a, b in zip(keys, keys[1:]):
            assert self._cmp(a, b) < 0, "in-order keys not strictly increasing"
        assert self._count(self._root) == self._size, "size drifted"
        self._check_balance(self._root)

    # -- mutation ---------------------------------------------------------

    def insert(self, key, position: int) -> AVLNode:
        """Insert ``key -> position``; update position if key exists.

        Returns the (new or existing) node.
        """
        inserted: List[AVLNode] = []
        self._root = self._insert(self._root, key, position, inserted)
        return inserted[0]

    def _insert(
        self,
        node: Optional[AVLNode],
        key,
        position: int,
        inserted: List[AVLNode],
    ) -> AVLNode:
        if node is None:
            fresh = AVLNode(key, position)
            inserted.append(fresh)
            self._size += 1
            return fresh
        sign = self._cmp(key, node.key)
        if sign == 0:
            node.position = position
            inserted.append(node)
            return node
        if sign < 0:
            node.left = self._insert(node.left, key, position, inserted)
        else:
            node.right = self._insert(node.right, key, position, inserted)
        return self._rebalance(node)

    # -- balancing ----------------------------------------------------------

    @staticmethod
    def _height(node: Optional[AVLNode]) -> int:
        return node.height if node is not None else 0

    @classmethod
    def _update_height(cls, node: AVLNode) -> None:
        node.height = 1 + max(cls._height(node.left), cls._height(node.right))

    @classmethod
    def _balance_factor(cls, node: AVLNode) -> int:
        return cls._height(node.left) - cls._height(node.right)

    @classmethod
    def _rotate_right(cls, node: AVLNode) -> AVLNode:
        pivot = node.left
        node.left = pivot.right
        pivot.right = node
        cls._update_height(node)
        cls._update_height(pivot)
        return pivot

    @classmethod
    def _rotate_left(cls, node: AVLNode) -> AVLNode:
        pivot = node.right
        node.right = pivot.left
        pivot.left = node
        cls._update_height(node)
        cls._update_height(pivot)
        return pivot

    @classmethod
    def _rebalance(cls, node: AVLNode) -> AVLNode:
        cls._update_height(node)
        balance = cls._balance_factor(node)
        if balance > 1:
            if cls._balance_factor(node.left) < 0:
                node.left = cls._rotate_left(node.left)
            return cls._rotate_right(node)
        if balance < -1:
            if cls._balance_factor(node.right) > 0:
                node.right = cls._rotate_right(node.right)
            return cls._rotate_left(node)
        return node

    # -- invariant helpers ---------------------------------------------------

    @classmethod
    def _count(cls, node: Optional[AVLNode]) -> int:
        if node is None:
            return 0
        return 1 + cls._count(node.left) + cls._count(node.right)

    @classmethod
    def _check_balance(cls, node: Optional[AVLNode]) -> int:
        if node is None:
            return 0
        left = cls._check_balance(node.left)
        right = cls._check_balance(node.right)
        assert node.height == 1 + max(left, right), "stale height"
        assert abs(left - right) <= 1, "AVL balance violated"
        return node.height
