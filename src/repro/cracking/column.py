"""Plaintext cracker column.

The paper's prototype "receives a column of values (fixed-width dense
array) as input and returns a set of positions that mark qualifying
values" (Section 5).  :class:`CrackerColumn` is that fixed-width dense
array: a numpy ``int64`` value array plus the parallel *base position*
array recording where each tuple lived in the original column — the
cracker-index copy of Figure 1 ("the original column A (including
positions) is copied into a cracker index column, which is then
continuously reorganized").
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cracking.algorithms import (
    crack_in_two,
    partition_order,
    three_way_partition_order,
)
from repro.errors import IndexStateError


class CrackerColumn:
    """A dense value column physically reorganised by cracking.

    Args:
        values: one-dimensional integer array-like; copied.
        use_inplace_algorithm: route cracks through the
            pointer-faithful Algorithm 1 instead of the vectorised
            partition (slower; used by fidelity tests).
    """

    def __init__(self, values, use_inplace_algorithm: bool = False) -> None:
        self._values = np.array(values, dtype=np.int64).reshape(-1)
        self._positions = np.arange(len(self._values), dtype=np.int64)
        self._use_inplace = use_inplace_algorithm

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The current physical value order (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def positions(self) -> np.ndarray:
        """Base positions parallel to :attr:`values` (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    # -- cracking -----------------------------------------------------------

    def crack(self, piece_lo: int, piece_hi: int, bound: int, inclusive: bool) -> int:
        """Reorganise ``[piece_lo, piece_hi)`` around ``bound``.

        After the call, rows with ``value < bound`` (``<= bound`` when
        ``inclusive``) occupy ``[piece_lo, split)`` and the rest
        ``[split, piece_hi)``.

        Returns:
            The split position.
        """
        self._check_range(piece_lo, piece_hi)
        if self._use_inplace:
            return self._crack_inplace(piece_lo, piece_hi, bound, inclusive)
        chunk = self._values[piece_lo:piece_hi]
        mask = chunk <= bound if inclusive else chunk < bound
        order = partition_order(mask)
        self._values[piece_lo:piece_hi] = chunk[order]
        self._positions[piece_lo:piece_hi] = self._positions[piece_lo:piece_hi][order]
        return piece_lo + int(np.count_nonzero(mask))

    def _crack_inplace(
        self, piece_lo: int, piece_hi: int, bound: int, inclusive: bool
    ) -> int:
        """Algorithm 1 path: converging cursors with tuple exchanges."""
        values, positions = self._values, self._positions

        if inclusive:
            def belongs_left(i: int) -> bool:
                return values[i] <= bound
        else:
            def belongs_left(i: int) -> bool:
                return values[i] < bound

        def swap(i: int, j: int) -> None:
            values[i], values[j] = values[j], values[i]
            positions[i], positions[j] = positions[j], positions[i]

        return crack_in_two(belongs_left, swap, piece_lo, piece_hi - 1)

    def crack_three(
        self,
        piece_lo: int,
        piece_hi: int,
        low: int,
        low_inclusive: bool,
        high: int,
        high_inclusive: bool,
    ) -> Tuple[int, int]:
        """Three-way reorganisation of ``[piece_lo, piece_hi)`` in one pass.

        Region 0 holds rows below the range (failing the ``low`` side),
        region 1 rows inside ``[low, high]`` (respecting inclusiveness),
        region 2 rows above.  Realises the paper's split-into-three
        optimisation for a two-sided predicate landing in one piece.

        Returns:
            ``(split0, split1)``: the range rows occupy
            ``[split0, split1)``.
        """
        self._check_range(piece_lo, piece_hi)
        chunk = self._values[piece_lo:piece_hi]
        below = chunk < low if low_inclusive else chunk <= low
        above = chunk > high if high_inclusive else chunk >= high
        regions = np.where(below, 0, np.where(above, 2, 1))
        order, count0, count01 = three_way_partition_order(regions)
        self._values[piece_lo:piece_hi] = chunk[order]
        self._positions[piece_lo:piece_hi] = self._positions[piece_lo:piece_hi][order]
        return piece_lo + count0, piece_lo + count01

    # -- scans ----------------------------------------------------------------

    def scan_positions(
        self,
        piece_lo: int,
        piece_hi: int,
        low: int = None,
        low_inclusive: bool = True,
        high: int = None,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Base positions of rows in ``[piece_lo, piece_hi)`` within range.

        ``low`` / ``high`` of None mean unbounded on that side.  Used
        for edge pieces below the cracking threshold (Section 2.2:
        "when a piece becomes small enough ... we scan the data at
        virtually no overhead").
        """
        self._check_range(piece_lo, piece_hi)
        chunk = self._values[piece_lo:piece_hi]
        mask = np.ones(len(chunk), dtype=bool)
        if low is not None:
            mask &= chunk >= low if low_inclusive else chunk > low
        if high is not None:
            mask &= chunk <= high if high_inclusive else chunk < high
        return self._positions[piece_lo:piece_hi][mask]

    def positions_in(self, piece_lo: int, piece_hi: int) -> np.ndarray:
        """Base positions of every row in ``[piece_lo, piece_hi)``."""
        self._check_range(piece_lo, piece_hi)
        return self._positions[piece_lo:piece_hi].copy()

    # -- verification -------------------------------------------------------

    def check_partition(self, split: int, bound: int, inclusive: bool,
                        piece_lo: int = 0, piece_hi: int = None) -> bool:
        """Whether ``[piece_lo, split)`` / ``[split, piece_hi)`` respects ``bound``."""
        if piece_hi is None:
            piece_hi = len(self)
        left = self._values[piece_lo:split]
        right = self._values[split:piece_hi]
        if inclusive:
            return bool(np.all(left <= bound) and np.all(right > bound))
        return bool(np.all(left < bound) and np.all(right >= bound))

    def _check_range(self, piece_lo: int, piece_hi: int) -> None:
        if not 0 <= piece_lo <= piece_hi <= len(self):
            raise IndexStateError(
                "piece [%d, %d) out of bounds for column of size %d"
                % (piece_lo, piece_hi, len(self))
            )
