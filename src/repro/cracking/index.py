"""Plaintext adaptive index: cracking select operator + AVL cracker tree.

This is the paper's baseline system (Section 2.2): a select operator
that answers a range query *and*, as a side effect, physically
reorganises the touched pieces and refines the AVL cracker index.  The
"Plain" curves of Figures 6-8 and 11 are produced by this engine; the
secure engine of :mod:`repro.core.secure_index` mirrors its structure
with encrypted comparisons.

Query semantics: ``query(low, high, low_inclusive, high_inclusive)``
returns the *base positions* (original row ids) of qualifying tuples —
the column-store select interface of Section 5 ("returns a set of
positions that mark qualifying values").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.cracking.avl import AVLTree
from repro.cracking.column import CrackerColumn
from repro.cracking.cracker_tree import add_crack, find_piece
from repro.errors import QueryError
from repro.obs import Observability

#: Tree key: (bound, inclusive).  Node semantics: every row before the
#: node's position satisfies ``value < bound`` (inclusive=False) or
#: ``value <= bound`` (inclusive=True).  Lexicographic tuple order
#: (False < True) matches predicate-set inclusion over the integers.
BoundKey = Tuple[int, bool]


def _compare_bound_keys(a: BoundKey, b: BoundKey) -> int:
    """Total order on plaintext bound keys."""
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


@dataclass
class QueryStats:
    """Per-query cost breakdown (Figures 8-10 report these series).

    Attributes:
        search_seconds: time locating pieces in the AVL tree.
        crack_seconds: time physically reorganising column pieces.
        insert_seconds: time adding crack bounds to the tree
            (including rebalancing).
        scan_seconds: time scanning sub-threshold edge pieces.
        result_count: number of qualifying rows returned.
        cracked_rows: rows physically touched by cracking.
        cracks: number of crack operations performed (0-2, or 1 for a
            three-way crack).
        comparisons: predicate evaluations performed (cost model —
            machine-independent; for the secure engine each one is a
            scalar product): one per row classified by a crack, two per
            row filtered by a two-sided scan, one per AVL key
            comparison.
        kernel_fast_products: scalar products served by the int64 fast
            path of :mod:`repro.linalg.kernels` (secure engines only;
            0 for plaintext engines).
        kernel_exact_products: scalar products that fell back to the
            exact big-int path.
        product_cache_hits: scalar products reused from the per-query
            :class:`~repro.linalg.kernels.ProductCache` instead of
            being recomputed.
    """

    search_seconds: float = 0.0
    crack_seconds: float = 0.0
    insert_seconds: float = 0.0
    scan_seconds: float = 0.0
    result_count: int = 0
    cracked_rows: int = 0
    cracks: int = 0
    comparisons: int = 0
    kernel_fast_products: int = 0
    kernel_exact_products: int = 0
    product_cache_hits: int = 0

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded phases."""
        return (
            self.search_seconds
            + self.crack_seconds
            + self.insert_seconds
            + self.scan_seconds
        )


#: QueryStats field -> metrics-registry counter fed by that field.
#: ``kernel_fast_products`` / ``kernel_exact_products`` are absent on
#: purpose: their events originate inside the scalar-product kernel
#: (:class:`repro.linalg.kernels.KernelCounters` bound to the same
#: registry), and the stats fields are *derived from* those counters —
#: forwarding them again would double-count.
STATS_METRIC_OF_FIELD = {
    "search_seconds": "query.search_seconds",
    "crack_seconds": "query.crack_seconds",
    "insert_seconds": "query.insert_seconds",
    "scan_seconds": "query.scan_seconds",
    "result_count": "query.result_rows",
    "cracked_rows": "query.cracked_rows",
    "cracks": "query.cracks",
    "comparisons": "query.comparisons",
    "product_cache_hits": "kernel.cache_hits",
}

#: Metric names whose per-query registry delta defines a query's
#: :class:`QueryStats` (the acceptance contract tested in
#: ``tests/test_obs_integration.py``).
QUERY_METRIC_NAMES = tuple(STATS_METRIC_OF_FIELD.values()) + (
    "kernel.fast_products",
    "kernel.exact_products",
)


class MeteredQueryStats(QueryStats):
    """A :class:`QueryStats` that is a view over metric events.

    Every mutation of a mapped field forwards its delta to the bound
    :class:`repro.obs.metrics.MetricsRegistry`, so the per-query stats
    object and the registry are written by the *same* statement and can
    never drift.  Engines (and their subclasses — stochastic cracking,
    sort-touch) keep mutating plain dataclass fields; the forwarding is
    transparent.
    """

    def __init__(self, metrics) -> None:
        object.__setattr__(self, "_counters", {
            field: metrics.counter(name)
            for field, name in STATS_METRIC_OF_FIELD.items()
        })
        super().__init__()

    def __setattr__(self, name, value):
        counter = self._counters.get(name)
        if counter is not None:
            delta = value - getattr(self, name, 0)
            if delta:
                counter.add(delta)
        object.__setattr__(self, name, value)


@dataclass
class _BoundResolution:
    """Where a query bound landed: an exact position or a raw piece."""

    position: Optional[int] = None
    piece: Optional[Tuple[int, int]] = None

    @property
    def is_exact(self) -> bool:
        return self.position is not None


class AdaptiveIndex:
    """Self-organising cracking index over a plaintext integer column.

    Args:
        values: the column (copied).
        min_piece_size: pieces at or below this size are scanned rather
            than cracked (Section 2.2's cache-size threshold — also the
            mechanism that keeps the index from ever leaking a total
            order).  1 means "always crack".
        use_three_way: crack with one three-way pass when both query
            bounds land in the same piece (instead of two two-way
            cracks).
        record_stats: append a :class:`QueryStats` to :attr:`stats_log`
            for every query.
        obs: observability bundle (tracing spans + metrics); a private
            one is created when omitted.  Metric counters are always
            recorded (stats objects are materialised from them);
            ``record_stats`` only controls the :attr:`stats_log`.
    """

    def __init__(
        self,
        values,
        min_piece_size: int = 1,
        use_three_way: bool = False,
        record_stats: bool = True,
        obs: Observability = None,
    ) -> None:
        self._column = CrackerColumn(values)
        self._tree = AVLTree(_compare_bound_keys)
        self._min_piece = max(1, int(min_piece_size))
        self._use_three_way = use_three_way
        self._record_stats = record_stats
        self._obs = obs if obs is not None else Observability()
        self.stats_log: List[QueryStats] = []

    @property
    def obs(self) -> Observability:
        """The engine's observability bundle."""
        return self._obs

    def __len__(self) -> int:
        return len(self._column)

    @property
    def column(self) -> CrackerColumn:
        """The underlying cracker column (read access for analysis)."""
        return self._column

    @property
    def tree(self) -> AVLTree:
        """The AVL cracker index (read access for analysis)."""
        return self._tree

    # -- querying -------------------------------------------------------------

    def query(
        self,
        low: int = None,
        high: int = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Answer a range query, cracking touched pieces as a side effect.

        Either bound may be None for a one-sided query (``A <= high`` /
        ``A >= low``), which cracks at most one piece.  Returns the
        base positions of qualifying rows (unordered).

        Raises:
            QueryError: if ``low > high``.
        """
        if low is not None and high is not None and low > high:
            raise QueryError("inverted range: low=%r > high=%r" % (low, high))
        stats = MeteredQueryStats(self._obs.metrics)
        tree_comparisons_before = self._tree.comparison_count
        # The crack separating non-qualifying low rows: rows with
        # v < low (inclusive query) or v <= low (exclusive query).
        left_key: BoundKey = None if low is None else (low, not low_inclusive)
        # The crack whose left side is the qualifying high side.
        right_key: BoundKey = None if high is None else (high, high_inclusive)
        with self._obs.span("query", engine="plain-adaptive"):
            result = self._execute(left_key, right_key, low, high,
                                   low_inclusive, high_inclusive, stats)
        stats.result_count = len(result)
        stats.comparisons += (
            self._tree.comparison_count - tree_comparisons_before
        )
        metrics = self._obs.metrics
        metrics.observe("query.cracks_per_query", stats.cracks)
        metrics.set("index.avl_depth", self._tree.height())
        metrics.set("index.pieces", len(self._tree) + 1)
        if self._record_stats:
            self.stats_log.append(stats)
        return result

    def query_point(self, value: int) -> np.ndarray:
        """Answer an equality query (``A == value``)."""
        return self.query(value, value, True, True)

    # -- internals -------------------------------------------------------------

    def _execute(
        self,
        left_key: BoundKey,
        right_key: BoundKey,
        low: int,
        high: int,
        low_inclusive: bool,
        high_inclusive: bool,
        stats: QueryStats,
    ) -> np.ndarray:
        size = len(self._column)
        if size == 0:
            return np.empty(0, dtype=np.int64)
        if self._use_three_way and left_key is not None and right_key is not None:
            three_way = self._try_three_way(left_key, right_key, stats)
            if three_way is not None:
                return self._column.positions_in(*three_way)
        if left_key is None:
            left = _BoundResolution(position=0)
        else:
            left = self._resolve(left_key, stats)
        if right_key is None:
            right = _BoundResolution(position=size)
        else:
            right = self._resolve(right_key, stats)
        scan_args = dict(
            low=low,
            low_inclusive=low_inclusive,
            high=high,
            high_inclusive=high_inclusive,
        )
        if (
            not left.is_exact
            and not right.is_exact
            and left.piece == right.piece
        ):
            return self._timed_scan(left.piece, scan_args, stats)
        segments: List[np.ndarray] = []
        if left.is_exact:
            start = left.position
        else:
            start = left.piece[1]
            segments.append(self._timed_scan(left.piece, scan_args, stats))
        if right.is_exact:
            end = right.position
        else:
            end = right.piece[0]
            # Scanned below, after the contiguous middle.
        if start < end:
            segments.append(self._column.positions_in(start, end))
        if not right.is_exact:
            segments.append(self._timed_scan(right.piece, scan_args, stats))
        if not segments:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(segments)

    def _resolve(self, key: BoundKey, stats: QueryStats) -> _BoundResolution:
        """Find the exact crack position for ``key``, cracking if needed."""
        size = len(self._column)
        tick = time.perf_counter()
        with self._obs.span("find-piece"):
            node = self._tree.find(key)
            if node is None:
                piece_lo, piece_hi = find_piece(self._tree, key, size)
        stats.search_seconds += time.perf_counter() - tick
        if node is not None:
            return _BoundResolution(position=node.position)
        if piece_hi - piece_lo <= self._min_piece:
            return _BoundResolution(piece=(piece_lo, piece_hi))
        bound, inclusive = key
        tick = time.perf_counter()
        with self._obs.span("crack", lo=piece_lo, hi=piece_hi,
                            rows=piece_hi - piece_lo):
            split = self._column.crack(piece_lo, piece_hi, bound, inclusive)
        stats.crack_seconds += time.perf_counter() - tick
        stats.cracked_rows += piece_hi - piece_lo
        stats.cracks += 1
        stats.comparisons += piece_hi - piece_lo
        self._obs.metrics.observe("index.piece_rows", piece_hi - piece_lo)
        tick = time.perf_counter()
        with self._obs.span("insert-bound", position=split):
            add_crack(self._tree, key, split, size)
        stats.insert_seconds += time.perf_counter() - tick
        return _BoundResolution(position=split)

    def _try_three_way(
        self, left_key: BoundKey, right_key: BoundKey, stats: QueryStats
    ) -> Optional[Tuple[int, int]]:
        """One-pass three-way crack when both bounds share a raw piece.

        Returns the qualifying physical range on success, None when the
        preconditions fail (either bound already indexed, different
        pieces, or the piece is below the cracking threshold).
        """
        size = len(self._column)
        tick = time.perf_counter()
        left_known = self._tree.find(left_key) is not None
        right_known = self._tree.find(right_key) is not None
        left_piece = find_piece(self._tree, left_key, size)
        right_piece = find_piece(self._tree, right_key, size)
        stats.search_seconds += time.perf_counter() - tick
        if left_known or right_known or left_piece != right_piece:
            return None
        piece_lo, piece_hi = left_piece
        if piece_hi - piece_lo <= self._min_piece:
            return None
        tick = time.perf_counter()
        with self._obs.span("crack", lo=piece_lo, hi=piece_hi,
                            rows=piece_hi - piece_lo, three_way=True):
            split0, split1 = self._column.crack_three(
                piece_lo,
                piece_hi,
                left_key[0],
                not left_key[1],
                right_key[0],
                right_key[1],
            )
        stats.crack_seconds += time.perf_counter() - tick
        stats.cracked_rows += piece_hi - piece_lo
        stats.cracks += 1
        stats.comparisons += 2 * (piece_hi - piece_lo)
        self._obs.metrics.observe("index.piece_rows", piece_hi - piece_lo)
        tick = time.perf_counter()
        with self._obs.span("insert-bound", position=split0):
            add_crack(self._tree, left_key, split0, size)
        with self._obs.span("insert-bound", position=split1):
            add_crack(self._tree, right_key, split1, size)
        stats.insert_seconds += time.perf_counter() - tick
        return split0, split1

    def _timed_scan(self, piece, scan_args, stats: QueryStats) -> np.ndarray:
        tick = time.perf_counter()
        with self._obs.span("edge-scan", lo=piece[0], hi=piece[1]):
            result = self._column.scan_positions(piece[0], piece[1], **scan_args)
        stats.scan_seconds += time.perf_counter() - tick
        sides = (scan_args.get("low") is not None) + (
            scan_args.get("high") is not None
        )
        stats.comparisons += sides * (piece[1] - piece[0])
        return result

    # -- introspection ----------------------------------------------------------

    def piece_boundaries(self) -> List[int]:
        """Sorted crack positions, including the column ends.

        Consecutive entries delimit the current pieces; the leakage
        analysis of Section 4.1 works from this structure.
        """
        positions = sorted({node.position for node in self._tree.in_order()})
        return [0] + positions + [len(self._column)]

    def check_invariants(self) -> None:
        """Assert every indexed crack still partitions the column.

        Raises:
            AssertionError: on any violated cracking invariant.
        """
        self._tree.check_invariants()
        values = self._column.values
        for node in self._tree.in_order():
            bound, inclusive = node.key
            left = values[: node.position]
            right = values[node.position:]
            if inclusive:
                assert np.all(left <= bound), "left side violates <= bound"
                assert np.all(right > bound), "right side violates > bound"
            else:
                assert np.all(left < bound), "left side violates < bound"
                assert np.all(right >= bound), "right side violates >= bound"
