"""Hybrid cracking: fully sort small pieces when first touched.

Among the cracking variants the paper enumerates (Section 2.2):
"numerous algorithms have been proposed that split a piece ... fully
sorting pieces when touched for the first time" — the hybrid-crack-sort
family.  Sorting a touched piece costs ``n log n`` once, after which
every bound that lands in it resolves by binary search with *zero*
physical movement, so convergence inside hot regions is immediate.

The security contrast is the interesting part for this paper: a sorted
piece leaks its *entire internal order*, which is exactly what the
plain cracking design avoids by scanning sub-threshold pieces instead
(and why the encrypted engine has no sort-touch variant at all — the
server cannot sort ciphertexts, Section 5.5).  The leakage ablation
quantifies the difference.

Implementation notes: a sorted piece's sub-pieces are sorted too, so
sortedness is tracked as a set of disjoint intervals that refine
naturally as cracks land inside them; cracks within a sorted interval
are ``searchsorted`` lookups and move nothing.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro.cracking.cracker_tree import add_crack
from repro.cracking.index import AdaptiveIndex, BoundKey, QueryStats, _BoundResolution


class SortTouchAdaptiveIndex(AdaptiveIndex):
    """Cracking that fully sorts pieces at or below ``sort_threshold``.

    Pieces larger than the threshold crack normally; once a crack or a
    bound lands in a piece at or below it, the piece is sorted in place
    and remembered, and all further bounds inside it resolve by binary
    search.

    Args:
        values: the column (copied).
        sort_threshold: pieces of at most this many rows are sorted on
            first touch.  Must be >= 2.
        **kwargs: forwarded to :class:`AdaptiveIndex` (``min_piece_size``
            is forced to 1 — the sort threshold replaces it).
    """

    def __init__(self, values, sort_threshold: int = 4096, **kwargs) -> None:
        if sort_threshold < 2:
            raise ValueError("sort threshold must be at least 2")
        kwargs.pop("min_piece_size", None)
        super().__init__(values, min_piece_size=1, **kwargs)
        self._sort_threshold = sort_threshold
        #: Disjoint, sorted [lo, hi) intervals known to be sorted.
        self._sorted_ranges: List[Tuple[int, int]] = []

    @property
    def sorted_row_count(self) -> int:
        """Rows currently inside fully sorted intervals."""
        return sum(hi - lo for lo, hi in self._sorted_ranges)

    def _resolve(self, key: BoundKey, stats: QueryStats) -> _BoundResolution:
        from repro.cracking.cracker_tree import find_piece

        size = len(self._column)
        tick = time.perf_counter()
        node = self._tree.find(key)
        if node is None:
            piece_lo, piece_hi = find_piece(self._tree, key, size)
        stats.search_seconds += time.perf_counter() - tick
        if node is not None:
            return _BoundResolution(position=node.position)

        bound, inclusive = key
        sorted_range = self._containing_sorted_range(piece_lo, piece_hi)
        if sorted_range is None and piece_hi - piece_lo <= self._sort_threshold:
            tick = time.perf_counter()
            self._sort_piece(piece_lo, piece_hi)
            stats.crack_seconds += time.perf_counter() - tick
            stats.cracked_rows += piece_hi - piece_lo
            stats.comparisons += piece_hi - piece_lo  # ~n log n, order-of
            sorted_range = (piece_lo, piece_hi)

        tick = time.perf_counter()
        if sorted_range is not None:
            side = "right" if inclusive else "left"
            values = self._column.values
            split = piece_lo + int(
                np.searchsorted(values[piece_lo:piece_hi], bound, side=side)
            )
            stats.search_seconds += time.perf_counter() - tick
        else:
            split = self._column.crack(piece_lo, piece_hi, bound, inclusive)
            stats.crack_seconds += time.perf_counter() - tick
            stats.cracked_rows += piece_hi - piece_lo
            stats.cracks += 1
            stats.comparisons += piece_hi - piece_lo
        tick = time.perf_counter()
        add_crack(self._tree, key, split, size)
        stats.insert_seconds += time.perf_counter() - tick
        return _BoundResolution(position=split)

    def _sort_piece(self, piece_lo: int, piece_hi: int) -> None:
        """Sort one piece in place (values and base positions together)."""
        values = self._column._values
        positions = self._column._positions
        order = np.argsort(values[piece_lo:piece_hi], kind="stable")
        values[piece_lo:piece_hi] = values[piece_lo:piece_hi][order]
        positions[piece_lo:piece_hi] = positions[piece_lo:piece_hi][order]
        self._sorted_ranges.append((piece_lo, piece_hi))
        self._sorted_ranges.sort()

    def _containing_sorted_range(self, piece_lo: int, piece_hi: int):
        """The sorted interval containing ``[piece_lo, piece_hi)``, if any."""
        for lo, hi in self._sorted_ranges:
            if lo <= piece_lo and piece_hi <= hi:
                return (lo, hi)
        return None

    def check_invariants(self) -> None:
        """Base invariants plus sortedness of recorded intervals."""
        super().check_invariants()
        values = self._column.values
        for lo, hi in self._sorted_ranges:
            assert np.all(np.diff(values[lo:hi]) >= 0), (
                "sorted range [%d, %d) is not sorted" % (lo, hi)
            )
