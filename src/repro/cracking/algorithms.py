"""Core cracking algorithms (paper, Algorithm 1 and Section 2.2).

Two families are provided:

* *Pointer-faithful* in-place procedures (:func:`crack_in_two`,
  :func:`crack_in_three`) that mirror the paper's Algorithm 1: two
  converging cursors exchanging misplaced tuples, touching each element
  at most a constant number of times.  They are generic over *how* an
  element is classified (a plaintext comparison or an encrypted scalar
  product) and *how* two rows are exchanged, so the same code cracks
  plain and encrypted columns.

* *Vectorised* helpers (:func:`partition_order`,
  :func:`three_way_partition_order`) that compute the stable
  permutation realising the same partition from a boolean mask /
  region labels.  Plain columns use these on the numpy fast path; the
  tests assert both families produce equivalent partitions.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

Predicate = Callable[[int], bool]
RegionOf = Callable[[int], int]
Swap = Callable[[int, int], None]


def crack_in_two(
    belongs_left: Predicate,
    swap: Swap,
    pos_lo: int,
    pos_hi: int,
) -> int:
    """Partition ``[pos_lo, pos_hi]`` (inclusive) in place; return the split.

    Faithful transcription of the paper's Algorithm 1
    (``CrackInTwo``): cursor ``x1`` walks right over elements already
    on the correct (left) side, cursor ``x2`` walks left over elements
    already on the correct (right) side, and misplaced pairs are
    exchanged.  ``belongs_left(i)`` classifies the element *currently*
    at index ``i`` (e.g. ``value < med`` — the paper's ``phi_1``; its
    negation is ``phi_2``).

    Returns:
        The first index of the right-hand partition: elements at
        indices ``< split`` satisfy ``belongs_left``; elements at
        ``>= split`` (up to ``pos_hi``) do not.
    """
    if pos_hi < pos_lo:
        return pos_lo
    x1, x2 = pos_lo, pos_hi
    while x1 < x2:
        if belongs_left(x1):
            x1 += 1
        else:
            while not belongs_left(x2) and x2 > x1:
                x2 -= 1
            swap(x1, x2)
            x1 += 1
            x2 -= 1
    # Loop invariant: indices < x1 belong left, indices > x2 belong
    # right.  Termination leaves three shapes (see the analysis in the
    # tests): cursors met on one unexamined element, crossed by one, or
    # crossed by two after a degenerate self-exchange.
    if x1 == x2:
        return x1 + 1 if belongs_left(x1) else x1
    if x1 == x2 + 2:
        return x1 - 1
    return x1


def crack_in_three(
    region_of: RegionOf,
    swap: Swap,
    pos_lo: int,
    pos_hi: int,
) -> Tuple[int, int]:
    """Three-way partition of ``[pos_lo, pos_hi]`` (inclusive), in place.

    Single-pass Dutch-national-flag sweep: ``region_of(i)`` classifies
    the element currently at ``i`` into region 0 (below the range),
    1 (inside), or 2 (above).  This realises the paper's "split a piece
    of a column into three pieces" optimisation for two-sided range
    predicates in one pass instead of two ``crack_in_two`` calls.

    Returns:
        ``(split0, split1)``: region 0 occupies ``[pos_lo, split0)``,
        region 1 ``[split0, split1)``, region 2 ``[split1, pos_hi]``.
    """
    low, mid, high = pos_lo, pos_lo, pos_hi
    while mid <= high:
        region = region_of(mid)
        if region == 0:
            swap(low, mid)
            low += 1
            mid += 1
        elif region == 1:
            mid += 1
        elif region == 2:
            swap(mid, high)
            high -= 1
        else:
            raise ValueError("region_of must return 0, 1, or 2, got %r" % region)
    return low, mid


def partition_order(mask: np.ndarray) -> np.ndarray:
    """Stable permutation putting True-mask elements first.

    Vectorised counterpart of :func:`crack_in_two`: applying the
    returned index array to a slice realises the same two-way partition
    (stably, which the in-place version is not — only the *partition*
    is contractual, not the intra-piece order).
    """
    mask = np.asarray(mask, dtype=bool)
    return np.concatenate(
        (np.flatnonzero(mask), np.flatnonzero(~mask))
    )


def three_way_partition_order(regions: np.ndarray) -> Tuple[np.ndarray, int, int]:
    """Stable permutation grouping region labels 0, 1, 2 in order.

    Returns:
        ``(order, count0, count01)`` where ``count0`` elements belong
        to region 0 and ``count01`` to regions 0 and 1 combined.
    """
    regions = np.asarray(regions)
    order = np.argsort(regions, kind="stable")
    count0 = int(np.count_nonzero(regions == 0))
    count01 = count0 + int(np.count_nonzero(regions == 1))
    return order, count0, count01
