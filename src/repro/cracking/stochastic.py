"""Stochastic cracking: random-pivot reorganisation (DDR-style).

Plain query-bound cracking degenerates on adversarial workloads — a
sequential sweep of bounds shaves one thin slice off an enormous piece
per query, keeping per-query cost high for a long time.  Stochastic
cracking (Halim et al., cited as [20] by the paper) restores robustness
by also cracking oversized pieces at *random* pivots drawn from the
data, so piece sizes shrink geometrically regardless of the workload.

:class:`StochasticAdaptiveIndex` implements the DDR (data-driven
random) flavour on top of the plaintext engine: before the query-bound
crack, the piece containing the bound is repeatedly split at a random
resident value until it falls under ``ddr_piece_limit``; each auxiliary
split is registered in the cracker tree like any other crack.

The encrypted engine takes the client-assisted variant instead (the
server cannot invent pivots it can compare — Section 5.5: data "can be
sorted only in a query-triggered manner, relying on encrypted pivot
values provided by the client"); see
``repro.core.session.OutsourcedDatabase(jitter_pivots=...)``.
"""

from __future__ import annotations

import random
import time
from typing import Tuple

from repro.cracking.cracker_tree import add_crack, find_piece
from repro.cracking.index import AdaptiveIndex, BoundKey, QueryStats, _BoundResolution


class StochasticAdaptiveIndex(AdaptiveIndex):
    """DDR-style stochastic cracking over a plaintext column.

    Args:
        values: the column (copied).
        ddr_piece_limit: auxiliary random cracks are applied while the
            piece containing a query bound exceeds this many rows.
        seed: randomness for pivot selection.
        **kwargs: forwarded to :class:`AdaptiveIndex`.
    """

    def __init__(
        self,
        values,
        ddr_piece_limit: int = 4096,
        seed: int = None,
        **kwargs,
    ) -> None:
        super().__init__(values, **kwargs)
        if ddr_piece_limit < 2:
            raise ValueError("ddr_piece_limit must be at least 2")
        self._ddr_piece_limit = ddr_piece_limit
        self._pivot_rng = random.Random(seed)

    def _resolve(self, key: BoundKey, stats: QueryStats) -> _BoundResolution:
        """Shrink the target piece with random pivots, then defer to base."""
        self._random_shrink(key, stats)
        return super()._resolve(key, stats)

    def _random_shrink(self, key: BoundKey, stats: QueryStats) -> None:
        size = len(self._column)
        while True:
            if self._tree.find(key) is not None:
                return
            piece_lo, piece_hi = find_piece(self._tree, key, size)
            if piece_hi - piece_lo <= self._ddr_piece_limit:
                return
            pivot_key = self._draw_pivot(piece_lo, piece_hi)
            if pivot_key is None or self._tree.find(pivot_key) is not None:
                return
            tick = time.perf_counter()
            split = self._column.crack(piece_lo, piece_hi, pivot_key[0], pivot_key[1])
            stats.crack_seconds += time.perf_counter() - tick
            stats.cracked_rows += piece_hi - piece_lo
            stats.cracks += 1
            if split in (piece_lo, piece_hi):
                # Degenerate pivot (piece is constant-valued); stop.
                return
            tick = time.perf_counter()
            add_crack(self._tree, pivot_key, split, size)
            stats.insert_seconds += time.perf_counter() - tick

    def _draw_pivot(self, piece_lo: int, piece_hi: int) -> Tuple[int, bool]:
        """Pick a random resident value of the piece as a strict bound."""
        if piece_hi <= piece_lo:
            return None
        index = self._pivot_rng.randrange(piece_lo, piece_hi)
        pivot_value = int(self._column.values[index])
        return (pivot_value, False)
