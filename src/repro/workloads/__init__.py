"""Datasets and query workload generators (paper, Section 5).

* :mod:`repro.workloads.datasets` — the paper's data: "unique
  integers, drawn uniformly at random from [0, 2^31)", plus skewed and
  clustered variants for robustness experiments.
* :mod:`repro.workloads.generators` — query sequences: the default
  "50K random selection queries with selectivity 1%", the Figure 13
  selectivity ladder, and adversarial patterns (sequential, zoom-in,
  skewed) from the adaptive-indexing literature.
"""

from repro.workloads.datasets import (
    unique_uniform,
    uniform_with_duplicates,
    zipfian,
    clustered,
)
from repro.workloads.generators import (
    RangeQuery,
    random_workload,
    selectivity_ladder_workload,
    sequential_workload,
    zoom_workload,
    skewed_workload,
    point_workload,
)

__all__ = [
    "unique_uniform",
    "uniform_with_duplicates",
    "zipfian",
    "clustered",
    "RangeQuery",
    "random_workload",
    "selectivity_ladder_workload",
    "sequential_workload",
    "zoom_workload",
    "skewed_workload",
    "point_workload",
]
