"""Workload traces: persist and replay query sequences.

Reproducibility plumbing: a workload generated once (or captured from
a production log) can be saved as JSON and replayed bit-identically
against any engine or session — the moral equivalent of the paper
fixing "a sequence of 50K random selection queries" for every
experiment.  The CLI's ``query --workload`` flag replays a trace file.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.errors import QueryError
from repro.workloads.generators import RangeQuery

TRACE_VERSION = 1


def workload_to_json(queries: Sequence[RangeQuery]) -> str:
    """Serialize a query sequence to a JSON string."""
    return json.dumps(
        {
            "kind": "workload",
            "version": TRACE_VERSION,
            "queries": [
                {
                    "low": query.low,
                    "high": query.high,
                    "low_inclusive": query.low_inclusive,
                    "high_inclusive": query.high_inclusive,
                }
                for query in queries
            ],
        },
        separators=(",", ":"),
    )


def workload_from_json(text: str) -> List[RangeQuery]:
    """Parse a workload trace.

    Raises:
        QueryError: on malformed traces (wrong kind/version/fields).
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise QueryError("invalid workload trace: %s" % exc) from exc
    if not isinstance(data, dict) or data.get("kind") != "workload":
        raise QueryError("not a workload trace")
    if data.get("version") != TRACE_VERSION:
        raise QueryError(
            "unsupported trace version: %r" % (data.get("version"),)
        )
    queries: List[RangeQuery] = []
    try:
        for entry in data["queries"]:
            queries.append(
                RangeQuery(
                    low=int(entry["low"]),
                    high=int(entry["high"]),
                    low_inclusive=bool(entry["low_inclusive"]),
                    high_inclusive=bool(entry["high_inclusive"]),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise QueryError("malformed workload trace: %s" % exc) from exc
    return queries


def save_workload(queries: Sequence[RangeQuery], path: str) -> None:
    """Write a trace file."""
    with open(path, "w") as handle:
        handle.write(workload_to_json(queries) + "\n")


def load_workload(path: str) -> List[RangeQuery]:
    """Read a trace file."""
    with open(path) as handle:
        return workload_from_json(handle.read())
