"""Query workload generators.

The paper's default workload is "a sequence of 50K random selection
queries with selectivity 1%; such workloads have been shown to be
representatively challenging in terms of index adaptation" (Section 5),
and its client-side experiment uses "1K random range queries of
increasing selectivity from 0.1% upwards in geometric progress (0.1%,
0.3%, 0.9%, 2.7%, 8.1%) ... each group of 200 queries obtains a new
selectivity value" (Section 5.4).  Both are reproduced here, alongside
the adversarial patterns (sequential sweep, periodic zoom, skew) that
the stochastic-cracking ablation needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class RangeQuery:
    """One range query, in plaintext form (clients encrypt it)."""

    low: int
    high: int
    low_inclusive: bool = True
    high_inclusive: bool = True

    def as_args(self) -> Tuple[int, int, bool, bool]:
        """Positional arguments for every engine's ``query`` method."""
        return self.low, self.high, self.low_inclusive, self.high_inclusive


def _span_for_selectivity(domain: Tuple[int, int], selectivity: float) -> int:
    low, high = domain
    if high <= low:
        raise ValueError("empty domain")
    if not 0 < selectivity <= 1:
        raise ValueError("selectivity must be in (0, 1]")
    return max(1, int((high - low) * selectivity))


def random_workload(
    count: int,
    domain: Tuple[int, int],
    selectivity: float = 0.01,
    seed: int = None,
) -> List[RangeQuery]:
    """The paper's default: uniform random ranges of fixed selectivity."""
    rng = random.Random(seed)
    span = _span_for_selectivity(domain, selectivity)
    low, high = domain
    queries = []
    for _ in range(count):
        start = rng.randrange(low, max(low + 1, high - span))
        queries.append(RangeQuery(start, start + span))
    return queries


def selectivity_ladder_workload(
    domain: Tuple[int, int],
    selectivities: Sequence[float] = (0.001, 0.003, 0.009, 0.027, 0.081),
    queries_per_group: int = 200,
    seed: int = None,
) -> List[RangeQuery]:
    """Section 5.4's ladder: geometric selectivities, grouped queries."""
    rng = random.Random(seed)
    low, high = domain
    queries = []
    for selectivity in selectivities:
        span = _span_for_selectivity(domain, selectivity)
        for _ in range(queries_per_group):
            start = rng.randrange(low, max(low + 1, high - span))
            queries.append(RangeQuery(start, start + span))
    return queries


def sequential_workload(
    count: int,
    domain: Tuple[int, int],
    selectivity: float = 0.01,
) -> List[RangeQuery]:
    """Adversarial sweep: consecutive ranges marching across the domain.

    Plain cracking shaves one thin slice off a huge piece per query
    under this pattern — the workload stochastic cracking exists for.
    """
    span = _span_for_selectivity(domain, selectivity)
    low, high = domain
    queries = []
    start = low
    for _ in range(count):
        queries.append(RangeQuery(start, start + span))
        start += span
        if start + span >= high:
            start = low
    return queries


def zoom_workload(
    count: int,
    domain: Tuple[int, int],
    levels: int = 8,
) -> List[RangeQuery]:
    """Periodic zoom-in: repeatedly halve the queried range around the centre."""
    low, high = domain
    queries = []
    current_low, current_high = low, high
    level = 0
    for _ in range(count):
        queries.append(RangeQuery(current_low, current_high))
        mid = (current_low + current_high) // 2
        quarter = max(1, (current_high - current_low) // 4)
        current_low, current_high = mid - quarter, mid + quarter
        level += 1
        if level >= levels or current_high - current_low <= 2:
            current_low, current_high = low, high
            level = 0
    return queries


def skewed_workload(
    count: int,
    domain: Tuple[int, int],
    selectivity: float = 0.01,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    seed: int = None,
) -> List[RangeQuery]:
    """Hot/cold workload: most queries hit a small hot region.

    Adaptive indexing's home turf — only the hot region gets indexed
    ("only those data which are queried get indexed").
    """
    if not 0 < hot_fraction <= 1 or not 0 <= hot_probability <= 1:
        raise ValueError("fractions must be in (0, 1]")
    rng = random.Random(seed)
    span = _span_for_selectivity(domain, selectivity)
    low, high = domain
    hot_high = low + max(span + 1, int((high - low) * hot_fraction))
    queries = []
    for _ in range(count):
        if rng.random() < hot_probability:
            region_low, region_high = low, min(hot_high, high)
        else:
            region_low, region_high = low, high
        start = rng.randrange(region_low, max(region_low + 1, region_high - span))
        queries.append(RangeQuery(start, start + span))
    return queries


def point_workload(
    count: int,
    values: Sequence[int],
    seed: int = None,
) -> List[RangeQuery]:
    """Equality queries over values drawn from the dataset itself."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        value = int(values[rng.randrange(len(values))])
        queries.append(RangeQuery(value, value, True, True))
    return queries
