"""Dataset generators.

The paper's experiments use "unique integers, drawn uniformly at
random from [0, 2^31)" (Section 5); :func:`unique_uniform` reproduces
that.  The other generators provide the distributions the adaptive
indexing literature stresses robustness against (duplicates, skew,
pre-clustered runs).
"""

from __future__ import annotations

import numpy as np

#: The paper's data domain: [0, 2^31).
PAPER_DOMAIN = (0, 2 ** 31)


def unique_uniform(
    size: int,
    domain=PAPER_DOMAIN,
    seed: int = None,
) -> np.ndarray:
    """Unique integers drawn uniformly from ``[domain[0], domain[1])``.

    The paper's dataset.  Raises when the domain cannot supply ``size``
    distinct values.
    """
    low, high = domain
    if high - low < size:
        raise ValueError("domain too small for %d unique values" % size)
    rng = np.random.default_rng(seed)
    if high - low == size:
        values = np.arange(low, high, dtype=np.int64)
        rng.shuffle(values)
        return values
    # Rejection-free: sample with margin, drop duplicates, top up.
    values = np.unique(rng.integers(low, high, size=int(size * 1.2) + 16))
    while len(values) < size:
        extra = rng.integers(low, high, size=size)
        values = np.unique(np.concatenate((values, extra)))
    values = values[:size].astype(np.int64)
    rng.shuffle(values)
    return values


def uniform_with_duplicates(
    size: int,
    distinct: int,
    domain=PAPER_DOMAIN,
    seed: int = None,
) -> np.ndarray:
    """Uniform draws over a small distinct-value pool (heavy duplicates)."""
    if distinct < 1:
        raise ValueError("need at least one distinct value")
    rng = np.random.default_rng(seed)
    pool = unique_uniform(distinct, domain, seed)
    return pool[rng.integers(0, distinct, size=size)].astype(np.int64)


def zipfian(
    size: int,
    exponent: float = 1.2,
    distinct: int = 1024,
    domain=PAPER_DOMAIN,
    seed: int = None,
) -> np.ndarray:
    """Zipf-skewed frequencies over a uniform distinct-value pool."""
    if exponent <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    rng = np.random.default_rng(seed)
    pool = unique_uniform(distinct, domain, seed)
    ranks = rng.zipf(exponent, size=size)
    ranks = np.minimum(ranks, distinct) - 1
    return pool[ranks].astype(np.int64)


def clustered(
    size: int,
    runs: int = 16,
    domain=PAPER_DOMAIN,
    seed: int = None,
) -> np.ndarray:
    """Piecewise-sorted data: ``runs`` pre-sorted segments, shuffled order.

    Models data arriving in sorted batches (e.g. daily financial feeds
    from the paper's motivating scenario).
    """
    if runs < 1:
        raise ValueError("need at least one run")
    values = np.sort(unique_uniform(size, domain, seed))
    rng = np.random.default_rng(None if seed is None else seed + 1)
    boundaries = np.linspace(0, size, runs + 1).astype(int)
    segments = [values[boundaries[i]:boundaries[i + 1]] for i in range(runs)]
    rng.shuffle(segments)
    return np.concatenate(segments).astype(np.int64)
