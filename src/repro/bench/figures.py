"""Per-figure experiment builders (paper, Section 5).

Each ``figure*`` / ``ablation*`` function reproduces one plot of the
paper's evaluation at a configurable (default: laptop-friendly) scale
and returns the plotted series as plain data structures; the
``benchmarks/`` targets render and persist them.  Scales are uniformly
smaller than the paper's 1M-32M rows / 50K queries (pure-Python
constant factors), with the geometric structure preserved — see
DESIGN.md's substitution notes.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.harness import (
    QueryTrace,
    build_plain_engine,
    build_session,
    run_plain_sequence,
    run_session_sequence,
)
from repro.analysis.entropy import (
    ambiguous_rank_entropy,
    residual_rank_entropy,
)
from repro.analysis.leakage import (
    ambiguous_resolved_order_fraction,
    piece_index_per_row,
    resolved_order_fraction,
)
from repro.crypto.attacks import (
    BoundRecoveryAttack,
    ValueRecoveryAttack,
    pairs_needed_to_break,
    recover_payload_positions,
)
from repro.crypto.key import generate_key
from repro.crypto.scheme import Encryptor
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import (
    random_workload,
    selectivity_ladder_workload,
    sequential_workload,
)

#: Data domain used by the scaled experiments.  The paper draws values
#: from [0, 2^31); the scaled default keeps that domain (selectivity is
#: relative, so the span adapts).
DOMAIN = (0, 2 ** 31)


def run_grid(
    sizes: Sequence[int],
    data_kinds: Sequence[str],
    query_count: int,
    selectivity: float = 0.01,
    seed: int = 0,
    session_kwargs: Dict = None,
) -> Dict[Tuple[str, int], QueryTrace]:
    """Replay the default workload over a (data kind x size) grid.

    The shared driver behind Figures 6-11: every cell runs the paper's
    default workload (random ranges, fixed selectivity) on a fresh
    engine over fresh uniform unique data.
    """
    session_kwargs = dict(session_kwargs or {})
    traces: Dict[Tuple[str, int], QueryTrace] = {}
    for size in sizes:
        values = unique_uniform(size, DOMAIN, seed=seed)
        queries = random_workload(
            query_count, DOMAIN, selectivity=selectivity, seed=seed + 1
        )
        for kind in data_kinds:
            if kind == "plain":
                tick = time.perf_counter()
                engine = build_plain_engine(values)
                build_seconds = time.perf_counter() - tick
                trace = run_plain_sequence(engine, queries)
                trace.build_seconds = build_seconds
            else:
                session = build_session(values, kind, seed=seed, **session_kwargs)
                trace = run_session_sequence(session, queries)
                trace.build_seconds = session.build_seconds
            traces[(kind, size)] = trace
    return traces


def figure6_cumulative(
    sizes: Sequence[int] = (1000, 2000, 4000, 8000, 16000, 32000),
    query_count: int = 300,
    data_kinds: Sequence[str] = ("plain", "encrypted", "ambiguous", "securescan"),
    selectivity: float = 0.01,
    seed: int = 0,
) -> Dict[Tuple[str, int], QueryTrace]:
    """Figures 6a-6f: cumulative response time per data type and size.

    The paper plots the first 30 queries (6a-6c) and the full sequence
    (6d-6f) for sizes 1M-32M; the scaled ladder keeps the x2 geometric
    progression.  SecureScan appears as the dashed reference.
    """
    return run_grid(sizes, data_kinds, query_count, selectivity, seed)


def figure12_key_size(
    key_lengths: Sequence[int] = (4, 8, 16, 32, 64),
    size: int = 10000,
    query_count: int = 200,
    selectivity: float = 0.01,
    seed: int = 0,
) -> Dict[int, QueryTrace]:
    """Figure 12: per-query cost of the encrypted engine vs key size ``l``.

    The paper uses 10M rows and reports response time rising
    proportionally with ``l`` for early queries and the effect fading
    as the index converges.
    """
    values = unique_uniform(size, DOMAIN, seed=seed)
    queries = random_workload(query_count, DOMAIN, selectivity, seed=seed + 1)
    traces: Dict[int, QueryTrace] = {}
    for length in key_lengths:
        session = build_session(
            values, "encrypted", seed=seed, key_length=length
        )
        traces[length] = run_session_sequence(session, queries)
    return traces


def figure13_client(
    size: int = 10000,
    selectivities: Sequence[float] = (0.001, 0.003, 0.009, 0.027, 0.081),
    queries_per_group: int = 40,
    seed: int = 0,
) -> Dict[str, QueryTrace]:
    """Figure 13: client-side FPR and decrypt+filter runtime.

    The paper runs 1K queries over 10M rows in five selectivity groups
    (0.1% .. 8.1%, geometric), comparing encrypted vs encrypted with
    ambiguity; FPR hovers around 50% regardless of selectivity and the
    ambiguity decrypt cost is about double.
    """
    values = unique_uniform(size, DOMAIN, seed=seed)
    queries = selectivity_ladder_workload(
        DOMAIN, selectivities, queries_per_group, seed=seed + 1
    )
    results: Dict[str, QueryTrace] = {}
    for kind in ("encrypted", "ambiguous"):
        session = build_session(values, kind, seed=seed)
        results[kind] = run_session_sequence(session, queries)
    return results


def ablation_attacks(
    key_lengths: Sequence[int] = (3, 4, 6, 8, 12, 16),
    observations: int = 8,
    seed: int = 0,
) -> List[Dict]:
    """Ablation 1-2: the Section 3.5 attacks, executed.

    For each key size: (a) the known-ciphertext attack on the noise
    layer (pre-matrix vectors) — hypotheses tried (``C(l,2)``, the
    paper's polynomial bound) and whether the payload positions were
    uniquely recovered; (b) the known-plaintext bound-recovery attack —
    pairs needed before the functional decrypts 20 fresh bounds exactly
    (constant ~3, stronger than the paper's sketch); (c) the
    known-plaintext *value*-recovery attack — pairs needed before the
    ratio functional decrypts 20 fresh values (``O(l)``, the paper's
    count).
    """
    rng = random.Random(seed)
    rows: List[Dict] = []
    for length in key_lengths:
        key = generate_key(length, seed=seed + length)
        encryptor = Encryptor(key, seed=seed + length + 1)
        observed = []
        for _ in range(observations):
            bound = rng.randrange(0, 2 ** 31)
            value = rng.randrange(0, 2 ** 31)
            observed.append(
                (
                    encryptor.bound_pre_image(encryptor.encrypt_bound(bound)),
                    encryptor.pre_image(encryptor.encrypt_value(value))[0],
                )
            )
        noise_attack = recover_payload_positions(observed)
        noise_correct = (
            noise_attack.unique
            and set(noise_attack.consistent_hypotheses[0])
            == set(key.payload_positions)
        )
        bound_holdout = [
            (b, encryptor.encrypt_bound(b))
            for b in (rng.randrange(0, 2 ** 31) for _ in range(20))
        ]
        bound_pairs = pairs_needed_to_break(
            BoundRecoveryAttack(),
            (
                (b, encryptor.encrypt_bound(b))
                for b in iter(lambda: rng.randrange(0, 2 ** 31), None)
            ),
            bound_holdout,
            limit=4 * length + 8,
        )
        value_holdout = [
            (v, encryptor.encrypt_value(v))
            for v in (rng.randrange(0, 2 ** 31) for _ in range(20))
        ]
        value_pairs = pairs_needed_to_break(
            ValueRecoveryAttack(),
            (
                (v, encryptor.encrypt_value(v))
                for v in iter(lambda: rng.randrange(0, 2 ** 31), None)
            ),
            value_holdout,
            limit=4 * length + 8,
        )
        rows.append(
            {
                "key_length": length,
                "noise_hypotheses": noise_attack.hypotheses_tested,
                "noise_positions_recovered": noise_correct,
                "bound_pairs_to_break": bound_pairs,
                "value_pairs_to_break": value_pairs,
            }
        )
    return rows


def ablation_leakage(
    size: int = 3000,
    query_count: int = 400,
    checkpoints: Sequence[int] = (1, 5, 10, 25, 50, 100, 200, 400),
    min_piece_size: int = 1,
    seed: int = 0,
) -> Dict[str, List[Tuple[int, float]]]:
    """Ablation 3: order leakage by structure over the query sequence.

    Tracks the resolved-order fraction (Section 4.1) for the encrypted
    engine, and — with ambiguity — the fraction of *logical* record
    pairs an adversary can still resolve (Section 4.2's defence).
    """
    values = unique_uniform(size, DOMAIN, seed=seed)
    queries = random_workload(query_count, DOMAIN, 0.01, seed=seed + 1)
    checkpoints = sorted(set(checkpoints))
    series: Dict[str, List[Tuple[int, float]]] = {
        "encrypted_physical": [],
        "ambiguous_physical": [],
        "ambiguous_logical": [],
        "encrypted_entropy_bits": [],
        "ambiguous_targeted_entropy_bits": [],
    }
    for kind in ("encrypted", "ambiguous"):
        session = build_session(
            values, kind, seed=seed, min_piece_size=min_piece_size
        )
        engine = session.server.engine
        total = len(engine)
        for count, query in enumerate(queries, start=1):
            session.query(*query.as_args())
            if count not in checkpoints:
                continue
            boundaries = engine.piece_boundaries()
            physical = resolved_order_fraction(boundaries, total)
            series["%s_physical" % kind].append((count, physical))
            if kind == "encrypted":
                series["encrypted_entropy_bits"].append(
                    (count, residual_rank_entropy(boundaries, total))
                )
            if kind == "ambiguous":
                pieces = piece_index_per_row(boundaries, total)
                ids = engine.column.row_ids
                position_of = {int(rid): pos for pos, rid in enumerate(ids)}
                per_logical = {
                    logical: (2 * logical, 2 * logical + 1)
                    for logical in range(size)
                }
                logical = ambiguous_resolved_order_fraction(
                    pieces, per_logical, position_of,
                    sample_pairs=4000, seed=seed,
                )
                series["ambiguous_logical"].append((count, logical))
                series["ambiguous_targeted_entropy_bits"].append(
                    (
                        count,
                        ambiguous_rank_entropy(
                            boundaries, total, per_logical, position_of
                        ),
                    )
                )
    return series


def ablation_threshold(
    size: int = 20000,
    thresholds: Sequence[int] = (1, 64, 256, 1024, 4096),
    query_count: int = 300,
    seed: int = 0,
) -> Dict[int, Dict[str, float]]:
    """Ablation 4: the piece-size cracking threshold (Section 2.2).

    Larger thresholds stop cracking earlier (bounded leakage, fewer
    tree nodes) at the cost of scanning edge pieces; the paper argues
    the threshold "can be bigger (e.g., L3 cache size) without a
    significant performance drop".
    """
    values = unique_uniform(size, DOMAIN, seed=seed)
    queries = random_workload(query_count, DOMAIN, 0.01, seed=seed + 1)
    out: Dict[int, Dict[str, float]] = {}
    for threshold in thresholds:
        engine = build_plain_engine(values, min_piece_size=threshold)
        trace = run_plain_sequence(engine, queries)
        boundaries = engine.piece_boundaries()
        out[threshold] = {
            "total_seconds": trace.total_seconds(),
            "tree_nodes": float(len(engine.tree)),
            "resolved_order_fraction": resolved_order_fraction(
                boundaries, len(engine)
            ),
        }
    return out


def ablation_stochastic(
    size: int = 20000,
    query_count: int = 300,
    seed: int = 0,
) -> Dict[str, QueryTrace]:
    """Ablation 5: stochastic vs query-bound cracking on a hostile sweep.

    A sequential workload makes plain cracking shave one slice per
    query; DDR-style random pivots (and, on the encrypted side,
    client-supplied jitter pivots) restore geometric convergence.
    """
    values = unique_uniform(size, DOMAIN, seed=seed)
    queries = sequential_workload(query_count, DOMAIN, 0.01)
    out: Dict[str, QueryTrace] = {}
    out["plain_cracking"] = run_plain_sequence(
        build_plain_engine(values), queries
    )
    out["plain_stochastic"] = run_plain_sequence(
        build_plain_engine(
            values, kind="stochastic", ddr_piece_limit=max(64, size // 16),
            seed=seed,
        ),
        queries,
    )
    session = build_session(values, "encrypted", seed=seed)
    out["encrypted_cracking"] = run_session_sequence(session, queries)
    jitter_session = build_session(
        values, "encrypted", seed=seed, jitter_pivots=1
    )
    out["encrypted_jitter"] = run_session_sequence(jitter_session, queries)
    return out
