"""Fixed-width text rendering and persistence of benchmark results.

The paper presents its evaluation as log-scale plots; this repository
renders the same series as aligned text tables (one row per sampled
query index, one column per configuration) so results diff cleanly and
live in version control.  ``save_report`` drops each figure's rendering
under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

import numpy as np

#: Default directory benchmark reports are written to, relative to the
#: repository root (created on demand).
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [_format_cell(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return "%.3e" % value
        return "%.4f" % value
    return str(value)


def sample_indices(length: int, samples: int) -> List[int]:
    """Roughly log-spaced sample points over a query sequence."""
    if length <= samples:
        return list(range(length))
    points = np.unique(
        np.geomspace(1, length, samples).astype(int) - 1
    )
    return sorted(set(points.tolist()) | {0, length - 1})


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[int],
    columns: Dict[str, Sequence[float]],
    samples: int = 24,
) -> str:
    """Render several aligned series sampled at common x positions.

    Args:
        title: section heading.
        x_label: name of the x axis (e.g. ``"query"``).
        xs: x values (e.g. 1-based query indices).
        columns: mapping of column name to y series, all as long as
            ``xs``.
        samples: number of (log-spaced) x positions to print.
    """
    xs = list(xs)
    picked = sample_indices(len(xs), samples)
    headers = [x_label] + list(columns)
    rows = []
    for index in picked:
        row = [xs[index]]
        for name in columns:
            series = columns[name]
            row.append(series[index] if index < len(series) else "")
        rows.append(row)
    return "%s\n%s" % (title, format_table(headers, rows))


def save_report(name: str, content: str, directory: str = None) -> str:
    """Persist a rendered report under ``benchmarks/results/``.

    Returns the written path.
    """
    directory = directory or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        handle.write(content.rstrip() + "\n")
    return path


def save_obs_artifacts(name: str, obs, directory: str = None) -> List[str]:
    """Persist a run's observability next to its ``BENCH_*`` report.

    Writes ``<name>.metrics.json`` (the registry snapshot) and, when
    the tracer recorded any spans, ``<name>.trace.jsonl``.  Returns the
    written paths.  These are the artifacts CI uploads from the
    observability smoke benchmark.
    """
    directory = directory or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    paths = []
    metrics_path = os.path.join(directory, "%s.metrics.json" % name)
    with open(metrics_path, "w") as handle:
        json.dump(obs.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    paths.append(metrics_path)
    if obs.tracer.spans:
        trace_path = os.path.join(directory, "%s.trace.jsonl" % name)
        obs.tracer.dump_jsonl(trace_path)
        paths.append(trace_path)
    return paths


def ascii_chart(
    title: str,
    xs: Sequence[float],
    columns: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    log_y: bool = True,
    log_x: bool = True,
) -> str:
    """Render series as a log-log ASCII chart (the paper plots log-log).

    Each series gets a marker letter; overlapping points show the later
    series' marker.  Non-positive values are skipped under log scaling.
    Meant for eyeballing shapes in terminals and text reports — the
    aligned tables carry the exact numbers.
    """
    import math

    def transform(value: float, logarithmic: bool) -> float:
        return math.log10(value) if logarithmic else float(value)

    points = []  # (x_t, y_t, marker)
    markers = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for series_index, (name, ys) in enumerate(columns.items()):
        marker = markers[series_index % len(markers)]
        legend.append("%s = %s" % (marker, name))
        for x, y in zip(xs, ys):
            if log_y and (y is None or y <= 0):
                continue
            if log_x and (x is None or x <= 0):
                continue
            points.append((transform(x, log_x), transform(y, log_y), marker))
    if not points:
        return "%s\n(no plottable points)" % title
    x_values = [p[0] for p in points]
    y_values = [p[1] for p in points]
    x_min, x_max = min(x_values), max(x_values)
    y_min, y_max = min(y_values), max(y_values)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x_t, y_t, marker in points:
        column = int((x_t - x_min) / x_span * (width - 1))
        row = height - 1 - int((y_t - y_min) / y_span * (height - 1))
        grid[row][column] = marker
    y_top = 10 ** y_max if log_y else y_max
    y_bottom = 10 ** y_min if log_y else y_min
    lines = [title]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = "%10.3g |" % y_top
        elif row_index == height - 1:
            label = "%10.3g |" % y_bottom
        else:
            label = "           |"
        lines.append(label + "".join(row))
    x_left = 10 ** x_min if log_x else x_min
    x_right = 10 ** x_max if log_x else x_max
    lines.append("           +" + "-" * width)
    lines.append(
        "            %-10.4g%s%10.4g" % (x_left, " " * (width - 20), x_right)
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
