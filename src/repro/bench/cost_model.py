"""Analytic cost model for cracking convergence, validated by counters.

Cracking's amortisation has a clean first-order analysis (it is an
incremental quicksort with query bounds as pivots, paper §4.1): after
``k`` uniformly random cuts of an ``N``-row column, a uniformly random
new bound lands in a piece of expected size ``2N / (k + 2)`` — pieces
are size-biased: a random *point* falls into large pieces
proportionally to their size, and the expectation works out to twice
the average piece size.

A two-sided query issues two cracks, so before query ``q`` (1-based)
there are ``k = 2(q - 1)`` cuts and the expected rows classified by
query ``q`` is approximately::

    crack_comparisons(q) ~ 2 * 2N / (2q)  =  2N / q

(the second bound's piece is conditioned on the first crack; at this
order of approximation the correction is absorbed into the constant).
Summing gives a harmonic cumulative cost ``~ 2N ln(q)`` — the
"flattening" of Figure 6 is literally the harmonic series' slowdown.

Because the engines count comparisons exactly (machine-independent),
the model is *testable*: ``measure_against_model`` replays a workload
and returns measured vs predicted series, and the benchmark asserts
they track within a constant band.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.cracking.index import AdaptiveIndex
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import random_workload


def expected_piece_count(query_count: int) -> int:
    """Pieces after ``q`` two-sided queries: at most ``2q + 1``.

    "As queries are being processed, the adaptive index of a column is
    continuously split into more (and thus smaller) pieces" — each
    query adds at most two cuts (fewer once bounds repeat or coincide).
    """
    if query_count < 0:
        raise ValueError("query count must be non-negative")
    return 2 * query_count + 1


def expected_crack_comparisons(column_size: int, query_number: int) -> float:
    """Expected rows classified by cracking in query ``q`` (1-based)."""
    if query_number < 1:
        raise ValueError("query numbers are 1-based")
    return 2.0 * column_size / query_number


def expected_cumulative_comparisons(column_size: int, query_count: int) -> float:
    """Harmonic cumulative crack cost after ``q`` queries.

    ``sum_{i=1..q} 2N/i = 2N * H_q ~ 2N (ln q + gamma)``.
    """
    harmonic = sum(1.0 / i for i in range(1, query_count + 1))
    return 2.0 * column_size * harmonic


def convergence_horizon(column_size: int, piece_limit: int) -> int:
    """Queries until the *average* piece is below ``piece_limit``.

    With ``2q + 1`` pieces averaging ``N / (2q + 1)`` rows, the average
    drops under the limit at ``q ~ (N / piece_limit - 1) / 2``.  Past
    this point a threshold-configured engine mostly scans.
    """
    if piece_limit < 1:
        raise ValueError("piece limit must be positive")
    return max(0, math.ceil((column_size / piece_limit - 1) / 2))


def measure_against_model(
    column_size: int = 20000,
    query_count: int = 200,
    selectivity: float = 0.01,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Replay the default workload; return measured vs predicted series.

    Returns:
        Dict with 1-based ``query`` indices, exact ``measured`` crack
        comparisons per query (from the engine's counters), and the
        ``predicted`` ``2N/q`` series.
    """
    values = unique_uniform(column_size, seed=seed)
    queries = random_workload(
        query_count, (0, 2 ** 31), selectivity=selectivity, seed=seed + 1
    )
    engine = AdaptiveIndex(values)
    for query in queries:
        engine.query(*query.as_args())
    measured = [float(stats.cracked_rows) for stats in engine.stats_log]
    predicted = [
        expected_crack_comparisons(column_size, q)
        for q in range(1, query_count + 1)
    ]
    return {
        "query": list(range(1, query_count + 1)),
        "measured": measured,
        "predicted": predicted,
    }


def model_accuracy(series: Dict[str, List[float]], window: int = 10) -> float:
    """Median of |log2(measured / predicted)| over window-averaged points.

    0 means perfect; 1 means within a factor of two on (geometric)
    average.  Window-averaging removes the heavy per-query variance of
    the size-biased piece draw.
    """
    measured = np.asarray(series["measured"], dtype=float)
    predicted = np.asarray(series["predicted"], dtype=float)
    count = (len(measured) // window) * window
    if count == 0:
        raise ValueError("need at least one full window")
    measured_avg = measured[:count].reshape(-1, window).mean(axis=1)
    predicted_avg = predicted[:count].reshape(-1, window).mean(axis=1)
    keep = measured_avg > 0
    ratios = measured_avg[keep] / predicted_avg[keep]
    if not len(ratios):
        return float("inf")
    return float(np.median(np.abs(np.log2(ratios))))
