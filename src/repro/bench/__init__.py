"""Benchmark harness regenerating the paper's evaluation (Section 5).

* :mod:`repro.bench.harness` — run a query sequence against any engine
  and collect per-query wall-clock plus the crack/search/insert/scan
  breakdown and client-side costs.
* :mod:`repro.bench.figures` — one builder per paper figure
  (Figures 6-13) plus the ablations listed in DESIGN.md, each returning
  the plotted series as plain data.
* :mod:`repro.bench.reporting` — fixed-width text rendering of those
  series (the repository's stand-in for the paper's plots) and result
  persistence.
"""

from repro.bench.cost_model import (
    expected_crack_comparisons,
    expected_cumulative_comparisons,
    measure_against_model,
    model_accuracy,
)
from repro.bench.harness import (
    QueryTrace,
    build_plain_engine,
    build_session,
    run_plain_sequence,
    run_session_sequence,
)
from repro.bench.reporting import (
    ascii_chart,
    format_series,
    format_table,
    save_report,
)

__all__ = [
    "expected_crack_comparisons",
    "expected_cumulative_comparisons",
    "measure_against_model",
    "model_accuracy",
    "QueryTrace",
    "build_plain_engine",
    "build_session",
    "run_plain_sequence",
    "run_session_sequence",
    "ascii_chart",
    "format_table",
    "format_series",
    "save_report",
]
