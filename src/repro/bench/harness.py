"""Timing harness: drive a query sequence, collect per-query costs.

The paper's core experiments "run a query sequence that incrementally
reorganizes a single column, and observe performance as the sequence
evolves" (Section 5) over three data types — plain, encrypted, and
encrypted with ambiguity — plus the SecureScan baseline.
:func:`build_session` constructs any of the four;
:func:`run_plain_sequence` / :func:`run_session_sequence` produce a
:class:`QueryTrace` with everything Figures 6-13 plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.session import OutsourcedDatabase
from repro.cracking.index import AdaptiveIndex
from repro.cracking.baselines import FullScanIndex, FullSortIndex
from repro.cracking.stochastic import StochasticAdaptiveIndex
from repro.workloads.generators import RangeQuery

#: The data types of the paper's evaluation.
DATA_KINDS = ("plain", "encrypted", "ambiguous", "securescan")


@dataclass
class QueryTrace:
    """Everything measured while replaying one workload.

    Attributes:
        seconds: end-to-end wall-clock per query (server view for
            plain engines; server + protocol for sessions).
        crack_seconds / search_seconds / insert_seconds / scan_seconds:
            the per-operation breakdown of Figures 8-10.
        result_counts: rows returned per query.
        client_seconds: client decrypt-and-filter time per query
            (sessions only; Figure 13b).
        false_positive_rates: per-query FPR (sessions only;
            Figure 13a).
        build_seconds: one-off setup cost (encryption + upload for
            sessions, sort for the sort baseline).
    """

    seconds: List[float] = field(default_factory=list)
    crack_seconds: List[float] = field(default_factory=list)
    search_seconds: List[float] = field(default_factory=list)
    insert_seconds: List[float] = field(default_factory=list)
    scan_seconds: List[float] = field(default_factory=list)
    result_counts: List[int] = field(default_factory=list)
    client_seconds: List[float] = field(default_factory=list)
    false_positive_rates: List[float] = field(default_factory=list)
    build_seconds: float = 0.0

    def cumulative(self) -> np.ndarray:
        """Cumulative response time after each query (Figure 6's y-axis)."""
        return np.cumsum(np.asarray(self.seconds, dtype=float))

    def total_seconds(self) -> float:
        """Total workload time."""
        return float(np.sum(self.seconds))


def run_plain_sequence(engine, queries: Sequence[RangeQuery]) -> QueryTrace:
    """Replay a workload against a plaintext engine.

    Works with any engine exposing ``query(low, high, low_inclusive,
    high_inclusive)`` and (optionally) a ``stats_log`` of
    :class:`~repro.cracking.index.QueryStats`.
    """
    trace = QueryTrace()
    for query in queries:
        before = len(getattr(engine, "stats_log", []))
        tick = time.perf_counter()
        result = engine.query(*query.as_args())
        trace.seconds.append(time.perf_counter() - tick)
        trace.result_counts.append(len(result))
        _harvest_stats(engine, before, trace)
    return trace


def run_session_sequence(
    session: OutsourcedDatabase, queries: Sequence[RangeQuery]
) -> QueryTrace:
    """Replay a workload against an outsourced (encrypted) session."""
    trace = QueryTrace()
    server_engine = session.server.engine
    for query in queries:
        before = len(getattr(server_engine, "stats_log", []))
        tick = time.perf_counter()
        result = session.query(*query.as_args())
        trace.seconds.append(time.perf_counter() - tick)
        trace.result_counts.append(len(result.values))
        trace.client_seconds.append(result.decrypt_seconds)
        trace.false_positive_rates.append(result.false_positive_rate)
        _harvest_stats(server_engine, before, trace)
    return trace


def _harvest_stats(engine, log_offset: int, trace: QueryTrace) -> None:
    """Fold freshly appended engine stats into the trace."""
    stats_log = getattr(engine, "stats_log", [])
    fresh = stats_log[log_offset:]
    trace.crack_seconds.append(sum(s.crack_seconds for s in fresh))
    trace.search_seconds.append(sum(s.search_seconds for s in fresh))
    trace.insert_seconds.append(sum(s.insert_seconds for s in fresh))
    trace.scan_seconds.append(sum(s.scan_seconds for s in fresh))


def build_plain_engine(values, kind: str = "adaptive", **kwargs):
    """Construct a plaintext engine by kind.

    Kinds: ``adaptive`` (cracking), ``stochastic`` (random pivots),
    ``sort_touch`` (hybrid crack-sort), ``merging`` (adaptive merging),
    ``scan``, ``sort``.
    """
    from repro.cracking.adaptive_merging import AdaptiveMergingIndex
    from repro.cracking.sort_touch import SortTouchAdaptiveIndex

    builders = {
        "adaptive": AdaptiveIndex,
        "stochastic": StochasticAdaptiveIndex,
        "sort_touch": SortTouchAdaptiveIndex,
        "merging": AdaptiveMergingIndex,
        "scan": FullScanIndex,
        "sort": FullSortIndex,
    }
    try:
        return builders[kind](values, **kwargs)
    except KeyError:
        raise ValueError("unknown plain engine kind %r" % kind) from None


def build_session(
    values,
    data_kind: str,
    seed: int = 0,
    **kwargs,
) -> OutsourcedDatabase:
    """Construct the session for one of the paper's data types.

    ``data_kind``: ``"encrypted"`` (secure cracking), ``"ambiguous"``
    (secure cracking + the Section 4.2 layer), or ``"securescan"``
    (no indexing).  Plain engines are built by
    :func:`build_plain_engine` instead — they need no session.

    Returns the session with :attr:`QueryTrace.build_seconds`-style
    setup time attached as ``session.build_seconds``.
    """
    options = dict(kwargs)
    if data_kind == "encrypted":
        options.update(ambiguity=False, engine="adaptive")
    elif data_kind == "ambiguous":
        options.update(ambiguity=True, engine="adaptive")
    elif data_kind == "securescan":
        options.update(ambiguity=False, engine="scan")
    else:
        raise ValueError("unknown data kind %r" % data_kind)
    tick = time.perf_counter()
    session = OutsourcedDatabase(values, seed=seed, **options)
    session.build_seconds = time.perf_counter() - tick
    return session
