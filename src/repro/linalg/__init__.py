"""Exact integer/rational linear algebra substrate.

The paper's prototype relies on the GNU MP library for exact arithmetic
(Section 5); this package provides the equivalent on top of Python's
arbitrary-precision integers:

* :mod:`repro.linalg.vectors` — dot products, scaling, sampling of
  integer vectors orthogonal to a secret direction.
* :mod:`repro.linalg.intmat` — dense integer matrices, fraction-free
  inversion, and random unimodular matrix generation (so that the key
  matrix inverse is itself integral).
* :mod:`repro.linalg.structured` — the structured matrices of the
  paper's Table 1 (expansion, permutation, complementary permutation,
  and cyclic shift), used by the ambiguity layer.
* :mod:`repro.linalg.kernels` — the two-tier scalar-product kernel: a
  native int64 matmul fast path taken when a magnitude bound proves
  the products cannot overflow 64 bits, the exact object-dtype path as
  fallback, and the per-query product cache.
"""

from repro.linalg.vectors import (
    dot,
    is_zero,
    orthogonal_vector,
    scale,
    vec_add,
    vec_sub,
)
from repro.linalg.intmat import (
    identity,
    mat_inverse_exact,
    mat_mul,
    mat_vec,
    mat_transpose,
    random_unimodular,
    determinant,
)
from repro.linalg.kernels import (
    INT64_MAX,
    KernelCounters,
    ProductCache,
    kernel_disabled,
    kernel_enabled,
    matrix_products,
    products_fit_int64,
    set_kernel_enabled,
    single_product,
)
from repro.linalg.structured import (
    expansion_matrix,
    permutation_matrix,
    complementary_permutation_matrix,
    shift_matrix,
    apply_matrix,
)

__all__ = [
    "dot",
    "is_zero",
    "orthogonal_vector",
    "scale",
    "vec_add",
    "vec_sub",
    "identity",
    "mat_inverse_exact",
    "mat_mul",
    "mat_vec",
    "mat_transpose",
    "random_unimodular",
    "determinant",
    "INT64_MAX",
    "KernelCounters",
    "ProductCache",
    "kernel_disabled",
    "kernel_enabled",
    "matrix_products",
    "products_fit_int64",
    "set_kernel_enabled",
    "single_product",
    "expansion_matrix",
    "permutation_matrix",
    "complementary_permutation_matrix",
    "shift_matrix",
    "apply_matrix",
]
