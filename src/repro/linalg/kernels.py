"""Two-tier scalar-product kernels with an exact big-int fallback.

Every server-side operation in the system — cracking a piece, scanning
a sub-threshold edge piece, routing a pending insert — reduces to sign
tests on ``Eb . Ev`` scalar products (paper, Section 3.3).  The
reproduction's substrate is exact Python big-int arithmetic (the
analogue of the paper's GMP arrays), which pays object-dtype matmuls
even when every operand fits comfortably in a machine word.

This module provides the native fast path with an overflow *proof*:

* **Tier 1 (fast)** — a ``numpy`` int64 matmul, taken only when a cheap
  magnitude bound shows the dot products cannot overflow 64 bits.  For
  a length-``l`` product between rows bounded by ``A = max|row_ij|``
  and a vector bounded by ``B = max|vec_j]``, every partial sum is
  bounded by ``l * A * B``; if that is ``<= 2**63 - 1`` no intermediate
  or final value can wrap, so the int64 result is bit-for-bit equal to
  the exact one.
* **Tier 2 (exact)** — the existing object-dtype matmul over Python
  big-ints, used whenever the proof fails (or the kernel is disabled).

The bound is tracked as ``max_abs`` metadata on ciphertexts and on
:class:`~repro.core.encrypted_column.EncryptedColumn`'s dense matrix;
it is conservative (deletes never lower it), which can only demote the
kernel to the exact tier — never the other way around.

A per-query :class:`ProductCache` lets engines reuse products across
the operations of one query: a crack stores its products and *permutes
the cached array alongside the column*, so a later edge-piece scan on a
sub-range of the cracked piece slices the cache instead of
re-multiplying.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

#: Largest magnitude an int64 can hold; products proven to stay at or
#: below this bound are exact on the fast path.
INT64_MAX = 2 ** 63 - 1

_enabled = True


def kernel_enabled() -> bool:
    """Whether the int64 fast path may be taken."""
    return _enabled


def set_kernel_enabled(enabled: bool) -> bool:
    """Globally enable/disable the fast path; returns the previous state.

    With the kernel disabled every product runs on the exact tier —
    the configuration benchmarks call "kernel-off".
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def kernel_disabled():
    """Context manager forcing the exact tier (for tests/benchmarks)."""
    previous = set_kernel_enabled(False)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


def max_abs(components: Sequence[int]) -> int:
    """Largest absolute component of an integer vector (0 when empty)."""
    return max((abs(int(x)) for x in components), default=0)


def products_fit_int64(length: int, a_max: int, b_max: int) -> bool:
    """True when length-``length`` dot products of vectors bounded by
    ``a_max`` and ``b_max`` provably cannot overflow an int64.

    Every partial sum of such a product lies in
    ``[-length * a_max * b_max, length * a_max * b_max]``; the proof
    therefore also covers numpy's intermediate accumulations.
    """
    if length == 0:
        return True
    if a_max > INT64_MAX or b_max > INT64_MAX:
        return False
    return length * a_max * b_max <= INT64_MAX


class KernelCounters:
    """Running totals of products computed on each tier.

    Attributes:
        fast_products: scalar products served by the int64 fast path.
        exact_products: scalar products served by the exact big-int
            fallback.

    Optionally bound to a :class:`repro.obs.metrics.MetricsRegistry`
    (``kernel.fast_products`` / ``kernel.exact_products`` counters), so
    every product is accounted centrally no matter which code path
    computed it — including paths that never surface a
    :class:`~repro.cracking.index.QueryStats` entry, such as the
    pending-buffer scan with stats recording off or ripple-merge
    routing.
    """

    __slots__ = ("fast_products", "exact_products", "_fast_metric",
                 "_exact_metric")

    def __init__(self, metrics=None) -> None:
        self.fast_products = 0
        self.exact_products = 0
        self._fast_metric = None
        self._exact_metric = None
        if metrics is not None:
            self.bind(metrics)

    def bind(self, metrics) -> None:
        """Mirror future increments into a metrics registry."""
        self._fast_metric = metrics.counter("kernel.fast_products")
        self._exact_metric = metrics.counter("kernel.exact_products")

    def add_fast(self, count: int = 1) -> None:
        """Account ``count`` products to the int64 fast tier."""
        self.fast_products += count
        if self._fast_metric is not None:
            self._fast_metric.add(count)

    def add_exact(self, count: int = 1) -> None:
        """Account ``count`` products to the exact big-int tier."""
        self.exact_products += count
        if self._exact_metric is not None:
            self._exact_metric.add(count)

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(fast, exact)`` totals, for per-query diffing."""
        return self.fast_products, self.exact_products


def matrix_products(
    matrix: np.ndarray,
    mirror: Optional[np.ndarray],
    vector: Sequence[int],
    matrix_max_abs: int,
    vector_max_abs: int,
    counters: Optional[KernelCounters] = None,
) -> np.ndarray:
    """All dot products between the rows of ``matrix`` and ``vector``.

    Args:
        matrix: object-dtype matrix slice (Python big-ints).
        mirror: int64 mirror of the same slice, or None when the matrix
            does not fit int64 (forces the exact tier).
        vector: the bound vector (Python ints).
        matrix_max_abs: proven bound on ``|matrix[i, j]|``.
        vector_max_abs: proven bound on ``|vector[j]|``.
        counters: per-tier accounting, incremented by the row count.

    Returns:
        int64 array on the fast path, object array on the exact path;
        values are bit-for-bit identical either way.
    """
    rows = matrix.shape[0]
    length = matrix.shape[1] if matrix.ndim == 2 else len(vector)
    if (
        _enabled
        and mirror is not None
        and products_fit_int64(length, matrix_max_abs, vector_max_abs)
    ):
        if counters is not None:
            counters.add_fast(rows)
        return mirror @ np.asarray(vector, dtype=np.int64)
    if counters is not None:
        counters.add_exact(rows)
    return matrix @ np.asarray(vector, dtype=object)


def single_product(
    a: Sequence[int],
    b: Sequence[int],
    a_max: int,
    b_max: int,
    counters: Optional[KernelCounters] = None,
) -> int:
    """One exact scalar product, with tier accounting.

    For a single short product the two tiers share an implementation
    (CPython machine-word integer arithmetic *is* the native path at
    this size — array round-trips would only add overhead), but the
    counters still record which tier the magnitude proof admits, so
    per-query stats reflect the same classification as the batched
    kernel.
    """
    if counters is not None:
        if _enabled and products_fit_int64(len(a), a_max, b_max):
            counters.add_fast(1)
        else:
            counters.add_exact(1)
    return sum(x * y for x, y in zip(a, b))


class _CacheEntry:
    """Products of one bound against a contiguous row range."""

    __slots__ = ("lo", "hi", "products")

    def __init__(self, lo: int, hi: int, products: np.ndarray) -> None:
        self.lo = lo
        self.hi = hi
        self.products = products


class ProductCache:
    """Per-query memo of scalar products, keyed by bound ciphertext.

    One instance lives for exactly one query.  Range entries store the
    products of a bound against a contiguous slice of the column *in
    current physical order*; the owning column keeps them valid by
    permuting them through :meth:`apply_order` whenever a crack
    reorganises rows, and drops everything on structural changes
    (insert/delete).  This is what lets an edge piece classified by a
    crack be scanned afterwards without re-multiplying.

    Scalar entries memoise single ``(bound, row_id)`` products for rows
    living outside the column (the server's pending buffer).
    """

    def __init__(self) -> None:
        self._ranges: Dict[object, _CacheEntry] = {}
        self._scalars: Dict[Tuple[object, int], int] = {}
        self.hits = 0
        self.misses = 0

    # -- range products (column rows) ----------------------------------

    def lookup(self, bound, lo: int, hi: int) -> Optional[np.ndarray]:
        """Cached products for ``[lo, hi)``, or None on a miss."""
        entry = self._ranges.get(bound)
        if entry is None or lo < entry.lo or hi > entry.hi:
            self.misses += hi - lo
            return None
        self.hits += hi - lo
        return entry.products[lo - entry.lo : hi - entry.lo]

    def store(self, bound, lo: int, hi: int, products: np.ndarray) -> None:
        """Remember products for ``[lo, hi)`` (widest range wins)."""
        entry = self._ranges.get(bound)
        if entry is not None and entry.hi - entry.lo >= hi - lo:
            return
        self._ranges[bound] = _CacheEntry(lo, hi, products)

    def apply_order(self, lo: int, hi: int, order: np.ndarray) -> None:
        """Keep entries aligned with a physical permutation of ``[lo, hi)``.

        Entries covering the permuted range are permuted in place;
        entries that only partially overlap it can no longer be sliced
        safely and are dropped.
        """
        stale = []
        for bound, entry in self._ranges.items():
            if entry.hi <= lo or entry.lo >= hi:
                continue  # disjoint: untouched rows only
            if entry.lo <= lo and hi <= entry.hi:
                view = entry.products[lo - entry.lo : hi - entry.lo]
                entry.products[lo - entry.lo : hi - entry.lo] = view[order]
            else:
                stale.append(bound)
        for bound in stale:
            del self._ranges[bound]

    def invalidate(self) -> None:
        """Drop every entry (structural change: insert/delete/swap)."""
        self._ranges.clear()
        self._scalars.clear()

    # -- scalar products (pending rows) --------------------------------

    def lookup_scalar(self, bound, row_id: int) -> Optional[int]:
        """Cached single product for ``(bound, row_id)``, or None."""
        product = self._scalars.get((bound, row_id))
        if product is None:
            self.misses += 1
            return None
        self.hits += 1
        return product

    def store_scalar(self, bound, row_id: int, product: int) -> None:
        """Memoise a single product for a row outside the column."""
        self._scalars[(bound, row_id)] = product
