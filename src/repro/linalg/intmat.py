"""Dense exact integer matrices.

Matrices are tuples of row tuples of Python ints.  The encryption scheme
(paper, Section 3.3) needs an invertible secret matrix ``M`` whose
inverse is applied at encryption time; we generate *unimodular* matrices
(determinant +/-1) as products of elementary integer row operations so
that ``M^-1`` is itself an integer matrix and every ciphertext component
stays an exact integer.

For non-unimodular matrices (used in tests and in the ambiguity layer's
intermediate algebra) :func:`mat_inverse_exact` returns the inverse as
an exact rational pair ``(numerators, denominator)``.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.linalg.vectors import IntVector

IntMatrix = Tuple[Tuple[int, ...], ...]


def identity(n: int) -> IntMatrix:
    """Return the ``n x n`` identity matrix."""
    return tuple(
        tuple(1 if i == j else 0 for j in range(n)) for i in range(n)
    )


def mat_transpose(m: IntMatrix) -> IntMatrix:
    """Return the transpose of ``m``."""
    return tuple(zip(*m))


def mat_vec(m: IntMatrix, v: Sequence[int]) -> IntVector:
    """Return the matrix-vector product ``m @ v``."""
    if m and len(m[0]) != len(v):
        raise ValueError(
            "matrix has %d columns but vector has length %d" % (len(m[0]), len(v))
        )
    return tuple(sum(mij * vj for mij, vj in zip(row, v)) for row in m)


def mat_mul(a: IntMatrix, b: IntMatrix) -> IntMatrix:
    """Return the matrix product ``a @ b``."""
    if a and b and len(a[0]) != len(b):
        raise ValueError("inner dimensions do not match")
    bt = mat_transpose(b)
    return tuple(
        tuple(sum(x * y for x, y in zip(row, col)) for col in bt) for row in a
    )


def determinant(m: IntMatrix) -> int:
    """Return the exact determinant of a square integer matrix.

    Uses the Bareiss fraction-free elimination algorithm, which keeps
    all intermediate values integral.
    """
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("determinant requires a square matrix")
    if n == 0:
        return 1
    a: List[List[int]] = [list(row) for row in m]
    sign = 1
    prev = 1
    for k in range(n - 1):
        if a[k][k] == 0:
            pivot_row = next((i for i in range(k + 1, n) if a[i][k] != 0), None)
            if pivot_row is None:
                return 0
            a[k], a[pivot_row] = a[pivot_row], a[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev
            a[i][k] = 0
        prev = a[k][k]
    return sign * a[n - 1][n - 1]


def mat_inverse_exact(m: IntMatrix) -> Tuple[IntMatrix, int]:
    """Return the exact inverse of ``m`` as ``(numerators, denominator)``.

    The inverse is ``numerators / denominator`` with integer numerators
    and a single positive integer denominator, computed by Gauss-Jordan
    elimination over :class:`fractions.Fraction`.

    Raises:
        ValueError: if ``m`` is singular or not square.
    """
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("inverse requires a square matrix")
    aug: List[List[Fraction]] = [
        [Fraction(x) for x in row] + [Fraction(int(i == j)) for j in range(n)]
        for i, row in enumerate(m)
    ]
    for col in range(n):
        pivot_row = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot_row is None:
            raise ValueError("matrix is singular")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [x / pivot for x in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [x - factor * y for x, y in zip(aug[r], aug[col])]
    inv_frac = [row[n:] for row in aug]
    denominator = 1
    for row in inv_frac:
        for x in row:
            denominator = _lcm(denominator, x.denominator)
    numerators = tuple(
        tuple(int(x * denominator) for x in row) for row in inv_frac
    )
    return numerators, denominator


def _lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    from math import gcd

    return a // gcd(a, b) * b


def random_unimodular(
    n: int,
    rng: random.Random,
    operations: int = None,
    coefficient_bound: int = 8,
) -> Tuple[IntMatrix, IntMatrix]:
    """Generate a random unimodular matrix ``M`` and its inverse.

    ``M`` is built as a product of random elementary integer row
    operations (row addition with a small integer coefficient, row
    swaps, row negations), each of which has determinant +/-1, so
    ``det(M) = +/-1`` and ``M^-1`` is integral.  The inverse is
    maintained incrementally by applying the inverse operation on the
    other side, so no matrix inversion is ever performed.

    Args:
        n: matrix dimension (the ciphertext length ``l``).
        rng: source of randomness.
        operations: number of elementary operations to compose;
            defaults to ``4 * n`` which empirically mixes all entries.
        coefficient_bound: row-addition coefficients are drawn from
            ``[-coefficient_bound, coefficient_bound] \\ {0}``.

    Returns:
        ``(M, M_inv)`` with ``mat_mul(M, M_inv) == identity(n)``.
    """
    if n < 1:
        raise ValueError("matrix dimension must be positive")
    if operations is None:
        operations = 4 * n
    m: List[List[int]] = [list(row) for row in identity(n)]
    m_inv: List[List[int]] = [list(row) for row in identity(n)]
    for _ in range(operations):
        kind = rng.randrange(3)
        if kind == 0 and n >= 2:
            # Row addition: row_i += c * row_j  (on M); the inverse
            # absorbs the opposite operation on columns: col_j -= c * col_i.
            i, j = rng.sample(range(n), 2)
            c = rng.choice(
                [k for k in range(-coefficient_bound, coefficient_bound + 1) if k]
            )
            m[i] = [a + c * b for a, b in zip(m[i], m[j])]
            for row in m_inv:
                row[j] -= c * row[i]
        elif kind == 1 and n >= 2:
            # Row swap on M; column swap on M^-1.
            i, j = rng.sample(range(n), 2)
            m[i], m[j] = m[j], m[i]
            for row in m_inv:
                row[i], row[j] = row[j], row[i]
        else:
            # Row negation on M; column negation on M^-1.
            i = rng.randrange(n)
            m[i] = [-a for a in m[i]]
            for row in m_inv:
                row[i] = -row[i]
    return tuple(tuple(row) for row in m), tuple(tuple(row) for row in m_inv)
