"""Exact integer vector operations.

Vectors are plain tuples of Python ints.  Python integers are arbitrary
precision, so every operation here is exact — this is the reproduction's
substitute for the paper's use of the GNU MP library (Section 5 of the
paper: "we require high arithmetic precision").

All functions are pure and allocate fresh tuples; nothing is mutated.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

IntVector = Tuple[int, ...]


def dot(a: Sequence[int], b: Sequence[int]) -> int:
    """Return the exact scalar product of two equal-length vectors.

    This is the single operation the server performs to compare an
    encrypted bound against an encrypted value (paper, Section 3):
    ``Eb(b) . Ev(v) = xi(v) * (v - b)``.

    Raises:
        ValueError: if the vectors differ in length.
    """
    if len(a) != len(b):
        raise ValueError(
            "dot product requires equal lengths, got %d and %d" % (len(a), len(b))
        )
    return sum(x * y for x, y in zip(a, b))


def scale(a: Sequence[int], factor: int) -> IntVector:
    """Return ``factor * a`` as a fresh tuple."""
    return tuple(factor * x for x in a)


def vec_add(a: Sequence[int], b: Sequence[int]) -> IntVector:
    """Return the component-wise sum ``a + b``."""
    if len(a) != len(b):
        raise ValueError("vector addition requires equal lengths")
    return tuple(x + y for x, y in zip(a, b))


def vec_sub(a: Sequence[int], b: Sequence[int]) -> IntVector:
    """Return the component-wise difference ``a - b``."""
    if len(a) != len(b):
        raise ValueError("vector subtraction requires equal lengths")
    return tuple(x - y for x, y in zip(a, b))


def is_zero(a: Sequence[int]) -> bool:
    """Return True if every component of ``a`` is zero."""
    return all(x == 0 for x in a)


def orthogonal_vector(
    u: Sequence[int],
    rng: random.Random,
    magnitude: int = 1 << 16,
    max_attempts: int = 64,
) -> IntVector:
    """Sample a nonzero integer vector orthogonal to ``u``.

    The paper's noise layer (Section 3.1) embeds into each encrypted
    value vector a noisy subvector ``n_v`` orthogonal to the secret
    direction ``u``; the orientation of ``n_v`` is free ("any vector
    orthogonal to u will suffice").  We project a uniformly random
    integer vector ``w`` onto the orthogonal complement of ``u`` while
    staying in the integers::

        n = (u . u) * w - (u . w) * u

    which satisfies ``u . n = 0`` exactly.

    Args:
        u: the secret direction (nonzero).
        rng: source of randomness (caller-owned for reproducibility).
        magnitude: components of ``w`` are drawn from
            ``[-magnitude, magnitude]``.
        max_attempts: resampling budget in case ``w`` lands collinear
            with ``u`` (which would project to the zero vector).

    Returns:
        A nonzero integer vector ``n`` with ``dot(u, n) == 0``.  For a
        length-1 ``u`` the only orthogonal vector is zero, in which case
        the zero vector *is* returned (the caller decides whether a
        degenerate noise subvector is acceptable; the default key sizes
        never hit this case).

    Raises:
        ValueError: if ``u`` is the zero vector.
    """
    if is_zero(u):
        raise ValueError("cannot sample a vector orthogonal to the zero vector")
    if len(u) == 1:
        # The orthogonal complement of a nonzero scalar is {0}.
        return (0,)
    uu = dot(u, u)
    for _ in range(max_attempts):
        w = tuple(rng.randint(-magnitude, magnitude) for _ in range(len(u)))
        uw = dot(u, w)
        n = tuple(uu * wi - uw * ui for wi, ui in zip(w, u))
        if not is_zero(n):
            return n
    # Deterministic fallback: swap two coordinates of u with a sign flip.
    # (u_j, -u_i) at positions (i, j) is orthogonal to (u_i, u_j).
    for i in range(len(u)):
        for j in range(i + 1, len(u)):
            if u[i] != 0 or u[j] != 0:
                n_list = [0] * len(u)
                n_list[i] = u[j]
                n_list[j] = -u[i]
                if not is_zero(n_list):
                    return tuple(n_list)
    raise ValueError("failed to sample an orthogonal vector")  # pragma: no cover
