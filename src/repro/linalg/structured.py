"""Structured matrices from Table 1 of the paper.

The ambiguity layer (paper, Section 4.2) expresses noise embedding with
four matrix families:

* ``E_nm``    — *expansion*: extends a length-``m`` vector with ``n - m``
  zeros (an ``n x m`` matrix with the identity on top).
* ``P_nm``    — *permutation*: shuffles the payload contents of an
  extended vector into the secret payload positions.
* ``Pc_nm``   — *complementary permutation*: shuffles the noise contents
  into the complementary (noise) positions; ``P`` and ``Pc`` have no
  permutation intersections: ``P @ Pc^T == 0``.
* ``S`` / ``S^T`` — *cyclic shift*: moves vector components down / up by
  one position (used to express the fake-branch suffix).

These are only used at key-generation and encryption time; the hot
query path works on the final flat integer vectors.
"""

from __future__ import annotations

from typing import Sequence

from repro.linalg.intmat import IntMatrix, mat_vec
from repro.linalg.vectors import IntVector


def expansion_matrix(n: int, m: int) -> IntMatrix:
    """Return the ``n x m`` expansion matrix ``E_nm`` (identity over zeros).

    ``E_nm @ x`` extends the length-``m`` vector ``x`` with ``n - m``
    trailing zeros.
    """
    if not 0 <= m <= n:
        raise ValueError("expansion requires 0 <= m <= n")
    return tuple(
        tuple(1 if i == j and i < m else 0 for j in range(m)) for i in range(n)
    )


def permutation_matrix(n: int, targets: Sequence[int]) -> IntMatrix:
    """Return the ``n x n`` matrix placing coordinate ``k`` at ``targets[k]``.

    Only the first ``len(targets)`` input coordinates are routed; the
    remaining rows are zero, matching the paper's convention that "only
    the first m rows [of ``P_nm``, after transposition of viewpoint]
    have nonzero contents".

    Args:
        n: output dimension.
        targets: pairwise-distinct output positions, one per routed
            input coordinate.
    """
    if len(set(targets)) != len(targets):
        raise ValueError("target positions must be pairwise distinct")
    if any(not 0 <= t < n for t in targets):
        raise ValueError("target positions out of range")
    rows = [[0] * n for _ in range(n)]
    for source, target in enumerate(targets):
        rows[target][source] = 1
    return tuple(tuple(row) for row in rows)


def complementary_permutation_matrix(
    n: int, payload_targets: Sequence[int]
) -> IntMatrix:
    """Return ``Pc``: routes noise coordinates into non-payload positions.

    Given the payload targets used by :func:`permutation_matrix`, the
    complementary matrix routes input coordinate ``k`` to the ``k``-th
    position *not* claimed by a payload target (in increasing order).
    The paper states the no-intersection property as
    ``P @ Pc^T == 0`` under its source-offset convention; with this
    module's target-routing convention the equivalent identity is
    ``P^T @ Pc == 0`` — the two shuffles claim disjoint output
    positions, which is what the encryption layout needs.
    """
    noise_targets = [i for i in range(n) if i not in set(payload_targets)]
    return permutation_matrix(n, noise_targets)


def shift_matrix(n: int) -> IntMatrix:
    """Return the ``n x n`` cyclic down-shift matrix ``S``.

    ``(S @ x)[i] == x[(i - 1) mod n]``; its transpose shifts up.  For
    ``n == 3``::

        S = [[0, 0, 1],
             [1, 0, 0],
             [0, 1, 0]]
    """
    if n < 1:
        raise ValueError("shift matrix requires positive dimension")
    return tuple(
        tuple(1 if j == (i - 1) % n else 0 for j in range(n)) for i in range(n)
    )


def apply_matrix(m: IntMatrix, x: Sequence[int]) -> IntVector:
    """Apply a (possibly rectangular) structured matrix to a vector."""
    return mat_vec(m, x)
