"""Exact rational linear system solving.

Shared by the ambiguity layer (steering the fake branch of a
two-interpretation ciphertext onto a chosen counterfeit value) and the
known-plaintext attack simulations: Gauss-Jordan elimination over
:class:`fractions.Fraction`, returning a particular solution together
with a nullspace basis so callers can randomise over the solution
space.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

FractionRow = List[Fraction]


def solve_affine(
    coefficients: Sequence[Sequence[Fraction]],
    rhs: Sequence[Fraction],
) -> Optional[Tuple[List[Fraction], List[List[Fraction]]]]:
    """Solve ``A x = b`` exactly over the rationals.

    Returns:
        ``(particular, nullspace_basis)`` — any solution plus a basis
        of the homogeneous solution space (empty when the solution is
        unique) — or None when the system is inconsistent.
    """
    rows = [
        [Fraction(c) for c in row] + [Fraction(b)]
        for row, b in zip(coefficients, rhs)
    ]
    if len(rows) != len(rhs):
        raise ValueError("coefficient rows and rhs lengths differ")
    unknowns = len(rows[0]) - 1 if rows else 0
    if any(len(row) != unknowns + 1 for row in rows):
        raise ValueError("ragged coefficient matrix")

    pivot_cols: List[int] = []
    rank = 0
    for col in range(unknowns):
        pivot_row = next(
            (r for r in range(rank, len(rows)) if rows[r][col] != 0), None
        )
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][col]
        rows[rank] = [x / pivot for x in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [x - factor * y for x, y in zip(rows[r], rows[rank])]
        pivot_cols.append(col)
        rank += 1
        if rank == len(rows):
            break
    for r in range(rank, len(rows)):
        if all(x == 0 for x in rows[r][:unknowns]) and rows[r][unknowns] != 0:
            return None

    particular = [Fraction(0)] * unknowns
    for r, col in enumerate(pivot_cols):
        particular[col] = rows[r][unknowns]

    free_cols = [c for c in range(unknowns) if c not in pivot_cols]
    basis: List[List[Fraction]] = []
    for free in free_cols:
        vector = [Fraction(0)] * unknowns
        vector[free] = Fraction(1)
        for r, col in enumerate(pivot_cols):
            vector[col] = -rows[r][free]
        basis.append(vector)
    return particular, basis
