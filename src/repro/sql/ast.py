"""AST for the SQL subset: a select with conjunctive range predicates.

Every WHERE conjunct normalises into a :class:`ColumnRange` — a
possibly one-sided interval on one column.  Conjuncts on the same
column intersect at parse/plan time, so the executed plan carries at
most one range per column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import QueryError


@dataclass
class ColumnRange:
    """An interval constraint ``low </<= column </<= high``.

    Either side may be None (unbounded).  ``empty`` marks a constraint
    no value satisfies (e.g. ``a > 5 AND a < 3``) — the planner short-
    circuits to an empty result instead of querying the server.
    """

    column: str
    low: Optional[int] = None
    high: Optional[int] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    empty: bool = False

    def intersect(self, other: "ColumnRange") -> "ColumnRange":
        """Conjunction of two constraints on the same column."""
        if self.column != other.column:
            raise QueryError("cannot intersect ranges on different columns")
        low, low_inclusive = self.low, self.low_inclusive
        if other.low is not None and (
            low is None
            or other.low > low
            or (other.low == low and not other.low_inclusive)
        ):
            low, low_inclusive = other.low, other.low_inclusive
        high, high_inclusive = self.high, self.high_inclusive
        if other.high is not None and (
            high is None
            or other.high < high
            or (other.high == high and not other.high_inclusive)
        ):
            high, high_inclusive = other.high, other.high_inclusive
        empty = self.empty or other.empty
        if low is not None and high is not None:
            if low > high:
                empty = True
            elif low == high and not (low_inclusive and high_inclusive):
                empty = True
        return ColumnRange(
            column=self.column,
            low=low,
            high=high,
            low_inclusive=low_inclusive,
            high_inclusive=high_inclusive,
            empty=empty,
        )

    def width(self) -> Optional[int]:
        """Interval width (selectivity proxy); None when unbounded."""
        if self.low is None or self.high is None:
            return None
        return self.high - self.low

    def contains(self, value: int) -> bool:
        """Whether a value satisfies the constraint."""
        if self.empty:
            return False
        if self.low is not None:
            if value < self.low or (value == self.low and not self.low_inclusive):
                return False
        if self.high is not None:
            if value > self.high or (
                value == self.high and not self.high_inclusive
            ):
                return False
        return True


@dataclass
class SelectStatement:
    """A parsed SELECT: projection, table, conjunctive ranges, limit."""

    columns: List[str]  # empty list means '*'
    table: str
    predicates: List[ColumnRange] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def is_star(self) -> bool:
        """Whether the projection is ``*``."""
        return not self.columns
