"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import QueryError
from repro.sql.ast import ColumnRange, SelectStatement
from repro.sql.lexer import Token, tokenize

#: Comparison operator -> the ColumnRange fields it sets, with the
#: column on the LEFT of the operator.
_LEFT_COLUMN_OPS = {
    "=": ("both", True),
    "<": ("high", False),
    "<=": ("high", True),
    ">": ("low", False),
    ">=": ("low", True),
}


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: List[Token], sql: str) -> None:
        self._tokens = tokens
        self._sql = sql
        self._index = 0

    def _peek(self) -> Token:
        if self._index >= len(self._tokens):
            raise QueryError("unexpected end of statement: %r" % self._sql)
        return self._tokens[self._index]

    def _done(self) -> bool:
        return self._index >= len(self._tokens)

    def _advance(self) -> Token:
        token = self._peek()
        self._index += 1
        return token

    def _accept(self, kind: str, text: str = None) -> Token:
        if not self._done() and self._peek().matches(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            found = "end of statement" if self._done() else repr(self._peek().text)
            raise QueryError(
                "expected %s, found %s in %r"
                % (text or kind, found, self._sql)
            )
        return token

    # -- grammar -------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect("KEYWORD", "SELECT")
        columns = self._projection()
        self._expect("KEYWORD", "FROM")
        table = self._expect("IDENT").text
        predicates: List[ColumnRange] = []
        if self._accept("KEYWORD", "WHERE"):
            predicates.append(self._predicate())
            while self._accept("KEYWORD", "AND"):
                predicates.append(self._predicate())
        limit = None
        if self._accept("KEYWORD", "LIMIT"):
            limit = int(self._expect("NUMBER").text)
            if limit < 0:
                raise QueryError("LIMIT must be non-negative")
        if not self._done():
            raise QueryError(
                "unexpected trailing input %r in %r"
                % (self._peek().text, self._sql)
            )
        return SelectStatement(
            columns=columns,
            table=table,
            predicates=_merge_per_column(predicates),
            limit=limit,
        )

    def _projection(self) -> List[str]:
        if self._accept("OP", "*"):
            return []
        columns = [self._expect("IDENT").text]
        while self._accept("OP", ","):
            columns.append(self._expect("IDENT").text)
        return columns

    def _predicate(self) -> ColumnRange:
        # Sandwich form: number op column op number.
        if self._peek().kind == "NUMBER":
            return self._sandwich_predicate()
        column = self._expect("IDENT").text
        if self._accept("KEYWORD", "BETWEEN"):
            low = int(self._expect("NUMBER").text)
            self._expect("KEYWORD", "AND")
            high = int(self._expect("NUMBER").text)
            if low > high:
                raise QueryError("BETWEEN bounds inverted: %d > %d" % (low, high))
            return ColumnRange(column, low=low, high=high)
        operator = self._expect("OP").text
        if operator not in _LEFT_COLUMN_OPS:
            raise QueryError("unsupported operator %r" % operator)
        value = int(self._expect("NUMBER").text)
        side, inclusive = _LEFT_COLUMN_OPS[operator]
        if side == "both":
            return ColumnRange(column, low=value, high=value)
        if side == "high":
            return ColumnRange(column, high=value, high_inclusive=inclusive)
        return ColumnRange(column, low=value, low_inclusive=inclusive)

    def _sandwich_predicate(self) -> ColumnRange:
        low = int(self._expect("NUMBER").text)
        low_op = self._expect("OP").text
        if low_op not in ("<", "<="):
            raise QueryError(
                "sandwich predicates need < or <= on the left, got %r" % low_op
            )
        column = self._expect("IDENT").text
        high_op = self._expect("OP").text
        if high_op not in ("<", "<="):
            raise QueryError(
                "sandwich predicates need < or <= on the right, got %r" % high_op
            )
        high = int(self._expect("NUMBER").text)
        return ColumnRange(
            column,
            low=low,
            high=high,
            low_inclusive=low_op == "<=",
            high_inclusive=high_op == "<=",
        )


def _merge_per_column(predicates: List[ColumnRange]) -> List[ColumnRange]:
    """Intersect conjuncts column-wise; preserve first-seen order."""
    merged: Dict[str, ColumnRange] = {}
    order: List[str] = []
    for predicate in predicates:
        if predicate.column in merged:
            merged[predicate.column] = merged[predicate.column].intersect(
                predicate
            )
        else:
            merged[predicate.column] = predicate
            order.append(predicate.column)
    return [merged[column] for column in order]


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement.

    Raises:
        QueryError: on any lexical or grammatical error (messages
            include the offending statement).
    """
    return _Parser(tokenize(sql), sql).parse_select()
