"""Tokenizer for the SQL subset.

Hand-rolled single-pass scanner producing a flat token list; keywords
are case-insensitive, identifiers case-sensitive, numbers are signed
integers (the system is numeric-only, like the paper's scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import QueryError

KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "BETWEEN", "LIMIT"}

#: Multi-character operators must be matched before single-character.
OPERATORS = ("<=", ">=", "<", ">", "=", ",", "*")


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind tag and its surface text."""

    kind: str  # KEYWORD | IDENT | NUMBER | OP
    text: str
    position: int

    def matches(self, kind: str, text: str = None) -> bool:
        """Whether this token has the given kind (and text, if given)."""
        if self.kind != kind:
            return False
        return text is None or self.text == text


def tokenize(sql: str) -> List[Token]:
    """Scan a statement into tokens.

    Raises:
        QueryError: on any character that starts no valid token.
    """
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        matched_operator = next(
            (op for op in OPERATORS if sql.startswith(op, index)), None
        )
        if matched_operator is not None:
            tokens.append(Token("OP", matched_operator, index))
            index += len(matched_operator)
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and sql[index + 1].isdigit()
        ):
            end = index + 1
            while end < length and sql[end].isdigit():
                end += 1
            tokens.append(Token("NUMBER", sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), index))
            else:
                tokens.append(Token("IDENT", word, index))
            index = end
            continue
        raise QueryError(
            "unexpected character %r at position %d" % (char, index)
        )
    return tokens
