"""A small SQL front end over (encrypted) tables.

The paper situates itself under systems like CryptDB and MONOMI, which
"execute analytical queries over encrypted data" by splitting work
between server and client (Section 2.1).  This package provides that
analytical layer for the reproduction: a conjunctive-select SQL subset
parsed into an AST, planned client-side (the client knows the
plaintext bounds, so it can order predicates by selectivity — the
MONOMI-style "planner that selects efficient query execution plans
involving server and client"), and executed with one encrypted select
per driving predicate plus client-side residual filtering.

Supported grammar::

    SELECT <column, ...> | * FROM <table>
      [WHERE <predicate> [AND <predicate>]...]
      [LIMIT <n>]

    predicate := column (= | < | <= | > | >=) number
               | column BETWEEN number AND number
               | number (< | <=) column (< | <=) number

Unsupported on purpose (documented scope): OR, joins, aggregates,
expressions.  The executor works identically over plaintext
:class:`repro.store.table.Table` and encrypted
:class:`repro.core.encrypted_table.OutsourcedTable` instances.
"""

from repro.sql.ast import ColumnRange, SelectStatement
from repro.sql.executor import Catalog, execute_sql
from repro.sql.parser import parse_select

__all__ = [
    "ColumnRange",
    "SelectStatement",
    "Catalog",
    "execute_sql",
    "parse_select",
]
