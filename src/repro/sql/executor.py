"""Planner and executor over plaintext and encrypted tables.

The plan for a conjunctive select is the MONOMI-style client/server
split the paper cites:

1. *empty short-circuit* — if intersected predicates are contradictory
   the client answers without contacting the server;
2. *driver choice* — the narrowest bounded predicate drives the
   server-side (cracking) select: the client knows plaintext bounds,
   so it can rank selectivity without any server statistics;
3. *residual filtering* — remaining predicates are evaluated at the
   client on values fetched by row id (over encrypted tables the
   server never learns which residual predicates a row failed);
4. *projection* — requested columns are fetched for surviving rows.

The same executor runs over :class:`repro.store.table.Table`
(plaintext, cracked server-side per column) and
:class:`repro.core.encrypted_table.OutsourcedTable` (everything in
ciphertext).  Encrypted tables speak the :mod:`repro.net` wire
protocol underneath — each of their columns is a named column at a
catalog endpoint, addressed through a loopback or TCP transport — so
the planner's server-side selects are real protocol round trips
(``repro sql --connect HOST:PORT`` runs them against a remote
``repro serve`` process).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.encrypted_table import OutsourcedTable
from repro.errors import QueryError
from repro.sql.ast import ColumnRange, SelectStatement
from repro.sql.parser import parse_select
from repro.store.select import RangePredicate
from repro.store.table import Table

AnyTable = Union[Table, OutsourcedTable]


class Catalog:
    """Named tables the executor can address."""

    def __init__(self, tables: Dict[str, AnyTable] = None) -> None:
        self._tables: Dict[str, AnyTable] = dict(tables or {})

    def register(self, name: str, table: AnyTable) -> None:
        """Register (or replace) a table under a name."""
        if not name:
            raise QueryError("table name must be non-empty")
        self._tables[name] = table

    def table(self, name: str) -> AnyTable:
        """Look up a table.

        Raises:
            QueryError: for unknown names.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError("unknown table: %r" % name) from None

    def table_names(self) -> List[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)


def execute_sql(catalog: Catalog, sql: str) -> Dict[str, np.ndarray]:
    """Parse and run one SELECT; returns column name -> values.

    The result always includes ``logical_ids`` (qualifying row ids)
    plus one array per projected column, all parallel.
    """
    return execute_statement(catalog, parse_select(sql))


def execute_statement(
    catalog: Catalog, statement: SelectStatement
) -> Dict[str, np.ndarray]:
    """Run a parsed SELECT against the catalog."""
    table = catalog.table(statement.table)
    columns = _resolve_projection(table, statement)
    for predicate in statement.predicates:
        if predicate.column not in _column_names(table):
            raise QueryError("unknown column: %r" % predicate.column)

    if any(predicate.empty for predicate in statement.predicates):
        ids = np.empty(0, dtype=np.int64)
    else:
        ids = _qualifying_ids(table, statement.predicates)
    if statement.limit is not None:
        ids = ids[: statement.limit]

    out: Dict[str, np.ndarray] = {"logical_ids": ids}
    out.update(_fetch_columns(table, columns, ids))
    return out


# -- planning ------------------------------------------------------------------


def _qualifying_ids(table: AnyTable, predicates: List[ColumnRange]) -> np.ndarray:
    if not predicates:
        return np.arange(len(table), dtype=np.int64)
    driver = _choose_driver(predicates)
    ids, driver_values = _driving_select(table, driver)
    keep = np.ones(len(ids), dtype=bool)
    residuals = [p for p in predicates if p is not driver]
    # All residual columns ride one batch envelope over the wire.
    fetched = _fetch_columns(table, [p.column for p in residuals], ids)
    for predicate in residuals:
        values = fetched[predicate.column]
        keep &= np.array(
            [predicate.contains(int(v)) for v in values], dtype=bool
        )
    # Residual re-check of the driver is unnecessary: the select is
    # exact.  (driver_values kept for symmetry/debugging.)
    del driver_values
    return ids[keep]


def _choose_driver(predicates: List[ColumnRange]) -> ColumnRange:
    """Narrowest bounded range wins; one-sided ranges as a fallback."""
    bounded = [p for p in predicates if p.width() is not None]
    if bounded:
        return min(bounded, key=lambda p: p.width())
    return predicates[0]


def _driving_select(table: AnyTable, predicate: ColumnRange):
    if isinstance(table, OutsourcedTable):
        selection = table.select(
            predicate.column,
            low=predicate.low,
            high=predicate.high,
            low_inclusive=predicate.low_inclusive,
            high_inclusive=predicate.high_inclusive,
        )
        return selection.logical_ids, selection.values
    # Plaintext table: use the cracking index when attached, else scan.
    engine = table.index_for(predicate.column)
    if engine is not None:
        ids = engine.query(
            low=predicate.low,
            high=predicate.high,
            low_inclusive=predicate.low_inclusive,
            high_inclusive=predicate.high_inclusive,
        )
    else:
        values = table.column(predicate.column).values
        mask = np.ones(len(values), dtype=bool)
        if predicate.low is not None:
            mask &= (
                values >= predicate.low
                if predicate.low_inclusive
                else values > predicate.low
            )
        if predicate.high is not None:
            mask &= (
                values <= predicate.high
                if predicate.high_inclusive
                else values < predicate.high
            )
        ids = np.flatnonzero(mask)
    return ids.astype(np.int64), table.column(predicate.column).fetch(ids)


# -- fetch / projection ----------------------------------------------------------


def _column_names(table: AnyTable) -> List[str]:
    return table.column_names


def _resolve_projection(table: AnyTable, statement: SelectStatement) -> List[str]:
    if statement.is_star:
        return _column_names(table)
    for column in statement.columns:
        if column not in _column_names(table):
            raise QueryError("unknown column: %r" % column)
    return statement.columns


def _fetch_column(table: AnyTable, column: str, ids: np.ndarray) -> np.ndarray:
    if isinstance(table, OutsourcedTable):
        return table.fetch(column, ids)
    return table.column(column).fetch(ids)


def _fetch_columns(
    table: AnyTable, columns: List[str], ids: np.ndarray
) -> Dict[str, np.ndarray]:
    """Fetch several columns by id; one batched round trip when the
    table is outsourced."""
    unique = list(dict.fromkeys(columns))
    if not unique:
        return {}
    if isinstance(table, OutsourcedTable):
        return table.fetch_many(unique, ids)
    return {column: table.column(column).fetch(ids) for column in unique}
