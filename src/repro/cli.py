"""Command-line interface: ``python -m repro <command>``.

Eight subcommands cover the common operator flows:

* ``demo``   — a self-contained end-to-end demonstration (synthetic
  data, a query burst, adaptation statistics).
* ``query``  — outsource a numeric column from a file and run range /
  point queries against it (``--stats`` adds protocol and kernel
  totals).
* ``stats``  — run a workload and print the full metrics snapshot
  (counters, gauges, histogram summaries; ``--json`` for machines).
  With ``--connect`` and no FILE it instead fetches the *live*
  telemetry of a running endpoint over the ``telemetry_request``
  envelope — the same counters the server would render locally.
* ``trace``  — run a workload with span tracing enabled and write the
  JSONL trace (plus a per-span-name summary on stdout).  ``--merge``
  stitches client and server JSONL dumps into one distributed span
  tree instead of running a workload.
* ``top``    — a refreshing live monitor over a serving endpoint's
  telemetry (requests, queue depth, slow queries).
* ``sql``    — load one or more CSV tables (encrypted by default) and
  execute a SQL statement from the supported subset.
* ``serve``  — host a column catalog on a TCP port; remote clients
  upload and query columns through the wire protocol.  ``--wal DIR``
  makes it durable (recover on start, journal every mutation,
  checkpoint on shutdown); ``--replica-of HOST:PORT`` turns it into a
  warm read replica streaming the primary's WAL; ``--trace FILE``
  dumps the server-side span JSONL on shutdown (SIGTERM included).
* ``keygen`` — generate a secret key and print its JSON serialization
  (for sharing between trusted clients out of band).

The workload commands (``query`` / ``stats`` / ``trace`` / ``sql``)
default to an in-process server; ``--connect HOST:PORT`` points them
at a running ``repro serve`` endpoint instead — same protocol, same
results, real sockets.

The CLI is a thin shell over the library; every command prints plain
text and returns a process exit code, so it is scriptable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import OutsourcedDatabase, __version__
from repro.core.encrypted_table import OutsourcedTable
from repro.crypto import generate_key
from repro.crypto.serialization import dumps
from repro.errors import ReproError
from repro.sql import Catalog, execute_sql
from repro.store.table import Table
from repro.workloads.datasets import unique_uniform


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive indexing over encrypted numeric data "
        "(SIGMOD 2016 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version="repro %s" % __version__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run an end-to-end demo")
    demo.add_argument("--rows", type=int, default=10000)
    demo.add_argument("--queries", type=int, default=50)
    demo.add_argument("--ambiguity", action="store_true")
    demo.add_argument("--seed", type=int, default=0)

    query = commands.add_parser(
        "query", help="outsource a column file and run queries"
    )
    _add_workload_args(query)
    query.add_argument(
        "--stats", action="store_true",
        help="print protocol and kernel totals after the queries",
    )

    stats = commands.add_parser(
        "stats", help="run a workload and print the metrics snapshot "
        "(no FILE + --connect: fetch a live endpoint's telemetry)"
    )
    _add_workload_args(stats, optional_file=True)
    stats.add_argument("--json", action="store_true",
                       help="emit the snapshot as JSON")

    trace = commands.add_parser(
        "trace", help="run a workload with tracing and dump JSONL spans"
    )
    _add_workload_args(trace, optional_file=True)
    trace.add_argument("--output", default="trace.jsonl",
                       help="JSONL file to write spans to")
    trace.add_argument(
        "--merge", nargs="+", metavar="TRACE.jsonl", default=None,
        help="merge span dumps (e.g. client + server) into one "
             "distributed tree written to --output; no workload is run",
    )

    top = commands.add_parser(
        "top", help="refreshing live telemetry monitor for an endpoint"
    )
    top.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the running `repro serve` endpoint to monitor",
    )
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default 2)")
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="exit after N refreshes (default 0 = run until ctrl-c)",
    )
    top.add_argument("--codec", choices=("auto", "json", "binary"),
                     default="auto")

    sql = commands.add_parser("sql", help="run SQL over CSV tables")
    sql.add_argument(
        "--table", action="append", dest="tables", default=[],
        metavar="NAME=FILE.csv", required=True,
        help="register a CSV (header row of column names) as a table",
    )
    sql.add_argument("--plaintext", action="store_true",
                     help="keep tables unencrypted (default: encrypted)")
    sql.add_argument("--ambiguity", action="store_true",
                     help="encrypt with counterfeit interpretations")
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument(
        "--connect", metavar="HOST:PORT",
        help="host encrypted tables on a running `repro serve` endpoint",
    )
    sql.add_argument(
        "--codec", choices=("auto", "json", "binary"), default="auto",
        help="wire frame codec for encrypted tables",
    )
    sql.add_argument("statement", help="the SELECT statement")

    serve = commands.add_parser(
        "serve", help="host a column catalog endpoint over TCP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9045)
    serve.add_argument(
        "--workers", type=int, default=8,
        help="dispatch worker threads (the bound on concurrent engine "
             "work; default 8)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=128,
        help="accepted connections beyond this are refused (default 128)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=None,
        help="request-queue bound before `busy` backpressure "
             "(default: 2x workers)",
    )
    serve.add_argument(
        "--batch-workers", type=int, default=8,
        help="threads executing one batch's multi-column sub-requests "
             "concurrently (sharded scatter-gather; 0 or 1 disables, "
             "default 8)",
    )
    serve.add_argument(
        "--trace", metavar="FILE", default=None,
        help="enable server-side span tracing; the JSONL dump is "
             "written to FILE on shutdown (merge it with a client dump "
             "via `repro trace --merge`)",
    )
    serve.add_argument(
        "--slow-query-threshold", type=float, default=0.25, metavar="SECONDS",
        help="dispatches at least this slow land in the telemetry "
             "slow-query ring (default 0.25)",
    )
    serve.add_argument(
        "--slow-query-capacity", type=int, default=64, metavar="N",
        help="slow-query ring size (default 64)",
    )
    serve.add_argument(
        "--wal", metavar="DIR", default=None,
        help="durable data directory: recover state from its snapshot "
             "plus WAL on start, then journal every mutation to it "
             "(default: in-memory only)",
    )
    serve.add_argument(
        "--fsync", choices=("always", "batch", "never"), default="always",
        help="WAL durability: fsync every append (always, default), "
             "every Nth append (batch), or never (OS decides)",
    )
    serve.add_argument(
        "--wal-segment-bytes", type=int, default=None, metavar="BYTES",
        help="rotate WAL segment files at this size (default 4 MiB)",
    )
    serve.add_argument(
        "--checkpoint-segments", type=int, default=4, metavar="N",
        help="snapshot-then-truncate the WAL once it exceeds N segment "
             "files (0 disables auto-checkpointing; default 4)",
    )
    serve.add_argument(
        "--replica-of", metavar="HOST:PORT", default=None,
        help="run as a warm read replica of the given primary: stream "
             "its WAL, serve reads, refuse mutations with a typed "
             "read_only error",
    )
    serve.add_argument(
        "--replica-id", default=None, metavar="NAME",
        help="name this replica reports to the primary (default "
             "HOST:PORT of this endpoint)",
    )
    serve.add_argument(
        "--replica-poll", type=float, default=0.05, metavar="SECONDS",
        help="seconds between WAL polls when the replica is caught up "
             "(default 0.05)",
    )

    keygen = commands.add_parser("keygen", help="generate a secret key")
    keygen.add_argument("--length", type=int, default=4)
    keygen.add_argument("--seed", type=int, default=None)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        handler = {
            "demo": _run_demo,
            "query": _run_query,
            "stats": _run_stats,
            "trace": _run_trace,
            "top": _run_top,
            "sql": _run_sql,
            "serve": _run_serve,
            "keygen": _run_keygen,
        }[args.command]
        return handler(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


# -- commands -------------------------------------------------------------------


def _run_demo(args) -> int:
    values = unique_uniform(args.rows, seed=args.seed)
    print("encrypting %d values%s..." % (
        args.rows, " with ambiguity" if args.ambiguity else ""))
    tick = time.perf_counter()
    db = OutsourcedDatabase(values, ambiguity=args.ambiguity, seed=args.seed)
    print("  upload ready in %.2fs" % (time.perf_counter() - tick))
    rng = np.random.default_rng(args.seed)
    span = max(1, 2 ** 31 // 100)
    seconds: List[float] = []
    for _ in range(args.queries):
        low = int(rng.integers(0, 2 ** 31 - span))
        tick = time.perf_counter()
        db.query(low, low + span)
        seconds.append(time.perf_counter() - tick)
    print("ran %d random 1%%-selectivity queries" % args.queries)
    print("  first query : %.4fs" % seconds[0])
    print("  last query  : %.4fs" % seconds[-1])
    print("  total       : %.3fs" % sum(seconds))
    print("  crack bounds in the encrypted AVL tree: %d"
          % len(db.server.engine.tree))
    if args.ambiguity:
        rates = [r.false_positive_rate for r in db.client_stats if
                 r.returned_rows]
        if rates:
            print("  counterfeit false-positive rate: %.0f%%"
                  % (100 * float(np.mean(rates))))
    return 0


def _add_workload_args(parser, optional_file: bool = False) -> None:
    """The shared column-file-plus-queries arguments."""
    if optional_file:
        parser.add_argument(
            "file", nargs="?", default=None,
            help="text file, one integer per line (optional for the "
                 "command's non-workload modes)",
        )
    else:
        parser.add_argument("file", help="text file, one integer per line")
    parser.add_argument(
        "--range", nargs=2, type=int, action="append", metavar=("LOW", "HIGH"),
        dest="ranges", default=[], help="range query (repeatable)",
    )
    parser.add_argument(
        "--point", type=int, action="append", dest="points", default=[],
        help="equality query (repeatable)",
    )
    parser.add_argument(
        "--workload", help="replay a JSON workload trace file"
    )
    parser.add_argument("--ambiguity", action="store_true")
    parser.add_argument("--engine", choices=("adaptive", "scan"),
                       default="adaptive")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--connect", metavar="HOST:PORT",
        help="speak to a running `repro serve` endpoint instead of an "
             "in-process server",
    )
    parser.add_argument(
        "--column", default="values",
        help="column name at the endpoint (sessions sharing a server "
             "must pick distinct names)",
    )
    parser.add_argument(
        "--codec", choices=("auto", "json", "binary"), default="auto",
        help="wire frame codec (auto negotiates binary when the "
             "endpoint supports it)",
    )
    parser.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help="pipeline trace queries N at a time in one batched round "
             "trip each (--workload only; default 1 = unbatched)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="spread the column over N catalog shards; each query fans "
             "out as one parallel batch and every shard cracks "
             "independently (default 0 = unsharded)",
    )
    parser.add_argument(
        "--replicas", action="append", default=[], metavar="HOST:PORT",
        help="route reads across these `repro serve --replica-of` "
             "endpoints while writes pin to --connect (repeatable; "
             "requires --connect)",
    )
    parser.add_argument(
        "--max-staleness", type=int, default=0, metavar="EPOCHS",
        help="epochs a replica may trail a column this session wrote "
             "before its reads divert to the primary (default 0 = "
             "read-your-writes)",
    )


def _parse_address(address: str, flag: str):
    host, __, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError("%s must be HOST:PORT: %r" % (flag, address))
    return host, int(port)


def _make_transport(args):
    """A TCP transport for ``--connect`` (wrapped in a
    :class:`~repro.net.replication.ReplicaSet` when ``--replicas``
    endpoints are given), or None for loopback."""
    address = getattr(args, "connect", None)
    replicas = getattr(args, "replicas", None) or []
    if not address:
        if replicas:
            raise ReproError("--replicas requires --connect HOST:PORT")
        return None
    from repro.net.transport import TcpTransport

    primary = TcpTransport(*_parse_address(address, "--connect"))
    if not replicas:
        return primary
    from repro.net.replication import ReplicaSet

    return ReplicaSet(
        primary,
        [
            TcpTransport(*_parse_address(spec, "--replicas"))
            for spec in replicas
        ],
        max_staleness_epochs=getattr(args, "max_staleness", 0),
    )


def _build_db(args, obs=None) -> OutsourcedDatabase:
    values = _read_column(args.file)
    transport = _make_transport(args)
    db = OutsourcedDatabase(
        values, ambiguity=args.ambiguity, engine=args.engine, seed=args.seed,
        obs=obs, transport=transport,
        column=getattr(args, "column", "values"),
        codec=getattr(args, "codec", "auto"),
        shards=getattr(args, "shards", 0) or 0,
    )
    where = " to %s" % args.connect if getattr(args, "connect", None) else ""
    sharded = (
        " across %d shards" % db.shard_count if db.shard_count else ""
    )
    print(
        "outsourced %d values from %s%s%s"
        % (len(values), args.file, where, sharded)
    )
    return db


def _execute_workload(db: OutsourcedDatabase, args, verbose: bool = True) -> int:
    """Run the requested queries; returns how many were executed."""
    executed = 0
    for low, high in args.ranges:
        result = db.query(low, high)
        executed += 1
        if verbose:
            print("range [%d, %d]: %d rows -> %s"
                  % (low, high, len(result.values),
                     _preview(np.sort(result.values))))
    for point in args.points:
        result = db.query_point(point)
        executed += 1
        if verbose:
            print("point %d: %d rows" % (point, len(result.values)))
    if args.workload:
        from repro.workloads.trace import load_workload

        queries = load_workload(args.workload)
        batch = max(1, int(getattr(args, "batch", 1) or 1))
        tick = time.perf_counter()
        total_rows = 0
        if batch > 1:
            for start in range(0, len(queries), batch):
                chunk = queries[start:start + batch]
                for result in db.query_many([q.as_args() for q in chunk]):
                    total_rows += len(result.values)
        else:
            for trace_query in queries:
                total_rows += len(db.query(*trace_query.as_args()).values)
        executed += len(queries)
        batched = " in batches of %d" % batch if batch > 1 else ""
        print(
            "replayed %d-query trace%s in %.3fs (%d rows returned)"
            % (len(queries), batched, time.perf_counter() - tick, total_rows)
        )
    if not executed:
        print("no queries given; use --range LOW HIGH, --point VALUE, "
              "or --workload TRACE.json")
    return executed


def _run_query(args) -> int:
    db = _build_db(args)
    _execute_workload(db, args)
    if args.stats:
        metrics = db.obs.metrics
        print("protocol: %d round trips, %d bytes sent, %d bytes received"
              % (db.round_trips, db.bytes_sent, db.bytes_received))
        print("kernel:   %d fast products, %d exact products, %d cache hits"
              % (metrics.counter_value("kernel.fast_products"),
                 metrics.counter_value("kernel.exact_products"),
                 metrics.counter_value("kernel.cache_hits")))
    return 0


def _run_stats(args) -> int:
    if args.file is None:
        if not getattr(args, "connect", None):
            raise ReproError(
                "stats needs a column FILE to run a workload, or "
                "--connect HOST:PORT for a live endpoint snapshot"
            )
        sections = _fetch_telemetry(args)
        if args.json:
            print(json.dumps(sections, indent=2, sort_keys=True))
        else:
            print(_render_telemetry(sections))
        return 0
    db = _build_db(args)
    _execute_workload(db, args, verbose=False)
    if args.json:
        print(json.dumps(db.obs.snapshot(), indent=2, sort_keys=True))
    else:
        print(db.obs.metrics.render())
    return 0


def _fetch_telemetry(args, sections=None):
    """One ``telemetry_request`` round trip against ``--connect``."""
    from repro.net import RemoteColumn

    transport = _make_transport(args)
    remote = RemoteColumn(
        transport, "telemetry", codec=getattr(args, "codec", "auto")
    )
    try:
        return remote.telemetry(sections)
    finally:
        remote.close()


def _render_telemetry(sections) -> str:
    """Human-readable endpoint telemetry (metrics part identical to a
    server-local ``MetricsRegistry.render()``)."""
    from repro.obs.metrics import render_snapshot

    lines: List[str] = []
    metrics = sections.get("metrics")
    if isinstance(metrics, dict):
        lines.append(render_snapshot(metrics))
    pool = sections.get("pool")
    if isinstance(pool, dict):
        lines.append(
            "pool: %s workers, queue %s/%s, connections %s/%s%s"
            % (pool.get("workers"), pool.get("queue_depth"),
               pool.get("queue_size"), pool.get("active_connections"),
               pool.get("max_connections"),
               " (draining)" if pool.get("draining") else "")
        )
    tracer = sections.get("tracer")
    if isinstance(tracer, dict):
        lines.append(
            "tracer: %s, %s spans recorded"
            % ("enabled" if tracer.get("enabled") else "disabled",
               tracer.get("spans", 0))
        )
    catalog = sections.get("catalog")
    if isinstance(catalog, dict):
        columns = catalog.get("columns") or []
        lines.append(
            "catalog: %d columns, %d logical shard groups"
            % (len(columns), len(catalog.get("shards") or {}))
        )
    replication = sections.get("replication")
    if isinstance(replication, dict):
        if replication.get("role") == "primary":
            wal = replication.get("wal") or {}
            lines.append(
                "replication: primary — wal seq %s, %s segments, "
                "%s bytes (fsync %s)"
                % (wal.get("seq", 0), wal.get("segments", 0),
                   wal.get("bytes", 0), wal.get("fsync", "?"))
            )
            for replica_id, info in sorted(
                (replication.get("replicas") or {}).items()
            ):
                lines.append(
                    "  replica %-20s acked seq %-8s lag %s epochs"
                    % (replica_id, info.get("seq", 0),
                       info.get("lag_epochs", "?"))
                )
        else:
            lines.append(
                "replication: replica %s — applied seq %s, "
                "lag %s entries%s"
                % (replication.get("replica_id", "?"),
                   replication.get("applied_seq", 0),
                   replication.get("lag_entries", 0),
                   " (last error: %s)" % replication["last_error"]
                   if replication.get("last_error") else "")
            )
    slow = sections.get("slow_queries")
    if isinstance(slow, dict):
        entries = slow.get("entries") or []
        lines.append(
            "slow queries (>= %ss): %s recorded, showing %d"
            % (slow.get("threshold_seconds"), slow.get("recorded", 0),
               min(len(entries), 5))
        )
        for entry in entries[-5:]:
            lines.append(
                "  %.4fs  %-16s %s"
                % (entry.get("seconds", 0.0), entry.get("kind", "?"),
                   entry.get("column", ""))
            )
    return "\n".join(lines) if lines else "(no telemetry sections)"


def _run_trace(args) -> int:
    if args.merge:
        return _run_trace_merge(args)
    if args.file is None:
        raise ReproError(
            "trace needs a column FILE to run a workload "
            "(or --merge TRACE.jsonl ... to merge existing dumps)"
        )
    from repro.obs import Observability

    obs = Observability(tracing=True)
    db = _build_db(args, obs=obs)
    _execute_workload(db, args, verbose=False)
    obs.tracer.dump_jsonl(args.output)
    print("wrote %d spans to %s" % (len(obs.tracer.spans), args.output))
    for name, entry in sorted(obs.tracer.summary().items()):
        print("  %-16s %5d spans  %.6fs" % (name, entry["count"],
                                            entry["seconds"]))
    return 0


def _run_trace_merge(args) -> int:
    """Stitch client/server span dumps into one distributed tree."""
    from repro.obs import load_trace_jsonl, merge_traces

    dumps_in = [load_trace_jsonl(path) for path in args.merge]
    merged = merge_traces(*dumps_in)
    with open(args.output, "w") as handle:
        for record in merged:
            handle.write(json.dumps(record) + "\n")
    roots = sum(1 for record in merged if record.get("tree_depth") == 0)
    print(
        "merged %d spans from %d dumps into %s (%d roots)"
        % (len(merged), len(args.merge), args.output, roots)
    )
    limit = 200
    for record in merged[:limit]:
        duration = record.get("duration")
        timing = (
            " %.6fs" % duration if isinstance(duration, (int, float)) else ""
        )
        detail = "".join(
            " %s=%s" % (key, record[key])
            for key in ("kind", "column") if record.get(key) is not None
        )
        print("  %s%s%s%s" % ("  " * int(record.get("tree_depth", 0)),
                              record.get("name", "?"), timing, detail))
    if len(merged) > limit:
        print("  ... (%d more spans in %s)" % (len(merged) - limit,
                                               args.output))
    return 0


def _run_top(args) -> int:
    """Refreshing live monitor over an endpoint's telemetry."""
    from repro.net import RemoteColumn

    transport = _make_transport(args)
    remote = RemoteColumn(transport, "telemetry", codec=args.codec)
    refreshes = 0
    try:
        while True:
            sections = remote.telemetry()
            if sys.stdout.isatty():  # pragma: no cover - interactive only
                print("\x1b[2J\x1b[H", end="")
            print("repro top — %s — refresh %d"
                  % (args.connect, refreshes + 1))
            print(_render_telemetry(sections))
            sys.stdout.flush()
            refreshes += 1
            if args.iterations and refreshes >= args.iterations:
                return 0
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    finally:
        remote.close()


def _run_sql(args) -> int:
    catalog = Catalog()
    transport = _make_transport(args)
    for spec in args.tables:
        name, __, path = spec.partition("=")
        if not name or not path:
            raise ReproError("table spec must be NAME=FILE.csv: %r" % spec)
        columns = _read_csv(path)
        if args.plaintext:
            if args.ambiguity:
                raise ReproError("--ambiguity requires encrypted tables")
            if transport is not None:
                raise ReproError("--connect requires encrypted tables")
            catalog.register(name, Table(columns))
        else:
            catalog.register(
                name,
                OutsourcedTable(
                    columns, ambiguity=args.ambiguity, seed=args.seed,
                    transport=transport, namespace="%s." % name,
                    codec=args.codec,
                ),
            )
    out = execute_sql(catalog, args.statement)
    names = [name for name in out if name != "logical_ids"]
    widths = {name: max(len(name), 12) for name in names}
    print("  ".join(name.rjust(widths[name]) for name in names))
    print("  ".join("-" * widths[name] for name in names))
    for index in range(len(out["logical_ids"])):
        print("  ".join(
            str(int(out[name][index])).rjust(widths[name]) for name in names
        ))
    print("(%d rows)" % len(out["logical_ids"]))
    return 0


def _run_serve(args) -> int:
    import signal

    from repro.net import ColumnCatalog, serve as bind_endpoint
    from repro.obs import Observability

    if args.replica_of and args.wal:
        raise ReproError(
            "--replica-of and --wal are mutually exclusive: a replica "
            "streams the primary's WAL instead of keeping its own"
        )
    obs = Observability(tracing=bool(args.trace))
    catalog_kwargs = dict(
        obs=obs,
        batch_workers=args.batch_workers,
        slow_query_threshold=args.slow_query_threshold,
        slow_query_capacity=args.slow_query_capacity,
    )
    wal_writer = None
    if args.wal:
        from repro.core.persistence import (
            checkpoint_catalog,
            recover_catalog,
        )
        from repro.core.wal import DEFAULT_SEGMENT_BYTES, WalWriter

        catalog, recovery = recover_catalog(args.wal, **catalog_kwargs)
        wal_writer = WalWriter(
            args.wal,
            segment_bytes=args.wal_segment_bytes or DEFAULT_SEGMENT_BYTES,
            fsync=args.fsync,
        )
        catalog.bind_wal(
            wal_writer,
            checkpoint=lambda: checkpoint_catalog(
                catalog, args.wal, wal_writer
            ),
            checkpoint_segments=args.checkpoint_segments,
        )
        print(
            "recovered %d columns from %s (%s, replayed %d WAL entries "
            "after seq %d)"
            % (len(catalog), args.wal,
               "snapshot" if recovery["snapshot"] else "no snapshot",
               recovery["replayed"], recovery["wal_seq"]),
            flush=True,
        )
    else:
        catalog = ColumnCatalog(**catalog_kwargs)

    replication = None
    if args.replica_of:
        from repro.net.replication import ReplicationClient
        from repro.net.transport import TcpTransport

        catalog.set_read_only(args.replica_of)
        primary_host, primary_port = _parse_address(
            args.replica_of, "--replica-of"
        )
        replica_id = args.replica_id or "%s:%d" % (args.host, args.port)
        replication = ReplicationClient(
            catalog,
            TcpTransport(primary_host, primary_port),
            replica_id,
            poll_interval=args.replica_poll,
        )

    endpoint = bind_endpoint(
        catalog=catalog,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_connections=args.max_connections,
        queue_size=args.queue_size,
    )
    host, port = endpoint.server_address
    role = (
        "read replica of %s" % args.replica_of if args.replica_of
        else "column catalog"
    )
    print(
        "serving %s on %s:%d "
        "(%d workers, %d max connections; ctrl-c to stop)"
        % (role, host, port, endpoint.workers, endpoint.max_connections),
        flush=True,
    )
    if replication is not None:
        replication.start()

    # SIGTERM lands here as a KeyboardInterrupt so the finally block
    # below runs: the trace dump and the final checkpoint must survive
    # `kill PID` exactly like ctrl-c, not just a clean return.
    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _terminate)
    try:
        endpoint.serve_forever()
    except KeyboardInterrupt:
        print("stopping")
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        if replication is not None:
            replication.close()
        endpoint.stop()
        if wal_writer is not None:
            from repro.core.persistence import checkpoint_catalog

            try:
                seq = checkpoint_catalog(catalog, args.wal, wal_writer)
                print("checkpointed %s at seq %d" % (args.wal, seq),
                      flush=True)
            except ReproError as exc:
                print("final checkpoint failed: %s" % exc, file=sys.stderr)
            wal_writer.close()
        if args.trace:
            obs.tracer.dump_jsonl(args.trace)
            print("wrote %d server spans to %s"
                  % (len(obs.tracer.spans), args.trace), flush=True)
    return 0


def _run_keygen(args) -> int:
    key = generate_key(length=args.length, seed=args.seed)
    print(dumps(key))
    return 0


# -- input helpers -----------------------------------------------------------------


def _read_column(path: str) -> List[int]:
    """One integer per line; blank lines and '#' comments skipped."""
    values: List[int] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                values.append(int(text))
            except ValueError:
                raise ReproError(
                    "%s:%d: not an integer: %r" % (path, line_number, text)
                ) from None
    if not values:
        raise ReproError("%s contains no values" % path)
    return values


def _read_csv(path: str) -> Dict[str, List[int]]:
    """Header row of column names, integer cells; comma-separated."""
    with open(path) as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if len(lines) < 2:
        raise ReproError("%s needs a header row and at least one data row" % path)
    names = [name.strip() for name in lines[0].split(",")]
    columns: Dict[str, List[int]] = {name: [] for name in names}
    for line_number, line in enumerate(lines[1:], start=2):
        cells = [cell.strip() for cell in line.split(",")]
        if len(cells) != len(names):
            raise ReproError(
                "%s:%d: expected %d cells, got %d"
                % (path, line_number, len(names), len(cells))
            )
        for name, cell in zip(names, cells):
            try:
                columns[name].append(int(cell))
            except ValueError:
                raise ReproError(
                    "%s:%d: not an integer: %r" % (path, line_number, cell)
                ) from None
    return columns


def _preview(values: np.ndarray, limit: int = 8) -> str:
    shown = ", ".join(str(int(v)) for v in values[:limit])
    if len(values) > limit:
        shown += ", ..."
    return "[%s]" % shown


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
