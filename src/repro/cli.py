"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the common operator flows:

* ``demo``   — a self-contained end-to-end demonstration (synthetic
  data, a query burst, adaptation statistics).
* ``query``  — outsource a numeric column from a file and run range /
  point queries against it.
* ``sql``    — load one or more CSV tables (encrypted by default) and
  execute a SQL statement from the supported subset.
* ``keygen`` — generate a secret key and print its JSON serialization
  (for sharing between trusted clients out of band).

The CLI is a thin shell over the library; every command prints plain
text and returns a process exit code, so it is scriptable.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import OutsourcedDatabase, __version__
from repro.core.encrypted_table import OutsourcedTable
from repro.crypto import generate_key
from repro.crypto.serialization import dumps
from repro.errors import ReproError
from repro.sql import Catalog, execute_sql
from repro.store.table import Table
from repro.workloads.datasets import unique_uniform


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive indexing over encrypted numeric data "
        "(SIGMOD 2016 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version="repro %s" % __version__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run an end-to-end demo")
    demo.add_argument("--rows", type=int, default=10000)
    demo.add_argument("--queries", type=int, default=50)
    demo.add_argument("--ambiguity", action="store_true")
    demo.add_argument("--seed", type=int, default=0)

    query = commands.add_parser(
        "query", help="outsource a column file and run queries"
    )
    query.add_argument("file", help="text file, one integer per line")
    query.add_argument(
        "--range", nargs=2, type=int, action="append", metavar=("LOW", "HIGH"),
        dest="ranges", default=[], help="range query (repeatable)",
    )
    query.add_argument(
        "--point", type=int, action="append", dest="points", default=[],
        help="equality query (repeatable)",
    )
    query.add_argument(
        "--workload", help="replay a JSON workload trace file"
    )
    query.add_argument("--ambiguity", action="store_true")
    query.add_argument("--engine", choices=("adaptive", "scan"),
                       default="adaptive")
    query.add_argument("--seed", type=int, default=0)

    sql = commands.add_parser("sql", help="run SQL over CSV tables")
    sql.add_argument(
        "--table", action="append", dest="tables", default=[],
        metavar="NAME=FILE.csv", required=True,
        help="register a CSV (header row of column names) as a table",
    )
    sql.add_argument("--plaintext", action="store_true",
                     help="keep tables unencrypted (default: encrypted)")
    sql.add_argument("--ambiguity", action="store_true",
                     help="encrypt with counterfeit interpretations")
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument("statement", help="the SELECT statement")

    keygen = commands.add_parser("keygen", help="generate a secret key")
    keygen.add_argument("--length", type=int, default=4)
    keygen.add_argument("--seed", type=int, default=None)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        handler = {
            "demo": _run_demo,
            "query": _run_query,
            "sql": _run_sql,
            "keygen": _run_keygen,
        }[args.command]
        return handler(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


# -- commands -------------------------------------------------------------------


def _run_demo(args) -> int:
    values = unique_uniform(args.rows, seed=args.seed)
    print("encrypting %d values%s..." % (
        args.rows, " with ambiguity" if args.ambiguity else ""))
    tick = time.perf_counter()
    db = OutsourcedDatabase(values, ambiguity=args.ambiguity, seed=args.seed)
    print("  upload ready in %.2fs" % (time.perf_counter() - tick))
    rng = np.random.default_rng(args.seed)
    span = max(1, 2 ** 31 // 100)
    seconds: List[float] = []
    for _ in range(args.queries):
        low = int(rng.integers(0, 2 ** 31 - span))
        tick = time.perf_counter()
        db.query(low, low + span)
        seconds.append(time.perf_counter() - tick)
    print("ran %d random 1%%-selectivity queries" % args.queries)
    print("  first query : %.4fs" % seconds[0])
    print("  last query  : %.4fs" % seconds[-1])
    print("  total       : %.3fs" % sum(seconds))
    print("  crack bounds in the encrypted AVL tree: %d"
          % len(db.server.engine.tree))
    if args.ambiguity:
        rates = [r.false_positive_rate for r in db.client_stats if
                 r.returned_rows]
        if rates:
            print("  counterfeit false-positive rate: %.0f%%"
                  % (100 * float(np.mean(rates))))
    return 0


def _run_query(args) -> int:
    values = _read_column(args.file)
    db = OutsourcedDatabase(
        values, ambiguity=args.ambiguity, engine=args.engine, seed=args.seed
    )
    print("outsourced %d values from %s" % (len(values), args.file))
    for low, high in args.ranges:
        result = db.query(low, high)
        print("range [%d, %d]: %d rows -> %s"
              % (low, high, len(result.values),
                 _preview(np.sort(result.values))))
    for point in args.points:
        result = db.query_point(point)
        print("point %d: %d rows" % (point, len(result.values)))
    if args.workload:
        from repro.workloads.trace import load_workload

        queries = load_workload(args.workload)
        tick = time.perf_counter()
        total_rows = 0
        for trace_query in queries:
            total_rows += len(db.query(*trace_query.as_args()).values)
        print(
            "replayed %d-query trace in %.3fs (%d rows returned)"
            % (len(queries), time.perf_counter() - tick, total_rows)
        )
    if not args.ranges and not args.points and not args.workload:
        print("no queries given; use --range LOW HIGH, --point VALUE, "
              "or --workload TRACE.json")
    return 0


def _run_sql(args) -> int:
    catalog = Catalog()
    for spec in args.tables:
        name, __, path = spec.partition("=")
        if not name or not path:
            raise ReproError("table spec must be NAME=FILE.csv: %r" % spec)
        columns = _read_csv(path)
        if args.plaintext:
            if args.ambiguity:
                raise ReproError("--ambiguity requires encrypted tables")
            catalog.register(name, Table(columns))
        else:
            catalog.register(
                name,
                OutsourcedTable(
                    columns, ambiguity=args.ambiguity, seed=args.seed
                ),
            )
    out = execute_sql(catalog, args.statement)
    names = [name for name in out if name != "logical_ids"]
    widths = {name: max(len(name), 12) for name in names}
    print("  ".join(name.rjust(widths[name]) for name in names))
    print("  ".join("-" * widths[name] for name in names))
    for index in range(len(out["logical_ids"])):
        print("  ".join(
            str(int(out[name][index])).rjust(widths[name]) for name in names
        ))
    print("(%d rows)" % len(out["logical_ids"]))
    return 0


def _run_keygen(args) -> int:
    key = generate_key(length=args.length, seed=args.seed)
    print(dumps(key))
    return 0


# -- input helpers -----------------------------------------------------------------


def _read_column(path: str) -> List[int]:
    """One integer per line; blank lines and '#' comments skipped."""
    values: List[int] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                values.append(int(text))
            except ValueError:
                raise ReproError(
                    "%s:%d: not an integer: %r" % (path, line_number, text)
                ) from None
    if not values:
        raise ReproError("%s contains no values" % path)
    return values


def _read_csv(path: str) -> Dict[str, List[int]]:
    """Header row of column names, integer cells; comma-separated."""
    with open(path) as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if len(lines) < 2:
        raise ReproError("%s needs a header row and at least one data row" % path)
    names = [name.strip() for name in lines[0].split(",")]
    columns: Dict[str, List[int]] = {name: [] for name in names}
    for line_number, line in enumerate(lines[1:], start=2):
        cells = [cell.strip() for cell in line.split(",")]
        if len(cells) != len(names):
            raise ReproError(
                "%s:%d: expected %d cells, got %d"
                % (path, line_number, len(names), len(cells))
            )
        for name, cell in zip(names, cells):
            try:
                columns[name].append(int(cell))
            except ValueError:
                raise ReproError(
                    "%s:%d: not an integer: %r" % (path, line_number, cell)
                ) from None
    return columns


def _preview(values: np.ndarray, limit: int = 8) -> str:
    shown = ", ".join(str(int(v)) for v in values[:limit])
    if len(values) > limit:
        shown += ", ..."
    return "[%s]" % shown


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
