"""Legacy setup shim.

The container has no ``wheel`` package and no network access, so PEP 517
editable installs (which build an editable wheel) are unavailable.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to ``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
