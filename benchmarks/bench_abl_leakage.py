"""Ablation: order leakage by structure (Sections 4.1-4.2).

Paper claims: the index structure progressively reveals order ("the
more refined the tree becomes, the more information it can leak"), but
with ambiguity "the position of a record of interest in the index is
uncertain even when that record of interest is identified".

Measured: the resolved-order fraction over *physical* rows climbs with
the query count for both data types; the fraction of *logical* record
pairs an adversary can resolve under ambiguity stays strictly below
the physical fraction.
"""

import os

from repro.bench.figures import ablation_leakage
from repro.bench.reporting import format_table, save_report

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 400 if FAST else 3000
QUERIES = 60 if FAST else 400
CHECKPOINTS = (1, 5, 10, 25, 50) if FAST else (1, 5, 10, 25, 50, 100, 200, 400)


def test_leakage(benchmark):
    series = ablation_leakage(
        size=SIZE, query_count=QUERIES, checkpoints=CHECKPOINTS, seed=0
    )
    rows = []
    for index, checkpoint in enumerate(sorted(set(CHECKPOINTS))):
        rows.append(
            [
                checkpoint,
                series["encrypted_physical"][index][1],
                series["ambiguous_physical"][index][1],
                series["ambiguous_logical"][index][1],
                series["encrypted_entropy_bits"][index][1],
                series["ambiguous_targeted_entropy_bits"][index][1],
            ]
        )
    report = "Order-leakage ablation (Sections 4.1-4.2)\n" + format_table(
        [
            "queries",
            "resolved frac (encrypted)",
            "resolved frac (ambiguous, physical)",
            "resolved frac (ambiguous, logical)",
            "rank entropy bits (encrypted)",
            "targeted entropy bits (ambiguous)",
        ],
        rows,
    )
    save_report("abl_leakage.txt", report)
    print("\n" + report)

    physical = [value for __, value in series["encrypted_physical"]]
    assert physical == sorted(physical)  # leakage only grows
    assert physical[-1] < 1.0  # never the full order
    for (__, physical_frac), (___, logical_frac) in zip(
        series["ambiguous_physical"], series["ambiguous_logical"]
    ):
        assert logical_frac <= physical_frac
    # Entropy view: residual rank uncertainty decays but a targeted
    # record under ambiguity always keeps at least one bit.
    entropy = [value for __, value in series["encrypted_entropy_bits"]]
    assert entropy == sorted(entropy, reverse=True)
    targeted = [
        value for __, value in series["ambiguous_targeted_entropy_bits"]
    ]
    assert all(bits >= 1.0 for bits in targeted)

    from repro.analysis.leakage import resolved_order_fraction

    boundaries = list(range(0, SIZE + 1, 10))
    benchmark(lambda: resolved_order_fraction(boundaries, SIZE))
