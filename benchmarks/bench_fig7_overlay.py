"""Figure 7: total cumulative time, all data types overlaid.

Paper: one log-scale plot gathering the cumulative curves of plain,
encrypted, and encrypted-with-ambiguity cracking for every size, plus
SecureScan; plain is orders cheaper than encrypted, ambiguity doubles
encrypted, and every cracking curve flattens while SecureScan grows.
"""

import numpy as np

from conftest import DATA_KINDS, QUERY_COUNT, SIZES
from repro.bench.reporting import (
    ascii_chart,
    format_series,
    format_table,
    save_report,
)


def test_figure7(grid_traces, benchmark):
    largest = SIZES[-1]
    columns = {
        kind: grid_traces[(kind, largest)].cumulative().tolist()
        for kind in DATA_KINDS
    }
    xs = list(range(1, QUERY_COUNT + 1))
    series = ascii_chart(
        "Figure 7 (chart): cumulative seconds, log-log (%d rows)" % largest,
        xs,
        columns,
    ) + "\n\n" + format_series(
        "Figure 7: cumulative seconds, all data types (%d rows)" % largest,
        "query",
        xs,
        columns,
    )
    rows = []
    for kind in DATA_KINDS:
        for size in SIZES:
            trace = grid_traces[(kind, size)]
            rows.append(
                [
                    kind,
                    size,
                    trace.total_seconds(),
                    trace.build_seconds,
                ]
            )
    summary = format_table(
        ["data type", "rows", "workload seconds", "build seconds"], rows
    )
    report = series + "\n\nTotals across the grid\n" + summary
    save_report("fig7_overlay.txt", report)
    print("\n" + report)

    # Shape assertions.
    plain = grid_traces[("plain", largest)].total_seconds()
    encrypted = grid_traces[("encrypted", largest)].total_seconds()
    ambiguous = grid_traces[("ambiguous", largest)].total_seconds()
    securescan = grid_traces[("securescan", largest)].total_seconds()
    assert plain < encrypted < securescan
    assert encrypted < ambiguous
    # Ambiguity roughly doubles the data, hence roughly doubles cost
    # (allow a broad band: constant factors differ from C++).
    assert ambiguous < 6 * encrypted
    # SecureScan's tail stays flat (linear cumulative growth) while
    # cracking's tail collapses.
    scan_seconds = grid_traces[("securescan", largest)].seconds
    crack_seconds = grid_traces[("encrypted", largest)].seconds
    tail = slice(-max(5, QUERY_COUNT // 10), None)
    assert np.mean(crack_seconds[tail]) < np.mean(scan_seconds[tail])

    benchmark(lambda: [t.cumulative() for t in grid_traces.values()])
