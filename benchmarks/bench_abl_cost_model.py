"""Ablation: the analytic convergence model vs exact counters.

Cracking is an incremental quicksort (paper, §4.1), so its per-query
cost has a closed first-order form: ``~2N/q`` rows classified by query
``q``, harmonic cumulative cost ``~2N ln q``.  The engines count
comparisons exactly (machine-independently), so the model is checked
against ground truth rather than wall-clock noise.  This is the
analytic backbone behind the Figure 6 flattening.
"""

import os

import numpy as np

from repro.bench.cost_model import (
    expected_cumulative_comparisons,
    measure_against_model,
    model_accuracy,
)
from repro.bench.reporting import ascii_chart, format_table, save_report

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 2000 if FAST else 20000
QUERIES = 50 if FAST else 300


def test_cost_model(benchmark):
    series = measure_against_model(
        column_size=SIZE, query_count=QUERIES, seed=0
    )
    accuracy = model_accuracy(series)
    measured_total = float(np.sum(series["measured"]))
    predicted_total = expected_cumulative_comparisons(SIZE, QUERIES)

    sample_rows = []
    for q in (1, 2, 5, 10, QUERIES // 4, QUERIES // 2, QUERIES):
        sample_rows.append(
            [q, series["measured"][q - 1], series["predicted"][q - 1]]
        )
    chart = ascii_chart(
        "Crack cost per query: measured vs 2N/q model (log-log)",
        series["query"],
        {"measured": series["measured"], "model 2N/q": series["predicted"]},
    )
    report = (
        "Cost-model ablation (%d rows, %d queries)\n" % (SIZE, QUERIES)
        + format_table(
            ["query", "measured rows classified", "model 2N/q"], sample_rows
        )
        + "\n\nmodel accuracy (median |log2 measured/model|): %.3f" % accuracy
        + "\ncumulative: measured %.0f vs model %.0f"
        % (measured_total, predicted_total)
        + "\n\n" + chart
    )
    save_report("abl_cost_model.txt", report)
    print("\n" + report)

    # Window-averaged per-query costs track the model within a factor
    # of two (|log2 ratio| <= 1), and cumulative within a factor 2.
    assert accuracy <= 1.0
    assert predicted_total / 2 <= measured_total <= predicted_total * 2

    benchmark(lambda: model_accuracy(series))
