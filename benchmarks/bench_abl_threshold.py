"""Ablation: the piece-size cracking threshold (Section 2.2).

Paper claims: "queries only cause reorganization for data pieces
larger than a size threshold; that threshold can be bigger (e.g., L3
cache size) without a significant performance drop" — and the
threshold is what prevents the index from ever leaking the total
order.

Measured: growing the threshold shrinks the cracker tree and caps the
resolved-order fraction, while total workload time stays within a
small factor of always-crack.
"""

import os

from repro.bench.figures import ablation_threshold
from repro.bench.reporting import format_table, save_report

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 2000 if FAST else 20000
QUERIES = 50 if FAST else 300
THRESHOLDS = (1, 64, 512) if FAST else (1, 64, 256, 1024, 4096)


def test_threshold(benchmark):
    out = ablation_threshold(
        size=SIZE, thresholds=THRESHOLDS, query_count=QUERIES, seed=0
    )
    rows = [
        [
            threshold,
            out[threshold]["total_seconds"],
            int(out[threshold]["tree_nodes"]),
            out[threshold]["resolved_order_fraction"],
        ]
        for threshold in THRESHOLDS
    ]
    report = "Piece-size threshold ablation (Section 2.2)\n" + format_table(
        ["min piece size", "workload seconds", "tree nodes", "resolved order"],
        rows,
    )
    save_report("abl_threshold.txt", report)
    print("\n" + report)

    nodes = [out[t]["tree_nodes"] for t in THRESHOLDS]
    assert nodes == sorted(nodes, reverse=True)
    leak = [out[t]["resolved_order_fraction"] for t in THRESHOLDS]
    assert leak[-1] < leak[0]
    # "Without a significant performance drop": the largest threshold
    # stays within an order of magnitude of always-crack.
    assert out[THRESHOLDS[-1]]["total_seconds"] < 10 * max(
        out[THRESHOLDS[0]]["total_seconds"], 1e-3
    )

    from repro.cracking.index import AdaptiveIndex
    from repro.workloads.datasets import unique_uniform

    engine = AdaptiveIndex(unique_uniform(SIZE, seed=1), min_piece_size=256)
    benchmark(lambda: engine.query(0, 2 ** 29))
