"""Ablation: data-distribution robustness of the secure engine.

The paper evaluates unique uniform data; real columns carry
duplicates, skew, and pre-sorted runs.  This ablation replays the
default workload over four data shapes and checks that the secure
cracking engine (a) stays correct, (b) still converges, and (c) keeps
beating SecureScan — i.e. the headline result is not an artefact of
the uniform-unique dataset.
"""

import os

import numpy as np

from repro.bench.harness import build_session, run_session_sequence
from repro.bench.reporting import format_table, save_report
from repro.workloads.datasets import (
    clustered,
    uniform_with_duplicates,
    unique_uniform,
    zipfian,
)
from repro.workloads.generators import random_workload

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 500 if FAST else 5000
QUERIES = 20 if FAST else 150
DOMAIN = (0, 2 ** 31)


def datasets():
    return {
        "unique_uniform": unique_uniform(SIZE, DOMAIN, seed=0),
        "heavy_duplicates": uniform_with_duplicates(
            SIZE, distinct=max(8, SIZE // 50), domain=DOMAIN, seed=1
        ),
        "zipfian": zipfian(SIZE, exponent=1.4,
                           distinct=max(8, SIZE // 20), domain=DOMAIN, seed=2),
        "clustered_runs": clustered(SIZE, runs=8, domain=DOMAIN, seed=3),
    }


def test_robustness(benchmark):
    queries = random_workload(QUERIES, DOMAIN, selectivity=0.01, seed=4)
    rows = []
    for name, values in datasets().items():
        cracking = build_session(values, "encrypted", seed=5)
        scanning = build_session(values, "securescan", seed=5)
        crack_trace = run_session_sequence(cracking, queries)
        scan_trace = run_session_sequence(scanning, queries)
        # Correctness against a plaintext reference, per dataset.
        reference = np.asarray(values)
        probe = queries[0]
        result = cracking.query(*probe.as_args())
        expected = np.flatnonzero(
            (reference >= probe.low) & (reference <= probe.high)
        )
        assert np.array_equal(np.sort(result.logical_ids), expected), name
        cracking.server.engine.check_invariants()
        early = float(np.mean(crack_trace.seconds[:3]))
        late = float(np.mean(crack_trace.seconds[-QUERIES // 5:]))
        rows.append(
            [
                name,
                crack_trace.total_seconds(),
                scan_trace.total_seconds(),
                early,
                late,
            ]
        )
        # Convergence and the headline result, per dataset.  At the
        # smoke scale the workload is too short for cracking to
        # amortise, so the crossover assertion only runs at full scale.
        assert late < early, name
        if not FAST:
            assert crack_trace.total_seconds() < scan_trace.total_seconds(), name
    report = (
        "Data-distribution robustness (%d rows, %d queries)\n"
        % (SIZE, QUERIES)
        + format_table(
            [
                "dataset",
                "cracking workload s",
                "securescan workload s",
                "early per-query s",
                "late per-query s",
            ],
            rows,
        )
    )
    save_report("abl_robustness.txt", report)
    print("\n" + report)

    values = datasets()["heavy_duplicates"]
    session = build_session(values, "encrypted", seed=6)
    probe = queries[0]
    benchmark(lambda: session.query(*probe.as_args()))
