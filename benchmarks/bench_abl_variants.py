"""Ablation: the adaptive-indexing family, side by side.

Section 2.2 enumerates the variant space ("numerous algorithms have
been proposed ..."); this ablation races every plaintext variant this
repository implements over the default workload:

* query-bound cracking (the paper's basic design),
* three-way cracking,
* stochastic (random-pivot) cracking,
* hybrid crack-sort (sort pieces on first touch),
* adaptive merging,
* full scan and sort-once as the brackets.

Measured: total workload time, rows physically reorganised, and —
because the variants trade convergence speed against order leakage —
the resolved-order fraction each one ends at.
"""

import os

import numpy as np

from repro.analysis.leakage import resolved_order_fraction
from repro.bench.harness import build_plain_engine, run_plain_sequence
from repro.bench.reporting import format_table, save_report
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import random_workload

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 3000 if FAST else 50000
QUERIES = 40 if FAST else 400
DOMAIN = (0, 2 ** 31)

VARIANTS = {
    "cracking": ("adaptive", {}),
    "cracking_threeway": ("adaptive", {"use_three_way": True}),
    "cracking_threshold": ("adaptive", {"min_piece_size": 1024}),
    "stochastic": ("stochastic", {"ddr_piece_limit": 4096, "seed": 0}),
    "sort_touch": ("sort_touch", {"sort_threshold": 4096}),
    "adaptive_merging": ("merging", {"run_count": 16}),
    "full_scan": ("scan", {}),
    "sort_once": ("sort", {}),
}


def _leakage(name, engine) -> float:
    if hasattr(engine, "piece_boundaries"):
        boundaries = set(engine.piece_boundaries())
        if name == "sort_touch":
            for lo, hi in engine._sorted_ranges:
                boundaries.update(range(lo, hi + 1))
        return resolved_order_fraction(sorted(boundaries), len(engine))
    if name in ("sort_once", "adaptive_merging"):
        return 1.0  # total order known (sorted structures)
    return 0.0  # full scan builds nothing


def test_variants(benchmark):
    values = unique_uniform(SIZE, DOMAIN, seed=0)
    queries = random_workload(QUERIES, DOMAIN, selectivity=0.01, seed=1)
    reference = None
    rows = []
    for name, (kind, kwargs) in VARIANTS.items():
        engine = build_plain_engine(values, kind=kind, **kwargs)
        trace = run_plain_sequence(engine, queries)
        result = np.sort(engine.query(*queries[0].as_args()))
        if reference is None:
            reference = result
        assert np.array_equal(result, reference), name
        moved = sum(
            getattr(s, "cracked_rows", 0) for s in engine.stats_log
        )
        rows.append(
            [
                name,
                getattr(engine, "build_seconds", 0.0),
                trace.total_seconds(),
                moved,
                _leakage(name, engine),
            ]
        )
    report = (
        "Adaptive-indexing variants (%d rows, %d queries)\n" % (SIZE, QUERIES)
        + format_table(
            ["variant", "build s", "workload s", "rows reorganised",
             "resolved order"],
            rows,
        )
    )
    save_report("abl_variants.txt", report)
    print("\n" + report)

    by_name = {row[0]: row for row in rows}
    # The paper's design point: basic cracking needs no build time...
    assert by_name["cracking"][1] == 0.0
    # ...sort-once and merging pay up front...
    assert by_name["sort_once"][1] > 0 or by_name["adaptive_merging"][1] > 0
    # ...the threshold variant leaks strictly less order than plain...
    assert by_name["cracking_threshold"][4] < by_name["cracking"][4]
    # ...and sort-touch leaks more (its pieces are internally sorted).
    assert by_name["sort_touch"][4] >= by_name["cracking"][4]

    engine = build_plain_engine(values, kind="adaptive")
    probe = queries[0]
    benchmark(lambda: engine.query(*probe.as_args()))
