"""Ablation: the Section 3.5 attacks, executed per key size.

Paper claims: (i) the noise layer alone falls to a C(l,2)-hypothesis
known-ciphertext search ("easy to break ... in polynomial time");
(ii) the full scheme falls to O(l) known plaintext-ciphertext pairs
("security ... strongly depends on the chosen ciphertext size l").

Measured here: (i) holds exactly; (ii) holds for *value* ciphertexts
(pairs needed grow ~2l); bound ciphertexts are weaker than the paper's
sketch — a constant ~3 pairs suffice at any l (their noise dimension
is one).  See EXPERIMENTS.md for the discussion.
"""

import os

from repro.bench.figures import ablation_attacks
from repro.bench.reporting import format_table, save_report

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
KEY_LENGTHS = (3, 4, 6) if FAST else (3, 4, 6, 8, 12, 16)


def test_attacks(benchmark):
    rows = ablation_attacks(key_lengths=KEY_LENGTHS, seed=0)
    table = format_table(
        [
            "key size l",
            "noise hypotheses C(l,2)",
            "positions recovered",
            "bound pairs to break",
            "value pairs to break",
        ],
        [
            [
                row["key_length"],
                row["noise_hypotheses"],
                row["noise_positions_recovered"],
                row["bound_pairs_to_break"],
                row["value_pairs_to_break"],
            ]
            for row in rows
        ],
    )
    report = "Attack ablation (Section 3.5)\n" + table
    save_report("abl_attacks.txt", report)
    print("\n" + report)

    for row in rows:
        length = row["key_length"]
        assert row["noise_hypotheses"] == length * (length - 1) // 2
        assert row["noise_positions_recovered"]
        assert row["bound_pairs_to_break"] is not None
        assert row["bound_pairs_to_break"] <= 5
        assert row["value_pairs_to_break"] is not None
    value_pairs = [row["value_pairs_to_break"] for row in rows]
    # O(l): strictly more pairs needed as l grows (beyond l = 4).
    assert value_pairs[-1] > value_pairs[1]

    from repro.crypto.attacks import recover_payload_positions
    from repro.crypto.key import generate_key
    from repro.crypto.scheme import Encryptor
    import random

    key = generate_key(8, seed=1)
    encryptor = Encryptor(key, seed=2)
    rng = random.Random(3)
    observations = [
        (
            encryptor.bound_pre_image(
                encryptor.encrypt_bound(rng.randrange(2 ** 31))
            ),
            encryptor.pre_image(
                encryptor.encrypt_value(rng.randrange(2 ** 31))
            )[0],
        )
        for _ in range(6)
    ]
    benchmark(lambda: recover_payload_positions(observations))
