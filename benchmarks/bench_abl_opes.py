"""Ablation: the paper's scheme vs OPES (Section 2.1's alternative).

Paper position: OPES "delivers encrypted values in sortable form" —
maximum indexing convenience, maximum leakage ("reveals the data
order, hence cannot overcome attacks based on statistical analysis").
The paper's scheme trades some performance for revealing order only
where queries force it.

Measured here: OPES answers queries in microseconds (sort once, binary
search forever) but its resolved-order fraction is 1.0 *before the
first query*; secure cracking pays more per query early, amortises,
and its leakage climbs only with the workload and stays capped by the
piece threshold.
"""

import os

import numpy as np

from repro.analysis.leakage import resolved_order_fraction
from repro.bench.harness import build_session
from repro.bench.reporting import format_table, save_report
from repro.core.opes_index import OpesOutsourcedDatabase
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import random_workload

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 1000 if FAST else 10000
QUERIES = 30 if FAST else 200
DOMAIN = (0, 2 ** 31)


def test_opes_comparison(benchmark):
    values = unique_uniform(SIZE, DOMAIN, seed=0)
    queries = random_workload(QUERIES, DOMAIN, selectivity=0.01, seed=1)

    secure = build_session(values, "encrypted", seed=2,
                           min_piece_size=max(16, SIZE // 64))
    opes = OpesOutsourcedDatabase(values, seed=2)

    import time

    secure_seconds = []
    for query in queries:
        tick = time.perf_counter()
        secure.query(*query.as_args())
        secure_seconds.append(time.perf_counter() - tick)
    opes_seconds = []
    for query in queries:
        tick = time.perf_counter()
        opes.query(*query.as_args())
        opes_seconds.append(time.perf_counter() - tick)

    secure_leak = resolved_order_fraction(
        secure.server.engine.piece_boundaries(),
        len(secure.server.engine.column),
    )
    opes_leak = resolved_order_fraction(
        opes.server.piece_boundaries(), len(opes)
    )
    rows = [
        [
            "secure cracking",
            secure.build_seconds,
            secure_seconds[0],
            float(np.sum(secure_seconds)),
            secure_leak,
            "grows with queries, capped by threshold",
        ],
        [
            "OPES sort-once",
            opes.encrypt_seconds + opes.server.build_seconds,
            opes_seconds[0],
            float(np.sum(opes_seconds)),
            opes_leak,
            "total order public at load time",
        ],
    ]
    report = (
        "OPES ablation: performance vs order leakage (%d rows, %d queries)\n"
        % (SIZE, QUERIES)
        + format_table(
            [
                "system",
                "build s",
                "first query s",
                "workload s",
                "resolved order",
                "leakage behaviour",
            ],
            rows,
        )
    )
    save_report("abl_opes.txt", report)
    print("\n" + report)

    # OPES server work (binary searches) is far cheaper than secure
    # cracking's scalar-product reorganisation...
    opes_server = sum(s.total_seconds for s in opes.server.stats_log)
    secure_server = sum(
        s.total_seconds for s in secure.server.engine.stats_log
    )
    assert opes_server < secure_server
    # ...because it leaks everything before doing any work.
    assert opes_leak == 1.0
    assert secure_leak < 1.0

    probe = queries[0]
    benchmark(lambda: opes.query(*probe.as_args()))
