"""Micro-benchmark for the two-tier scalar-product kernel.

Compares kernel-on (int64 fast path when the magnitude bound proves
products cannot overflow) against kernel-off (exact object-dtype
matmul, the seed behaviour) on two levels:

* ``products`` — raw scalar products over a 100K-row int64-safe
  encrypted column, the primitive every crack/scan/route reduces to;
* the Figure 9 workload — a random 1%-selectivity query sequence
  replayed against :class:`SecureAdaptiveIndex`, with kernel tier and
  product-cache counters.

Emits machine-readable ``BENCH_kernel.json`` under
``benchmarks/results/`` (plus a text summary on stdout).

Run standalone (``python benchmarks/bench_kernel.py [--smoke]``,
``REPRO_BENCH_FAST=1`` also selects smoke scale) or through pytest
(``pytest benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.bench.reporting import RESULTS_DIR
from repro.core.encrypted_column import EncryptedColumn
from repro.core.query import EncryptedBound, EncryptedQuery
from repro.core.secure_index import SecureAdaptiveIndex
from repro.crypto.ciphertext import BoundCiphertext, ValueCiphertext
from repro.crypto.key import generate_key
from repro.crypto.scheme import Encryptor
from repro.linalg.kernels import kernel_disabled
from repro.workloads.generators import random_workload

SMOKE = os.environ.get("REPRO_BENCH_FAST") == "1"

#: Encryption parameters small enough that every ``Eb . Ev`` product of
#: the workload provably fits int64 (the regime the fast tier targets;
#: the default 2**16 parameters overflow and take the exact tier).
COMPACT_PARAMS = dict(multiplier_bound=4, noise_magnitude=4)


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def bench_products(rows: int, length: int, repeats: int) -> dict:
    """Raw ``products`` over an int64-safe column, kernel on vs off."""
    rng = random.Random(7)
    column = EncryptedColumn(
        [
            ValueCiphertext(
                tuple(rng.randint(-(2 ** 20), 2 ** 20) for _ in range(length))
            )
            for _ in range(rows)
        ]
    )
    bound = BoundCiphertext(
        tuple(rng.randint(-(2 ** 20), 2 ** 20) for _ in range(length))
    )
    column.products(0, rows, bound)  # warm the int64 mirror
    on_seconds = _best_of(repeats, lambda: column.products(0, rows, bound))
    with kernel_disabled():
        off_seconds = _best_of(repeats, lambda: column.products(0, rows, bound))
    return {
        "rows": rows,
        "length": length,
        "repeats": repeats,
        "kernel_on_seconds": on_seconds,
        "kernel_off_seconds": off_seconds,
        "speedup": off_seconds / on_seconds if on_seconds else float("inf"),
        "fast_products": column.kernel_counters.fast_products,
        "exact_products": column.kernel_counters.exact_products,
    }


def _run_workload(values, queries, encryptor, min_piece_size):
    column = EncryptedColumn([encryptor.encrypt_value(v) for v in values])
    engine = SecureAdaptiveIndex(column, min_piece_size=min_piece_size)
    tick = time.perf_counter()
    for query in queries:
        engine.query(
            EncryptedQuery(
                low=EncryptedBound(
                    eb=encryptor.encrypt_bound(query.low),
                    ev=encryptor.encrypt_value(query.low),
                ),
                high=EncryptedBound(
                    eb=encryptor.encrypt_bound(query.high),
                    ev=encryptor.encrypt_value(query.high),
                ),
                low_inclusive=query.low_inclusive,
                high_inclusive=query.high_inclusive,
            )
        )
    elapsed = time.perf_counter() - tick
    stats = engine.stats_log
    return elapsed, {
        "seconds": elapsed,
        "fast_products": sum(s.kernel_fast_products for s in stats),
        "exact_products": sum(s.kernel_exact_products for s in stats),
        "cache_hits": sum(s.product_cache_hits for s in stats),
        "result_rows": sum(s.result_count for s in stats),
    }


def bench_workload(size: int, query_count: int, min_piece_size: int) -> dict:
    """Figure 9 workload (random 1%-selectivity ranges), kernel on/off."""
    domain = (0, size)
    values = [int(v) for v in np.random.default_rng(11).permutation(size)]
    queries = random_workload(query_count, domain, selectivity=0.01, seed=13)
    key = generate_key(length=4, seed=3)
    encryptor = Encryptor(key, seed=4, **COMPACT_PARAMS)
    __, on = _run_workload(values, queries, encryptor, min_piece_size)
    encryptor = Encryptor(key, seed=4, **COMPACT_PARAMS)
    with kernel_disabled():
        __, off = _run_workload(values, queries, encryptor, min_piece_size)
    assert on["result_rows"] == off["result_rows"]
    return {
        "size": size,
        "queries": query_count,
        "min_piece_size": min_piece_size,
        "selectivity": 0.01,
        "kernel_on": on,
        "kernel_off": off,
        "speedup": off["seconds"] / on["seconds"] if on["seconds"] else float("inf"),
    }


def main(smoke: bool = SMOKE, output: str = None) -> dict:
    if smoke:
        products = bench_products(rows=10_000, length=4, repeats=3)
        workload = bench_workload(size=1_000, query_count=60, min_piece_size=16)
    else:
        products = bench_products(rows=100_000, length=4, repeats=5)
        workload = bench_workload(size=8_000, query_count=200, min_piece_size=32)
    report = {
        "benchmark": "kernel",
        "mode": "smoke" if smoke else "full",
        "products": products,
        "fig9_workload": workload,
    }
    if output is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        output = os.path.join(RESULTS_DIR, "BENCH_kernel.json")
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(
        "products (%d rows): kernel-on %.4fs  kernel-off %.4fs  speedup %.1fx"
        % (
            products["rows"],
            products["kernel_on_seconds"],
            products["kernel_off_seconds"],
            products["speedup"],
        )
    )
    print(
        "fig9 workload (%d rows, %d queries): kernel-on %.3fs  kernel-off %.3fs"
        "  speedup %.2fx  (fast %d / exact %d products, %d cache hits)"
        % (
            workload["size"],
            workload["queries"],
            workload["kernel_on"]["seconds"],
            workload["kernel_off"]["seconds"],
            workload["speedup"],
            workload["kernel_on"]["fast_products"],
            workload["kernel_on"]["exact_products"],
            workload["kernel_on"]["cache_hits"],
        )
    )
    print("wrote %s" % output)
    return report


def test_kernel_benchmark():
    """Pytest entry point: the kernel must beat the exact path >= 3x."""
    report = main(smoke=SMOKE)
    assert report["products"]["speedup"] >= 3.0
    assert report["products"]["fast_products"] > 0
    assert report["fig9_workload"]["kernel_on"]["fast_products"] > 0


if __name__ == "__main__":
    main(smoke=SMOKE or "--smoke" in sys.argv[1:])
