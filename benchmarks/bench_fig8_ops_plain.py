"""Figure 8: per-operation cost per query, plain data.

Paper: the crack operation dominates early and becomes progressively
cheaper; AVL insert and search cost microseconds throughout; for small
sizes crack eventually drops under insert/search within the workload.
"""

import numpy as np

from conftest import QUERY_COUNT, SIZES
from repro.bench.reporting import format_series, save_report


def render_ops(traces, kind, sizes, query_count):
    """Common renderer for Figures 8-10."""
    sections = []
    for size in sizes:
        trace = traces[(kind, size)]
        columns = {
            "crack": trace.crack_seconds,
            "search": trace.search_seconds,
            "insert": trace.insert_seconds,
            "scan": trace.scan_seconds,
        }
        xs = list(range(1, query_count + 1))
        sections.append(
            format_series(
                "Figure ops (%s, %d rows): seconds per operation per query"
                % (kind, size),
                "query",
                xs,
                columns,
            )
        )
    return "\n\n".join(sections)


def test_figure8(grid_traces, benchmark):
    report = render_ops(grid_traces, "plain", SIZES, QUERY_COUNT)
    save_report("fig8_ops_plain.txt", report)
    print("\n" + report)

    for size in SIZES:
        trace = grid_traces[("plain", size)]
        early_crack = float(np.mean(trace.crack_seconds[:5]))
        late_crack = float(np.mean(trace.crack_seconds[-QUERY_COUNT // 5:]))
        # Crack cost decays sharply over the sequence.
        assert late_crack < early_crack
        # Early cracking dominates search/insert by a wide margin.
        assert early_crack > 3 * float(np.mean(trace.search_seconds[:5]))

    from repro.cracking.index import AdaptiveIndex
    from repro.workloads.datasets import unique_uniform

    engine = AdaptiveIndex(unique_uniform(SIZES[-1], seed=4))
    benchmark(lambda: engine.query(10, 2 ** 30))
