"""Ablation: skewed workloads — the index follows the queries.

The adaptive-indexing promise the paper leads with: "only those data
which are queried get indexed".  Under a hot/cold workload (most
queries in a small value region) the secure engine should concentrate
its crack bounds in the hot region, answer hot queries at converged
cost, and — the security dividend — leave the cold region's order
unrevealed.
"""

import os

import numpy as np

from repro.analysis.leakage import piece_index_per_row, resolved_order_fraction
from repro.bench.harness import build_session, run_session_sequence
from repro.bench.reporting import format_table, save_report
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import skewed_workload

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 800 if FAST else 8000
QUERIES = 30 if FAST else 250
DOMAIN = (0, 2 ** 31)
HOT_FRACTION = 0.05


def test_hot_cold(benchmark):
    values = unique_uniform(SIZE, DOMAIN, seed=0)
    queries = skewed_workload(
        QUERIES, DOMAIN, selectivity=0.01,
        hot_fraction=HOT_FRACTION, hot_probability=0.95, seed=1,
    )
    session = build_session(values, "encrypted", seed=2)
    trace = run_session_sequence(session, queries)
    engine = session.server.engine

    # Where did the crack bounds land?  Hot-region values occupy the
    # first ~5% of the domain; count bounds whose position falls among
    # the hot rows.
    hot_cutoff_value = DOMAIN[0] + int((DOMAIN[1] - DOMAIN[0]) * HOT_FRACTION)
    hot_rows = int(np.count_nonzero(values <= hot_cutoff_value + 2 ** 26))
    boundaries = engine.piece_boundaries()
    interior = [b for b in boundaries if 0 < b < len(engine)]
    hot_bounds = sum(1 for b in interior if b <= hot_rows + SIZE // 20)
    # Order leakage inside vs outside the hot region: pieces covering
    # the cold region stay huge.
    pieces = np.diff(boundaries)
    largest_piece = int(pieces.max())
    total_leak = resolved_order_fraction(boundaries, len(engine))

    rows = [
        ["crack bounds total", len(interior)],
        ["crack bounds in hot region", hot_bounds],
        ["largest surviving (cold) piece", largest_piece],
        ["resolved-order fraction overall", total_leak],
        ["early per-query s", float(np.mean(trace.seconds[:3]))],
        ["late per-query s", float(np.mean(trace.seconds[-QUERIES // 5:]))],
    ]
    report = (
        "Hot/cold workload ablation (%d rows, %d queries, hot=%d%%)\n"
        % (SIZE, QUERIES, int(100 * HOT_FRACTION))
        + format_table(["metric", "value"], rows)
    )
    save_report("abl_hot_cold.txt", report)
    print("\n" + report)

    # The index concentrates where the queries are...
    assert hot_bounds >= 0.6 * len(interior)
    # ...the cold majority stays in coarse pieces (order unrevealed;
    # the ~5% cold queries still carve the cold region a little, so
    # the bound is an eighth of it rather than a quarter)...
    assert largest_piece > (SIZE - hot_rows) / 8
    # ...and the hot path converges.
    assert float(np.mean(trace.seconds[-QUERIES // 5:])) < float(
        np.mean(trace.seconds[:3])
    )

    probe = queries[0]
    benchmark(lambda: session.query(*probe.as_args()))
