"""Ablation: stochastic cracking on an adversarial sequential sweep.

Paper context: the paper builds on basic cracking "without loss of
generality" and cites stochastic cracking [20] as the robustness
variant; Section 5.5 notes that under encryption, pivots can only come
from the client ("relying on encrypted pivot values provided by the
client").

Measured: on a sequential sweep, DDR random pivots (plain) and
client-supplied jitter pivots (encrypted) cut the rows touched by
cracking versus query-bound-only cracking.
"""

import os

import numpy as np

from repro.bench.figures import ablation_stochastic
from repro.bench.reporting import format_table, save_report

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 2000 if FAST else 20000
QUERIES = 40 if FAST else 300


def test_stochastic(benchmark):
    out = ablation_stochastic(size=SIZE, query_count=QUERIES, seed=0)
    rows = [
        [
            name,
            trace.total_seconds(),
            sum(1 for s in trace.crack_seconds if s > 0),
            float(np.sum(trace.crack_seconds)),
        ]
        for name, trace in out.items()
    ]
    report = (
        "Stochastic cracking ablation (sequential sweep)\n"
        + format_table(
            ["engine", "workload seconds", "queries that cracked",
             "total crack seconds"],
            rows,
        )
    )
    save_report("abl_stochastic.txt", report)
    print("\n" + report)

    # Random pivots beat bound-only cracking on the hostile sweep
    # (excluding the first few queries, which pay the pivot cost).
    plain_tail = float(np.sum(out["plain_cracking"].crack_seconds[5:]))
    stochastic_tail = float(np.sum(out["plain_stochastic"].crack_seconds[5:]))
    assert stochastic_tail < plain_tail
    jitter_tail = float(np.sum(out["encrypted_jitter"].crack_seconds[5:]))
    encrypted_tail = float(np.sum(out["encrypted_cracking"].crack_seconds[5:]))
    assert jitter_tail < encrypted_tail

    from repro.cracking.stochastic import StochasticAdaptiveIndex
    from repro.workloads.datasets import unique_uniform

    engine = StochasticAdaptiveIndex(
        unique_uniform(SIZE, seed=1), ddr_piece_limit=SIZE // 8, seed=1
    )
    benchmark(lambda: engine.query(0, 2 ** 28))
