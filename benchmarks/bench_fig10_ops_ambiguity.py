"""Figure 10: per-operation cost per query, encrypted with ambiguity.

Paper: same trends as encrypted data with higher cracking peaks early
(physical reorganisation also moves the fake interpretations — the
column is twice as long); crack cost still collapses as the workload
evolves, with some fluctuation depending on where query bounds fall.
"""

import numpy as np

from bench_fig8_ops_plain import render_ops
from conftest import QUERY_COUNT, SIZES
from repro.bench.reporting import save_report


def test_figure10(grid_traces, benchmark):
    report = render_ops(grid_traces, "ambiguous", SIZES, QUERY_COUNT)
    save_report("fig10_ops_ambiguity.txt", report)
    print("\n" + report)

    for size in SIZES:
        ambiguous = grid_traces[("ambiguous", size)]
        encrypted = grid_traces[("encrypted", size)]
        early_ambiguous = float(np.mean(ambiguous.crack_seconds[:5]))
        early_encrypted = float(np.mean(encrypted.crack_seconds[:5]))
        # Ambiguity doubles the rows to reorganise: early cracks cost
        # more than without ambiguity.
        assert early_ambiguous > early_encrypted
        late = float(np.mean(ambiguous.crack_seconds[-QUERY_COUNT // 5:]))
        assert late < early_ambiguous

    from repro.bench.harness import build_session
    from repro.workloads.datasets import unique_uniform

    session = build_session(
        unique_uniform(SIZES[0], seed=6), "ambiguous", seed=6
    )
    benchmark(lambda: session.query(10, 2 ** 30))
