"""Transport-seam cost: loopback vs TCP for the Fig 9 query loop.

The refactored client/server seam encodes every message to a frame even
in-process, so the protocol itself now has a measurable price.  This
benchmark runs the same random-range workload through both transports
against the same data and reports:

* per-query latency (mean over the loop, after the upload);
* exact workload bytes in both directions — identical across
  transports by construction (frames are deterministic), asserted here;
* the loopback-vs-TCP latency gap, i.e. what a real socket adds on top
  of the protocol encode/decode cost.

Emits ``BENCH_transport.json`` under ``benchmarks/results/``.

Run standalone (``python benchmarks/bench_transport.py [--smoke]``,
``REPRO_BENCH_FAST=1`` also selects smoke scale) or through pytest
(``pytest benchmarks/bench_transport.py``).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.bench.reporting import RESULTS_DIR
from repro.core.session import OutsourcedDatabase
from repro.net import TcpTransport, serve
from repro.workloads.generators import random_workload

SMOKE = os.environ.get("REPRO_BENCH_FAST") == "1"


def run_transport(values, queries, transport=None, column="values") -> dict:
    """One full workload over one transport; returns timing + bytes."""
    tick = time.perf_counter()
    db = OutsourcedDatabase(
        values, seed=29, min_piece_size=8, transport=transport, column=column
    )
    upload_seconds = time.perf_counter() - tick
    row_ids = []
    tick = time.perf_counter()
    for query in queries:
        result = db.query(*query.as_args())
        row_ids.append(sorted(int(i) for i in result.logical_ids))
    query_seconds = time.perf_counter() - tick
    return {
        "upload_seconds": upload_seconds,
        "query_seconds": query_seconds,
        "seconds_per_query": query_seconds / len(queries),
        "round_trips": db.round_trips,
        "bytes_sent": db.bytes_sent,
        "bytes_received": db.bytes_received,
        "row_ids": row_ids,
    }


def bench(size: int, query_count: int) -> dict:
    values = [int(v) for v in np.random.default_rng(31).permutation(size)]
    queries = random_workload(query_count, (0, size), selectivity=0.01, seed=37)

    loopback = run_transport(values, queries)

    endpoint = serve()
    thread = threading.Thread(target=endpoint.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = endpoint.server_address
        with TcpTransport(host, port) as transport:
            tcp = run_transport(values, queries, transport=transport)
    finally:
        endpoint.stop()
        thread.join(timeout=5)

    assert loopback["row_ids"] == tcp["row_ids"], "transports disagree"
    assert loopback["bytes_sent"] == tcp["bytes_sent"]
    assert loopback["bytes_received"] == tcp["bytes_received"]
    for entry in (loopback, tcp):
        del entry["row_ids"]
    return {
        "size": size,
        "queries": query_count,
        "loopback": loopback,
        "tcp": tcp,
        "tcp_slowdown": (
            tcp["seconds_per_query"] / loopback["seconds_per_query"]
            if loopback["seconds_per_query"]
            else 0.0
        ),
    }


def main(smoke: bool = SMOKE, output: str = None) -> dict:
    if smoke:
        result = bench(size=1_000, query_count=25)
    else:
        result = bench(size=8_000, query_count=120)
    report = {
        "benchmark": "transport",
        "mode": "smoke" if smoke else "full",
        **result,
    }
    if output is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        output = os.path.join(RESULTS_DIR, "BENCH_transport.json")
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    for name in ("loopback", "tcp"):
        entry = report[name]
        print(
            "%-8s upload %.3fs  %.2f ms/query  %d sent / %d received bytes"
            % (
                name,
                entry["upload_seconds"],
                1e3 * entry["seconds_per_query"],
                entry["bytes_sent"],
                entry["bytes_received"],
            )
        )
    print("tcp slowdown: %.2fx" % report["tcp_slowdown"])
    print("wrote %s" % output)
    return report


def test_transport_bench():
    """Pytest entry point: both transports agree, bytes are identical."""
    report = main(smoke=True)
    assert report["loopback"]["round_trips"] == report["tcp"]["round_trips"]
    assert report["loopback"]["bytes_sent"] == report["tcp"]["bytes_sent"]
    assert report["tcp"]["seconds_per_query"] > 0


if __name__ == "__main__":
    sys.exit(0 if main(smoke=SMOKE or "--smoke" in sys.argv[1:]) else 1)
