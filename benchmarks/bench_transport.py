"""Transport-seam cost: codecs and batching for the Fig 9 query loop.

The refactored client/server seam encodes every message to a frame even
in-process, so the protocol itself has a measurable price.  This
benchmark runs the same random-range workload through the transport and
codec matrix — loopback vs TCP, JSON vs binary frames, sequential vs
pipelined batches — against the same data and reports:

* per-query latency (mean over the loop, after the upload);
* exact workload bytes in both directions — identical across
  *transports* for the same codec (frames are deterministic, asserted
  here), and the binary/JSON byte ratio (the codec's reduction factor,
  asserted >= 2x);
* the loopback-vs-TCP latency gap, and the speedup from shipping the
  workload in pipelined ``batch_request`` frames over TCP;
* a durability matrix — acked-insert throughput per WAL fsync policy
  (off/never/batch/always) and read throughput per replica count
  (0/1/2 with ``ReplicaSet`` routing at zero staleness).

Emits ``BENCH_transport.json`` under ``benchmarks/results/``.

Run standalone (``python benchmarks/bench_transport.py [--smoke]``,
``REPRO_BENCH_FAST=1`` also selects smoke scale) or through pytest
(``pytest benchmarks/bench_transport.py``).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import tempfile

import numpy as np

from repro.bench.reporting import RESULTS_DIR
from repro.core.client import TrustedClient
from repro.core.session import OutsourcedDatabase
from repro.core.wal import WalWriter
from repro.crypto.key import generate_key
from repro.net import (
    ColumnCatalog,
    LoopbackTransport,
    RemoteColumn,
    ReplicaSet,
    ReplicationClient,
    ShardedRemoteColumn,
    TcpTransport,
    ThreadPerConnectionServer,
    serve,
)
from repro.obs import Observability
from repro.workloads.generators import random_workload

SMOKE = os.environ.get("REPRO_BENCH_FAST") == "1"

#: Sub-requests per ``batch_request`` frame in the batched runs.
BATCH_SIZE = 16

#: Concurrent-connection counts for the server-front matrix.
CONNECTION_MATRIX = (1, 4, 16)

#: Shard count for the hot-column scatter-gather matrix.
SHARDS = 4

#: Connections hammering the one hot column.
HOT_CONNECTIONS = 16


def run_transport(
    values,
    queries,
    transport=None,
    column="values",
    codec="json",
    batch=1,
) -> dict:
    """One full workload over one transport; returns timing + bytes."""
    tick = time.perf_counter()
    db = OutsourcedDatabase(
        values, seed=29, min_piece_size=8, transport=transport,
        column=column, codec=codec,
    )
    upload_seconds = time.perf_counter() - tick
    row_ids = []
    tick = time.perf_counter()
    if batch > 1:
        for start in range(0, len(queries), batch):
            chunk = queries[start:start + batch]
            for result in db.query_many([q.as_args() for q in chunk]):
                row_ids.append(sorted(int(i) for i in result.logical_ids))
    else:
        for query in queries:
            result = db.query(*query.as_args())
            row_ids.append(sorted(int(i) for i in result.logical_ids))
    query_seconds = time.perf_counter() - tick
    return {
        "codec": codec,
        "batch": batch,
        "upload_seconds": upload_seconds,
        "query_seconds": query_seconds,
        "seconds_per_query": query_seconds / len(queries),
        "round_trips": db.round_trips,
        "bytes_sent": db.bytes_sent,
        "bytes_received": db.bytes_received,
        "row_ids": row_ids,
    }


def bench(size: int, query_count: int) -> dict:
    values = [int(v) for v in np.random.default_rng(31).permutation(size)]
    queries = random_workload(query_count, (0, size), selectivity=0.01, seed=37)

    runs = {
        "loopback_json": run_transport(values, queries, codec="json"),
        "loopback_binary": run_transport(values, queries, codec="binary"),
    }

    endpoint = serve()
    thread = threading.Thread(target=endpoint.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = endpoint.server_address
        # Column names share the loopback name's byte length so frame
        # sizes stay comparable across runs (names must be unique at
        # the shared endpoint).
        tcp_matrix = (
            ("tcp_json", "json", 1, "valuej"),
            ("tcp_binary", "binary", 1, "valueb"),
            ("tcp_binary_batched", "binary", BATCH_SIZE, "valuep"),
        )
        for name, codec, batch, column in tcp_matrix:
            with TcpTransport(host, port) as transport:
                runs[name] = run_transport(
                    values, queries, transport=transport,
                    column=column, codec=codec, batch=batch,
                )
    finally:
        endpoint.stop()
        thread.join(timeout=5)

    reference = runs["loopback_json"]["row_ids"]
    for name, entry in runs.items():
        assert entry["row_ids"] == reference, "%s disagrees" % name
    # Same codec + same batching => byte-identical traffic regardless
    # of transport (frames are deterministic).
    for codec in ("json", "binary"):
        local, remote = runs["loopback_%s" % codec], runs["tcp_%s" % codec]
        assert local["bytes_sent"] == remote["bytes_sent"]
        assert local["bytes_received"] == remote["bytes_received"]
    for entry in runs.values():
        del entry["row_ids"]

    json_bytes = (
        runs["tcp_json"]["bytes_sent"] + runs["tcp_json"]["bytes_received"]
    )
    binary_bytes = (
        runs["tcp_binary"]["bytes_sent"]
        + runs["tcp_binary"]["bytes_received"]
    )
    return {
        "size": size,
        "queries": query_count,
        "batch_size": BATCH_SIZE,
        **runs,
        "tcp_slowdown": _ratio(
            runs["tcp_json"]["seconds_per_query"],
            runs["loopback_json"]["seconds_per_query"],
        ),
        "codec_reduction": _ratio(json_bytes, binary_bytes),
        "batching_speedup": _ratio(
            runs["tcp_binary"]["seconds_per_query"],
            runs["tcp_binary_batched"]["seconds_per_query"],
        ),
    }


def _concurrent_rps(server, connections: int, ops: int) -> float:
    """Aggregate requests/second for N connections hammering one front.

    Each connection gets its own transport, column, and thread; the
    timed section is a fetch loop (no index cracking, so the number is
    dominated by the server front, not the engine).
    """
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    values = [int(v) for v in np.random.default_rng(53).permutation(200)]
    transports, handles = [], []
    try:
        for index in range(connections):
            transport = TcpTransport(host, port)
            transports.append(transport)
            db = OutsourcedDatabase(
                values, seed=47, min_piece_size=8, transport=transport,
                column="cc-%d" % index,
            )
            handles.append(db._remote)
        barrier = threading.Barrier(connections + 1)
        errors = []

        def worker(handle):
            try:
                barrier.wait()
                for _ in range(ops):
                    handle.fetch((0, 1, 2, 3, 4, 5, 6, 7))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(handle,), daemon=True)
            for handle in handles
        ]
        for w in workers:
            w.start()
        barrier.wait()
        tick = time.perf_counter()
        for w in workers:
            w.join()
        wall = time.perf_counter() - tick
        assert not errors, errors
        return connections * ops / wall
    finally:
        for transport in transports:
            transport.close()
        server.stop()
        thread.join(timeout=5)


def bench_concurrency(ops: int) -> dict:
    """Server-front matrix: worker pool vs thread-per-connection
    baseline at 1/4/16 concurrent connections."""
    # The pool gets one worker per connection at the top of the matrix
    # so both fronts can have every connection in flight; the pool is
    # still bounded (the baseline would spawn a thread for the 17th
    # connection, the pool would not).
    fronts = (
        ("worker_pool", lambda: serve(workers=max(CONNECTION_MATRIX))),
        (
            "thread_per_connection",
            lambda: ThreadPerConnectionServer(("127.0.0.1", 0)),
        ),
    )
    out = {}
    for name, factory in fronts:
        out[name] = {
            str(connections): _concurrent_rps(factory(), connections, ops)
            for connections in CONNECTION_MATRIX
        }
    out["pool_vs_baseline_16"] = _ratio(
        out["worker_pool"]["16"], out["thread_per_connection"]["16"]
    )
    return out


def _hot_column_rps(
    shards: int, connections: int, ops: int, rows, row_ids, queries
) -> float:
    """Aggregate queries/sec for N connections hammering ONE column.

    This is the scenario sharding exists for: every connection targets
    the same logical column, so an unsharded column serializes the
    whole matrix on one per-column lock while a sharded one runs each
    query as a parallel scatter-gather over ``shards`` independent
    locks (and each shard's scan kernel covers ``1/shards`` of the
    rows).  The column uses the scan engine so the per-query work is
    fixed and lock-bound, not cracking-order-dependent.
    """
    server = serve(workers=connections)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    transports = []

    def connect():
        transport = TcpTransport(host, port)
        transports.append(transport)
        # JSON frames: the C codec minimizes GIL-held Python per
        # exchange, so the matrix measures lock/kernel parallelism
        # rather than frame-encode contention.
        if shards > 1:
            return ShardedRemoteColumn(
                transport, "hot", shards=shards, codec="json"
            )
        return RemoteColumn(transport, "hot", codec="json")

    try:
        creator = connect()
        creator.create(
            rows, row_ids, {"engine": "scan", "record_stats": False}
        )
        handles = [connect() for _ in range(connections)]
        barrier = threading.Barrier(connections + 1)
        errors = []

        def worker(offset, handle):
            try:
                barrier.wait()
                for step in range(ops):
                    handle.query(queries[(offset + step) % len(queries)])
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(i, h), daemon=True)
            for i, h in enumerate(handles)
        ]
        for w in workers:
            w.start()
        barrier.wait()
        tick = time.perf_counter()
        for w in workers:
            w.join()
        wall = time.perf_counter() - tick
        assert not errors, errors
        return connections * ops / wall
    finally:
        for transport in transports:
            transport.close()
        server.stop()
        thread.join(timeout=5)


def bench_sharded(size: int, ops: int) -> dict:
    """Hot-column matrix: one logical column under 16 connections,
    single vs ``SHARDS``-way scatter-gather.

    The column is sized and keyed so the scan sits on the int64 kernel
    tier (``mirror @ vector`` — C code that releases the GIL): a
    small-magnitude key plus a bounded value domain keeps the overflow
    proof satisfied, so per-query work is dominated by a genuinely
    parallelizable kernel rather than big-int Python arithmetic, and
    the scatter-gather speedup is observable wherever the machine has
    the cores to run shard scans concurrently.
    """
    rng = np.random.default_rng(59)
    domain = 4096  # bounded values keep the int64 overflow proof true
    values = [int(v) % domain for v in rng.permutation(size)]
    key = generate_key(length=4, seed=67, u_magnitude=2)
    client = TrustedClient(key=key, seed=67)
    rows, row_ids = client.encrypt_dataset(values)
    span = max(1, domain // 500)
    queries = [
        client.make_query(int(low), int(low) + span)
        for low in rng.integers(0, domain - span, 64)
    ]
    out = {
        "size": size,
        "ops_per_connection": ops,
        "cpus": os.cpu_count() or 1,
        "single": _hot_column_rps(
            1, HOT_CONNECTIONS, ops, rows, row_ids, queries
        ),
        "sharded_%d" % SHARDS: _hot_column_rps(
            SHARDS, HOT_CONNECTIONS, ops, rows, row_ids, queries
        ),
    }
    out["sharded_vs_single_16"] = _ratio(
        out["sharded_%d" % SHARDS], out["single"]
    )
    return out


#: Fsync policies for the durability write matrix (None = no WAL).
FSYNC_MATRIX = (None, "never", "batch", "always")

#: Replica counts for the read-routing matrix.
REPLICA_MATRIX = (0, 1, 2)


def _durable_insert_rate(fsync, directory: str, ops: int) -> dict:
    """Acked-insert throughput under one WAL fsync policy.

    ``fsync=None`` runs without a WAL at all — the in-memory baseline
    every policy's overhead is measured against.
    """
    catalog = ColumnCatalog()
    writer = None
    if fsync is not None:
        writer = WalWriter(directory, fsync=fsync)
        catalog.bind_wal(writer)
    db = OutsourcedDatabase(
        list(range(64)), seed=41, min_piece_size=8,
        transport=LoopbackTransport(catalog), column="durable",
    )
    tick = time.perf_counter()
    for step in range(ops):
        db.insert(10_000 + step)
    wall = time.perf_counter() - tick
    metrics = catalog.obs.metrics
    out = {
        "fsync": fsync or "off",
        "inserts_per_second": _ratio(ops, wall),
        "wal_appends": metrics.counter_value("wal.appends"),
        "wal_bytes": metrics.counter_value("wal.bytes"),
        "wal_fsyncs": metrics.counter_value("wal.fsyncs"),
    }
    if writer is not None:
        writer.close()
    return out


def _replica_read_rate(replica_count: int, directory: str, ops: int) -> dict:
    """Read throughput and routing mix at one replica count.

    0 replicas is the plain-primary baseline; otherwise a
    :class:`ReplicaSet` routes the read loop across caught-up replicas
    under a zero-staleness bound (the strictest setting — every read
    must still be epoch-current).
    """
    primary = ColumnCatalog()
    primary.bind_wal(WalWriter(directory, fsync="never"))
    db = OutsourcedDatabase(
        list(range(256)), seed=43, min_piece_size=8,
        transport=LoopbackTransport(primary), column="durable",
    )
    query = db.client.make_query(0, 256)
    replicas = []
    for index in range(replica_count):
        follower = ColumnCatalog()
        follower.set_read_only("primary.bench:9045")
        feed = ReplicationClient(
            follower, LoopbackTransport(primary), "bench-%d" % index,
            poll_interval=0.01,
        )
        feed.sync_once()
        replicas.append(follower)
    obs = Observability()
    if replica_count:
        transport = ReplicaSet(
            LoopbackTransport(primary),
            [LoopbackTransport(follower) for follower in replicas],
            max_staleness_epochs=0,
            obs=obs,
        )
    else:
        transport = LoopbackTransport(primary)
    handle = RemoteColumn(transport, "durable")
    tick = time.perf_counter()
    for _ in range(ops):
        handle.query(query)
    wall = time.perf_counter() - tick
    return {
        "replicas": replica_count,
        "reads_per_second": _ratio(ops, wall),
        "replica_reads": obs.metrics.counter_value(
            "replicaset.reads_replica"
        ),
        "primary_reads": obs.metrics.counter_value(
            "replicaset.reads_primary"
        ),
    }


def bench_durability(ops: int) -> dict:
    """Durability matrix: fsync policy x replica count.

    The write side prices each WAL fsync policy against the no-WAL
    baseline; the read side shows the ReplicaSet spreading a read loop
    across caught-up replicas.
    """
    out = {"ops": ops, "fsync": {}, "replicas": {}}
    for fsync in FSYNC_MATRIX:
        with tempfile.TemporaryDirectory() as directory:
            out["fsync"][fsync or "off"] = _durable_insert_rate(
                fsync, directory, ops
            )
    for count in REPLICA_MATRIX:
        with tempfile.TemporaryDirectory() as directory:
            out["replicas"][str(count)] = _replica_read_rate(
                count, directory, ops
            )
    out["fsync_always_overhead"] = _ratio(
        out["fsync"]["off"]["inserts_per_second"],
        out["fsync"]["always"]["inserts_per_second"],
    )
    return out


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def main(smoke: bool = SMOKE, output: str = None) -> dict:
    if smoke:
        result = bench(size=2_000, query_count=32)
    else:
        result = bench(size=8_000, query_count=128)
    result["concurrency"] = bench_concurrency(ops=40 if smoke else 200)
    result["sharded"] = (
        bench_sharded(size=256_000, ops=8)
        if smoke
        else bench_sharded(size=384_000, ops=16)
    )
    result["durability"] = bench_durability(ops=40 if smoke else 200)
    report = {
        "benchmark": "transport",
        "mode": "smoke" if smoke else "full",
        **result,
    }
    if output is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        output = os.path.join(RESULTS_DIR, "BENCH_transport.json")
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    for name in (
        "loopback_json", "loopback_binary", "tcp_json", "tcp_binary",
        "tcp_binary_batched",
    ):
        entry = report[name]
        print(
            "%-19s upload %.3fs  %.2f ms/query  %d sent / %d received bytes"
            % (
                name,
                entry["upload_seconds"],
                1e3 * entry["seconds_per_query"],
                entry["bytes_sent"],
                entry["bytes_received"],
            )
        )
    print("tcp slowdown:     %.2fx" % report["tcp_slowdown"])
    print("codec reduction:  %.2fx fewer bytes (binary vs JSON)"
          % report["codec_reduction"])
    print("batching speedup: %.2fx per query (TCP, batches of %d)"
          % (report["batching_speedup"], report["batch_size"]))
    concurrency = report["concurrency"]
    for front in ("worker_pool", "thread_per_connection"):
        print(
            "%-22s " % front
            + "  ".join(
                "%2d conns %7.0f req/s" % (c, concurrency[front][str(c)])
                for c in CONNECTION_MATRIX
            )
        )
    print("pool vs baseline @16: %.2fx"
          % concurrency["pool_vs_baseline_16"])
    sharded = report["sharded"]
    print(
        "hot column @%d conns:  single %7.0f q/s  %d shards %7.0f q/s "
        "(%.2fx, %d cpus)"
        % (
            HOT_CONNECTIONS,
            sharded["single"],
            SHARDS,
            sharded["sharded_%d" % SHARDS],
            sharded["sharded_vs_single_16"],
            os.cpu_count() or 1,
        )
    )
    durability = report["durability"]
    for policy in ("off", "never", "batch", "always"):
        entry = durability["fsync"][policy]
        print(
            "wal fsync=%-7s %7.0f inserts/s  %d appends  %d fsyncs"
            % (
                policy,
                entry["inserts_per_second"],
                entry["wal_appends"],
                entry["wal_fsyncs"],
            )
        )
    for count in REPLICA_MATRIX:
        entry = durability["replicas"][str(count)]
        print(
            "replicas=%d        %7.0f reads/s  %d via replica / %d via "
            "primary"
            % (
                count,
                entry["reads_per_second"],
                entry["replica_reads"],
                entry["primary_reads"],
            )
        )
    print("fsync=always overhead: %.2fx slower than no WAL"
          % durability["fsync_always_overhead"])
    print("wrote %s" % output)
    return report


def test_transport_bench():
    """Pytest entry point: the transport/codec matrix agrees, the
    binary codec at least halves the byte volume, and batching cuts
    round trips by the batch factor."""
    report = main(smoke=True)
    assert (
        report["loopback_json"]["round_trips"]
        == report["tcp_json"]["round_trips"]
    )
    assert (
        report["loopback_json"]["bytes_sent"]
        == report["tcp_json"]["bytes_sent"]
    )
    assert report["tcp_json"]["seconds_per_query"] > 0
    # ISSUE acceptance: >= 2x frame-size reduction from the codec.
    assert report["codec_reduction"] >= 2.0
    # Batching collapses round trips; the latency speedup is recorded
    # (its exact value is machine-dependent).
    batched = report["tcp_binary_batched"]
    assert batched["round_trips"] < report["tcp_binary"]["round_trips"]
    assert report["batching_speedup"] > 0
    # ISSUE acceptance: the bounded worker pool keeps up with the
    # unbounded thread-per-connection baseline at 16 connections (the
    # 0.75 floor absorbs scheduler noise on shared CI runners).
    concurrency = report["concurrency"]
    for front in ("worker_pool", "thread_per_connection"):
        for connections in CONNECTION_MATRIX:
            assert concurrency[front][str(connections)] > 0
    assert concurrency["pool_vs_baseline_16"] >= 0.75
    # ISSUE acceptance: a 4-shard column beats the single hot column by
    # >= 1.5x at 16 connections.  The speedup comes from genuine
    # parallelism (4 shard locks, scan kernels releasing the GIL), so
    # it is physically unobservable on a 1-2 core box — the hard gate
    # applies where the parallelism exists (>= 4 CPUs) and always under
    # CI's REPRO_REQUIRE_SHARD_SPEEDUP=1.
    sharded = report["sharded"]
    assert sharded["single"] > 0
    assert sharded["sharded_%d" % SHARDS] > 0
    if (
        os.environ.get("REPRO_REQUIRE_SHARD_SPEEDUP") == "1"
        or (os.cpu_count() or 1) >= 4
    ):
        assert sharded["sharded_vs_single_16"] >= 1.5, sharded
    # Durability matrix: every fsync policy sustains acked inserts and
    # logs one WAL append per mutation; fsync=always actually fsyncs.
    durability = report["durability"]
    for policy in ("off", "never", "batch", "always"):
        assert durability["fsync"][policy]["inserts_per_second"] > 0
    assert durability["fsync"]["off"]["wal_appends"] == 0
    # create_column + N inserts, one record each.
    assert (
        durability["fsync"]["always"]["wal_appends"]
        == 1 + durability["ops"]
    )
    assert (
        durability["fsync"]["always"]["wal_fsyncs"]
        >= durability["fsync"]["always"]["wal_appends"]
    )
    assert durability["fsync"]["never"]["wal_fsyncs"] == 0
    # With caught-up replicas and no session writes, the read loop is
    # served by replicas, not the primary.
    for count in REPLICA_MATRIX:
        entry = durability["replicas"][str(count)]
        assert entry["reads_per_second"] > 0
        if count:
            assert entry["replica_reads"] > 0
            assert entry["primary_reads"] == 0


if __name__ == "__main__":
    sys.exit(0 if main(smoke=SMOKE or "--smoke" in sys.argv[1:]) else 1)
