"""Ablation: cracking vs adaptive merging (Section 4.1's equivalence).

Paper: "database cracking can be validly described as an incremental
quicksort, while ... adaptive merging can be seen as an incremental
external merge sort."  The classic trade-off (Graefe et al., cited by
the paper): merging pays more up front (sorted run creation) and per
touched range, but each range is *finished* after one touch; cracking
starts instantly and converges asymptotically.

Measured: merging's build cost exceeds cracking's (which is ~zero);
merging moves each row at most once (total moved rows <= N) while
cracking reorganises far more row-slots across the workload; repeated
ranges are free under merging.
"""

import os

import numpy as np

from repro.bench.harness import build_plain_engine, run_plain_sequence
from repro.bench.reporting import format_table, save_report
from repro.cracking.adaptive_merging import AdaptiveMergingIndex
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import random_workload

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 2000 if FAST else 50000
QUERIES = 40 if FAST else 400
DOMAIN = (0, 2 ** 31)


def test_merging_comparison(benchmark):
    values = unique_uniform(SIZE, DOMAIN, seed=0)
    queries = random_workload(QUERIES, DOMAIN, selectivity=0.01, seed=1)

    cracking = build_plain_engine(values)
    cracking_trace = run_plain_sequence(cracking, queries)
    merging = AdaptiveMergingIndex(values, run_count=16)
    merging_trace = run_plain_sequence(merging, queries)

    cracking_moved = sum(s.cracked_rows for s in cracking.stats_log)
    merging_moved = sum(s.cracked_rows for s in merging.stats_log)
    rows = [
        [
            "cracking",
            0.0,
            cracking_trace.total_seconds(),
            cracking_moved,
            "asymptotic",
        ],
        [
            "adaptive merging",
            merging.build_seconds,
            merging_trace.total_seconds(),
            merging_moved,
            "one touch per range",
        ],
    ]
    report = (
        "Adaptive merging ablation (%d rows, %d queries)\n" % (SIZE, QUERIES)
        + format_table(
            ["engine", "build s", "workload s", "row-slots reorganised",
             "convergence"],
            rows,
        )
    )
    save_report("abl_merging.txt", report)
    print("\n" + report)

    # Merging pays an up-front run-creation cost cracking avoids.
    assert merging.build_seconds > 0
    # Each row migrates at most once under merging; cracking keeps
    # shuffling row-slots long after.
    assert merging_moved <= SIZE
    assert cracking_moved > merging_moved
    # A repeated range is free under merging.
    merging.query(*queries[0].as_args())
    assert merging.stats_log[-1].cracked_rows == 0

    probe = queries[0]
    benchmark(lambda: merging.query(*probe.as_args()))
