"""Figure 12: effect of the encryption key size (ciphertext length l).

Paper: over 10M rows, per-query response time of the encrypted engine
rises roughly proportionally with key size 4 -> 64 for the early
(heavy) queries — vector comparisons cost O(l) — while the effect
becomes negligible once the index has converged.
"""

import os

import numpy as np

from repro.bench.figures import figure12_key_size
from repro.bench.reporting import (
    ascii_chart,
    format_series,
    format_table,
    save_report,
)

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
KEY_LENGTHS = (4, 8, 16) if FAST else (4, 8, 16, 32, 64)
SIZE = 1000 if FAST else 10000
QUERY_COUNT = 30 if FAST else 200


def test_figure12(benchmark):
    traces = figure12_key_size(
        key_lengths=KEY_LENGTHS, size=SIZE, query_count=QUERY_COUNT, seed=0
    )
    xs = list(range(1, QUERY_COUNT + 1))
    columns = {
        "l=%d" % length: traces[length].seconds for length in KEY_LENGTHS
    }
    series = format_series(
        "Figure 12: per-query seconds vs key size (%d rows)" % SIZE,
        "query",
        xs,
        columns,
    )
    rows = [
        [
            length,
            traces[length].seconds[0],
            float(np.median(traces[length].seconds[-QUERY_COUNT // 4:])),
        ]
        for length in KEY_LENGTHS
    ]
    summary = format_table(
        ["key size l", "first-query seconds", "late median seconds"], rows
    )
    chart = ascii_chart(
        "Figure 12 chart: per-query seconds vs key size, log-log",
        xs,
        columns,
    )
    report = chart + "\n\n" + series + "\n\nKey-size summary\n" + summary
    save_report("fig12_key_size.txt", report)
    print("\n" + report)

    # The first (heaviest) query scales up with l...
    first = [traces[length].seconds[0] for length in KEY_LENGTHS]
    assert first[-1] > first[0]
    assert all(b > 0.5 * a for a, b in zip(first, first[1:]))
    # ...while the typical late query collapses for every key size
    # (the paper: a difference "from a millisecond to 0.01 seconds
    # between key size 4 and 64" once cracking has amortised).  The
    # median is used because a late query can still land on a cold
    # region and pay one big crack.
    for length, first_seconds in zip(KEY_LENGTHS, first):
        late = float(np.median(traces[length].seconds[-QUERY_COUNT // 4:]))
        assert late < first_seconds / 3

    smallest = KEY_LENGTHS[0]
    session_trace = traces[smallest]
    benchmark(lambda: np.cumsum(session_trace.seconds))
