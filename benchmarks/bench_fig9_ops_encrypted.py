"""Figure 9: per-operation cost per query, encrypted data.

Paper: crack cost decays as with plain data (from seconds to
sub-second); insert and search grow from microseconds to milliseconds
(their comparisons are now vector scalar products); after ~1K queries
cracking costs under 0.2s per query at every size.
"""

import numpy as np

from bench_fig8_ops_plain import render_ops
from conftest import QUERY_COUNT, SIZES
from repro.bench.reporting import save_report


def test_figure9(grid_traces, benchmark):
    report = render_ops(grid_traces, "encrypted", SIZES, QUERY_COUNT)
    save_report("fig9_ops_encrypted.txt", report)
    print("\n" + report)

    for size in SIZES:
        trace = grid_traces[("encrypted", size)]
        early = float(np.mean(trace.crack_seconds[:5]))
        late = float(np.mean(trace.crack_seconds[-QUERY_COUNT // 5:]))
        assert late < early
        # Encrypted cracking costs far more than plain cracking on the
        # same size — the price of vector comparisons.
        plain_early = float(
            np.mean(grid_traces[("plain", size)].crack_seconds[:5])
        )
        assert early > plain_early

    from repro.bench.harness import build_session
    from repro.workloads.datasets import unique_uniform

    session = build_session(unique_uniform(SIZES[0], seed=5), "encrypted", seed=5)
    benchmark(lambda: session.query(10, 2 ** 30))
