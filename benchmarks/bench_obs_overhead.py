"""Overhead budget for the observability layer (``repro.obs``).

The instrumentation lives permanently in every hot path — piece lookup,
cracking, edge scans, the kernel — so its cost has to be bounded:

* **disabled tracing** must be unmeasurable: a span request on a
  disabled tracer is one attribute check plus returning a shared
  singleton, measured here as nanoseconds per call;
* **enabled tracing** must add less than ~5% to the Figure 9 encrypted
  query loop (random 1%-selectivity ranges against
  :class:`SecureAdaptiveIndex` through a full
  :class:`~repro.core.session.OutsourcedDatabase` session);
* **distributed-trace propagation** (the wire ``trace`` field plus the
  server adopting remote parents) must stay inside the same budget on
  a real TCP query loop, and must be a no-op when disabled — the
  field is then never built, so the untraced loop *is* the baseline.

Emits ``BENCH_obs_overhead.json`` plus the observability artifacts the
run produced (``obs_overhead.metrics.json`` / ``.trace.jsonl``) under
``benchmarks/results/`` — the files CI uploads.

Run standalone (``python benchmarks/bench_obs_overhead.py [--smoke]``,
``REPRO_BENCH_FAST=1`` also selects smoke scale) or through pytest
(``pytest benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro.bench.reporting import RESULTS_DIR, save_obs_artifacts
from repro.core.session import OutsourcedDatabase
from repro.obs import NULL_SPAN, Observability, Tracer
from repro.workloads.generators import random_workload

SMOKE = os.environ.get("REPRO_BENCH_FAST") == "1"

#: Relative overhead budget for *enabled* tracing on the query loop.
ENABLED_BUDGET = 0.05
#: Absolute budget for one disabled span request, in nanoseconds.  A
#: Python attribute check plus a return runs in tens of nanoseconds;
#: anything near a microsecond would mean the no-op path allocates.
DISABLED_BUDGET_NS = 1_500.0


def bench_disabled_span(calls: int, repeats: int) -> dict:
    """Nanoseconds per ``span()`` request on a disabled tracer.

    The disabled path cannot be compared against "no instrumentation at
    all" inside the query loop (the calls are in the code either way),
    so it is measured directly: ``calls`` requests, best of
    ``repeats``, minus the cost of an equally long empty loop.
    """
    tracer = Tracer(enabled=False)
    indices = range(calls)

    def spin_empty():
        for _ in indices:
            pass

    def spin_spans():
        for _ in indices:
            with tracer.span("noop"):
                pass

    best_empty = min(_timed(spin_empty) for _ in range(repeats))
    best_spans = min(_timed(spin_spans) for _ in range(repeats))
    per_call_ns = max(0.0, (best_spans - best_empty) / calls * 1e9)
    sample = tracer.span("check")
    return {
        "calls": calls,
        "repeats": repeats,
        "empty_loop_seconds": best_empty,
        "span_loop_seconds": best_spans,
        "ns_per_disabled_span": per_call_ns,
        "returns_null_singleton": sample is NULL_SPAN,
        "spans_recorded": len(tracer.spans),
    }


def _timed(fn) -> float:
    tick = time.perf_counter()
    fn()
    return time.perf_counter() - tick


def _run_queries(db: OutsourcedDatabase, queries) -> float:
    tick = time.perf_counter()
    for query in queries:
        db.query(*query.as_args())
    return time.perf_counter() - tick


def bench_query_loop(size: int, query_count: int, repeats: int) -> tuple:
    """Fig 9 query loop, tracing disabled vs enabled (best of repeats).

    Each repeat builds a fresh session (cracking is a one-way side
    effect, so a warm index would make later repeats incomparable) and
    replays the same workload.  The reported overhead is the best
    *back-to-back pair* ratio: each off/on pair runs under the same
    moment's machine conditions, so a CPU burst that straddles only one
    side of the comparison cannot masquerade as tracer cost (the spans
    themselves account for ~2% of the loop; everything above that is
    scheduler noise).  Returns the result dict plus the traced bundle
    of the best enabled run for artifact export.
    """
    values = [int(v) for v in np.random.default_rng(17).permutation(size)]
    queries = random_workload(query_count, (0, size), selectivity=0.01, seed=19)

    def run(tracing: bool):
        obs = Observability(tracing=tracing)
        db = OutsourcedDatabase(
            values, seed=23, min_piece_size=8, obs=obs
        )
        return _run_queries(db, queries), obs

    baseline = float("inf")
    traced = float("inf")
    overhead = float("inf")
    traced_obs = None
    for _ in range(repeats):
        off_seconds, _ = run(tracing=False)
        baseline = min(baseline, off_seconds)
        on_seconds, obs = run(tracing=True)
        if on_seconds < traced:
            traced = on_seconds
            traced_obs = obs
        if off_seconds:
            overhead = min(overhead, on_seconds / off_seconds - 1.0)
    if overhead == float("inf"):
        overhead = 0.0
    return {
        "size": size,
        "queries": query_count,
        "repeats": repeats,
        "tracing_off_seconds": baseline,
        "tracing_on_seconds": traced,
        "relative_overhead": overhead,
        "spans_per_run": len(traced_obs.tracer.spans),
    }, traced_obs


def bench_tcp_propagation(size: int, query_count: int,
                          repeats: int) -> dict:
    """Query loop over a real TCP endpoint, trace propagation off vs on.

    "On" enables tracing on *both* ends, so every frame carries the
    ``trace`` field and the server's ``rpc-serve`` spans adopt remote
    parents — the full distributed-tracing cost, sockets included.
    "Off" is the default untraced session (the field is never built,
    never sent).  Fresh endpoint + session per repeat, and the same
    best-pair overhead estimator, as :func:`bench_query_loop` — socket
    timing jitters even more than the in-process loop.
    """
    import threading

    from repro.net import ColumnCatalog, TcpTransport, serve

    values = [int(v) for v in np.random.default_rng(29).permutation(size)]
    queries = random_workload(query_count, (0, size), selectivity=0.01,
                              seed=31)

    def run(tracing: bool):
        server_obs = Observability(tracing=tracing)
        endpoint = serve(catalog=ColumnCatalog(obs=server_obs))
        thread = threading.Thread(target=endpoint.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = endpoint.server_address
        try:
            client_obs = Observability(tracing=tracing)
            with TcpTransport(host, port) as transport:
                db = OutsourcedDatabase(
                    values, seed=23, min_piece_size=8,
                    obs=client_obs, transport=transport,
                )
                seconds = _run_queries(db, queries)
        finally:
            endpoint.stop()
            thread.join(timeout=5)
        return seconds, server_obs

    baseline = float("inf")
    traced = float("inf")
    overhead = float("inf")
    adopted = 0
    for _ in range(repeats):
        off_seconds, _ = run(tracing=False)
        baseline = min(baseline, off_seconds)
        on_seconds, server_obs = run(tracing=True)
        traced = min(traced, on_seconds)
        if off_seconds:
            overhead = min(overhead, on_seconds / off_seconds - 1.0)
        adopted = sum(
            1 for span in server_obs.tracer.spans
            if span.name == "rpc-serve" and span.parent_id is not None
        )
    if overhead == float("inf"):
        overhead = 0.0
    return {
        "size": size,
        "queries": query_count,
        "repeats": repeats,
        "propagation_off_seconds": baseline,
        "propagation_on_seconds": traced,
        "relative_overhead": overhead,
        "adopted_rpc_serve_spans": adopted,
    }


def main(smoke: bool = SMOKE, output: str = None) -> dict:
    if smoke:
        disabled = bench_disabled_span(calls=200_000, repeats=3)
        # The shared machines jitter enough that best-of-3 does not
        # converge; five repeats keeps the smoke gate stable.
        loop, traced_obs = bench_query_loop(size=2_000, query_count=40,
                                            repeats=5)
        # Below ~80 queries socket jitter dominates the measurement, so
        # the smoke scale stays large enough to keep the gate meaningful.
        tcp = bench_tcp_propagation(size=3_000, query_count=80, repeats=5)
    else:
        disabled = bench_disabled_span(calls=1_000_000, repeats=5)
        loop, traced_obs = bench_query_loop(size=8_000, query_count=150,
                                            repeats=5)
        tcp = bench_tcp_propagation(size=4_000, query_count=80, repeats=3)
    report = {
        "benchmark": "obs_overhead",
        "mode": "smoke" if smoke else "full",
        "enabled_budget": ENABLED_BUDGET,
        "disabled_budget_ns": DISABLED_BUDGET_NS,
        "disabled_span": disabled,
        "fig9_query_loop": loop,
        "tcp_propagation": tcp,
    }
    if output is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        output = os.path.join(RESULTS_DIR, "BENCH_obs_overhead.json")
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
    artifacts = save_obs_artifacts(
        "obs_overhead", traced_obs, directory=os.path.dirname(output)
    )
    print(
        "disabled span: %.0f ns/call (budget %.0f), singleton=%s, recorded=%d"
        % (
            disabled["ns_per_disabled_span"],
            DISABLED_BUDGET_NS,
            disabled["returns_null_singleton"],
            disabled["spans_recorded"],
        )
    )
    print(
        "fig9 loop (%d rows, %d queries): off %.3fs  on %.3fs  overhead %+.2f%%"
        " (budget %.0f%%, %d spans/run)"
        % (
            loop["size"],
            loop["queries"],
            loop["tracing_off_seconds"],
            loop["tracing_on_seconds"],
            100 * loop["relative_overhead"],
            100 * ENABLED_BUDGET,
            loop["spans_per_run"],
        )
    )
    print(
        "tcp propagation (%d rows, %d queries): off %.3fs  on %.3fs  "
        "overhead %+.2f%% (%d adopted rpc-serve spans)"
        % (
            tcp["size"],
            tcp["queries"],
            tcp["propagation_off_seconds"],
            tcp["propagation_on_seconds"],
            100 * tcp["relative_overhead"],
            tcp["adopted_rpc_serve_spans"],
        )
    )
    print("wrote %s" % output)
    for path in artifacts:
        print("wrote %s" % path)
    return report


def test_obs_overhead():
    """Pytest entry point: the observability layer stays within budget."""
    report = main(smoke=SMOKE)
    disabled = report["disabled_span"]
    assert disabled["returns_null_singleton"]
    assert disabled["spans_recorded"] == 0
    assert disabled["ns_per_disabled_span"] < DISABLED_BUDGET_NS
    loop = report["fig9_query_loop"]
    assert loop["spans_per_run"] > 0
    # Best-of-repeats timing still jitters on shared CI machines; allow
    # slack above the documented budget before calling it a regression.
    assert loop["relative_overhead"] < 3 * ENABLED_BUDGET
    tcp = report["tcp_propagation"]
    # Propagation really happened: the server adopted remote parents.
    assert tcp["adopted_rpc_serve_spans"] > 0
    # Socket timing jitters more than the in-process loop; same slack.
    assert tcp["relative_overhead"] < 3 * ENABLED_BUDGET


if __name__ == "__main__":
    main(smoke=SMOKE or "--smoke" in sys.argv[1:])
