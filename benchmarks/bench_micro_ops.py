"""Micro-benchmarks of the scheme's primitive operations.

Not a paper figure — the per-operation grounding for all of them:
encryption in both modes, ambiguous (steered) encryption, decryption,
the scalar-product comparison, a full-column vectorised comparison
sweep, and an AVL search over encrypted keys.  Run across key sizes to
see the O(l) comparison cost of Figure 12 at the operation level.
"""

import pytest

from repro.core.encrypted_column import EncryptedColumn
from repro.crypto.key import generate_key
from repro.crypto.scheme import Encryptor, generate_steerable_key

KEY_LENGTHS = (4, 16, 64)


@pytest.fixture(scope="module", params=KEY_LENGTHS)
def sized_encryptor(request):
    length = request.param
    return Encryptor(generate_key(length, seed=length), seed=length + 1)


def test_encrypt_value(sized_encryptor, benchmark):
    benchmark(lambda: sized_encryptor.encrypt_value(123456789))


def test_encrypt_bound(sized_encryptor, benchmark):
    benchmark(lambda: sized_encryptor.encrypt_bound(123456789))


def test_decrypt_value(sized_encryptor, benchmark):
    ciphertext = sized_encryptor.encrypt_value(987654321)
    benchmark(lambda: sized_encryptor.decrypt_value(ciphertext))


def test_scalar_product_comparison(sized_encryptor, benchmark):
    bound = sized_encryptor.encrypt_bound(5)
    value = sized_encryptor.encrypt_value(9)
    benchmark(lambda: bound.product_sign(value))


def test_column_comparison_sweep(sized_encryptor, benchmark):
    rows = [sized_encryptor.encrypt_value(v) for v in range(2000)]
    column = EncryptedColumn(rows)
    bound = sized_encryptor.encrypt_bound(1000)
    benchmark(lambda: column.products(0, len(column), bound))


def test_encrypt_ambiguous_steered(benchmark):
    key = generate_steerable_key(4, (0, 2 ** 31), seed=0)
    encryptor = Encryptor(key, seed=1)
    benchmark(
        lambda: encryptor.encrypt_value_ambiguous(
            123456, fake_domain=(0, 2 ** 31)
        )
    )


def test_encrypt_ambiguous_unsteered(benchmark):
    encryptor = Encryptor(generate_key(4, seed=2), seed=3)
    benchmark(lambda: encryptor.encrypt_value_ambiguous(123456))
