"""Shared benchmark configuration and the common experiment grid.

The paper's Figures 6-11 all derive from one experiment grid (data
kind x size, default workload); running it once per pytest session and
letting each figure target slice it keeps ``pytest benchmarks/
--benchmark-only`` affordable.

Scale knobs (environment variables):

* ``REPRO_BENCH_FAST=1``  — tiny smoke-scale run (CI-friendly).
* ``REPRO_BENCH_LARGE=1`` — larger sizes/queries, closer to the paper's
  shape (slower).

Default scale: sizes 1K-32K (x2 ladder, mirroring the paper's 1M-32M),
300 queries at 1% selectivity.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.figures import figure6_cumulative

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
LARGE = os.environ.get("REPRO_BENCH_LARGE") == "1"

if FAST:
    SIZES = (500, 1000)
    QUERY_COUNT = 40
    FIRST_QUERIES = 10
elif LARGE:
    SIZES = (2000, 4000, 8000, 16000, 32000, 64000)
    QUERY_COUNT = 1000
    FIRST_QUERIES = 30
else:
    SIZES = (1000, 2000, 4000, 8000, 16000, 32000)
    QUERY_COUNT = 300
    FIRST_QUERIES = 30

DATA_KINDS = ("plain", "encrypted", "ambiguous", "securescan")


@pytest.fixture(scope="session")
def grid_traces():
    """The shared (data kind x size) grid behind Figures 6-11."""
    return figure6_cumulative(
        sizes=SIZES,
        query_count=QUERY_COUNT,
        data_kinds=DATA_KINDS,
        selectivity=0.01,
        seed=0,
    )
