"""Figure 13: client-side performance with increasing selectivity.

Paper (Section 5.4): 1K random range queries in five geometric
selectivity groups (0.1%, 0.3%, 0.9%, 2.7%, 8.1%) over 10M rows;

* (13a) the false-positive rate at the client fluctuates around 50%
  and is unaffected by selectivity — and its fluctuation hides the
  exact result count from an adversary;
* (13b) decrypt-and-filter runtime doubles under ambiguity, is stable
  within a selectivity group, and climbs one log-step per group.
"""

import os

import numpy as np

from repro.bench.figures import figure13_client
from repro.bench.reporting import format_table, save_report

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SIZE = 600 if FAST else 8000
PER_GROUP = 8 if FAST else 40
SELECTIVITIES = (0.001, 0.003, 0.009, 0.027, 0.081)


def test_figure13(benchmark):
    results = figure13_client(
        size=SIZE,
        selectivities=SELECTIVITIES,
        queries_per_group=PER_GROUP,
        seed=0,
    )
    rows = []
    for group, selectivity in enumerate(SELECTIVITIES):
        window = slice(group * PER_GROUP, (group + 1) * PER_GROUP)
        ambiguous = results["ambiguous"]
        encrypted = results["encrypted"]
        rows.append(
            [
                "%.1f%%" % (100 * selectivity),
                float(np.mean(ambiguous.false_positive_rates[window])),
                float(np.std(ambiguous.false_positive_rates[window])),
                float(np.mean(encrypted.client_seconds[window])),
                float(np.mean(ambiguous.client_seconds[window])),
            ]
        )
    report = "Figure 13: client-side FPR and decrypt+filter seconds\n" + (
        format_table(
            [
                "selectivity",
                "FPR (ambiguity)",
                "FPR std",
                "decrypt s (encrypted)",
                "decrypt s (ambiguity)",
            ],
            rows,
        )
    )
    save_report("fig13_client.txt", report)
    print("\n" + report)

    ambiguous = results["ambiguous"]
    encrypted = results["encrypted"]
    # 13a: FPR ~50%, flat in selectivity; zero without ambiguity.
    group_means = [row[1] for row in rows]
    assert all(0.3 < m < 0.7 for m in group_means)
    assert max(group_means) - min(group_means) < 0.25
    assert all(r == 0 for r in encrypted.false_positive_rates)
    # 13b: ambiguity roughly doubles the decrypt cost; cost grows with
    # selectivity (more rows to decrypt).
    total_encrypted = float(np.sum(encrypted.client_seconds))
    total_ambiguous = float(np.sum(ambiguous.client_seconds))
    assert 1.3 * total_encrypted < total_ambiguous < 6 * total_encrypted
    assert np.mean(ambiguous.client_seconds[-PER_GROUP:]) > np.mean(
        ambiguous.client_seconds[:PER_GROUP]
    )

    # Timed unit: decrypt-and-filter one mid-selectivity response.
    from repro.bench.harness import build_session
    from repro.workloads.datasets import unique_uniform

    session = build_session(
        unique_uniform(SIZE // 2, seed=1), "ambiguous", seed=1
    )
    query = session.client.make_query(0, 2 ** 26)
    response = session.server.execute(query)
    benchmark(
        lambda: session.client.decrypt_results(response.row_ids, response.rows)
    )
