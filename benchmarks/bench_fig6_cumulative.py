"""Figure 6: cumulative response time per data type and data size.

Paper: six panels — cumulative time over the first 30 queries (6a-6c)
and over the full workload (6d-6f), one panel per data type (plain,
encrypted, encrypted with ambiguity), six sizes each, with SecureScan
as the dashed reference in the full-sequence panels.

Expected shapes (paper): curves flatten as cracking converges for all
cracking-based types; SecureScan keeps growing linearly; costs scale
with data size; encrypted >> plain, ambiguity ~2x encrypted.
"""

import numpy as np

from conftest import DATA_KINDS, FIRST_QUERIES, QUERY_COUNT, SIZES
from repro.bench.reporting import ascii_chart, format_series, save_report


def _panel(traces, kind, query_limit):
    columns = {}
    for size in SIZES:
        trace = traces[(kind, size)]
        cumulative = trace.cumulative()[:query_limit]
        columns["%dK rows" % (size // 1000) if size >= 1000 else str(size)] = (
            cumulative.tolist()
        )
    xs = list(range(1, query_limit + 1))
    return format_series(
        "Figure 6 (%s): cumulative seconds, first %d queries"
        % (kind, query_limit),
        "query",
        xs,
        columns,
    )


def test_figure6(grid_traces, benchmark):
    sections = []
    for kind in ("plain", "encrypted", "ambiguous"):
        sections.append(_panel(grid_traces, kind, FIRST_QUERIES))
    for kind in DATA_KINDS:
        sections.append(_panel(grid_traces, kind, QUERY_COUNT))
        sections.append(
            ascii_chart(
                "Figure 6 chart (%s): cumulative seconds, log-log" % kind,
                list(range(1, QUERY_COUNT + 1)),
                {
                    "%d rows" % size: grid_traces[(kind, size)]
                    .cumulative()
                    .tolist()
                    for size in SIZES
                },
            )
        )
    report = "\n\n".join(sections)
    save_report("fig6_cumulative.txt", report)
    print("\n" + report)

    # Shape assertions (the paper's qualitative claims).  Convergence
    # is asserted on the cracking component: on small plain columns the
    # total per-query wall-clock is dominated by fixed per-call
    # overheads (fractions of a millisecond) that do not converge.
    for kind in ("plain", "encrypted", "ambiguous"):
        for size in SIZES:
            crack = grid_traces[(kind, size)].crack_seconds
            early = float(np.mean(crack[:5]))
            late = float(np.mean(crack[-max(5, QUERY_COUNT // 10):]))
            assert late < early, (kind, size, "no convergence")
    largest = SIZES[-1]
    scan_total = grid_traces[("securescan", largest)].total_seconds()
    crack_total = grid_traces[("encrypted", largest)].total_seconds()
    assert crack_total < scan_total

    # Representative timed unit: one converged encrypted query.
    from repro.bench.harness import build_session
    from repro.workloads.datasets import unique_uniform
    from repro.workloads.generators import random_workload

    session = build_session(unique_uniform(SIZES[0], seed=1), "encrypted", seed=1)
    queries = random_workload(50, (0, 2 ** 31), seed=2)
    for query in queries:
        session.query(*query.as_args())
    probe = random_workload(1, (0, 2 ** 31), seed=3)[0]
    benchmark(lambda: session.query(*probe.as_args()))
