"""Figure 11: cracking time per query, per data type, growing sizes.

Paper: all three data types show the same decaying trend, shifted by
the cost of encryption (vector comparisons) and ambiguity (double
rows); crack time grows with data size at every point in the sequence.
"""

import numpy as np

from conftest import QUERY_COUNT, SIZES
from repro.bench.reporting import ascii_chart, format_series, save_report


def test_figure11(grid_traces, benchmark):
    sections = []
    for kind in ("plain", "encrypted", "ambiguous"):
        columns = {
            "%d rows" % size: grid_traces[(kind, size)].crack_seconds
            for size in SIZES
        }
        xs = list(range(1, QUERY_COUNT + 1))
        sections.append(
            format_series(
                "Figure 11 (%s): crack seconds per query" % kind,
                "query",
                xs,
                columns,
            )
        )
        sections.append(
            ascii_chart(
                "Figure 11 chart (%s): crack seconds, log-log" % kind,
                xs,
                columns,
            )
        )
    report = "\n\n".join(sections)
    save_report("fig11_crack_time.txt", report)
    print("\n" + report)

    # First-query crack time grows with size for every data type.
    for kind in ("plain", "encrypted", "ambiguous"):
        first = [grid_traces[(kind, size)].crack_seconds[0] for size in SIZES]
        assert first[-1] > first[0], kind
    # And the data-type ordering holds at the largest size.
    largest = SIZES[-1]
    assert (
        grid_traces[("plain", largest)].crack_seconds[0]
        < grid_traces[("encrypted", largest)].crack_seconds[0]
        < grid_traces[("ambiguous", largest)].crack_seconds[0]
    )

    from repro.core.client import TrustedClient
    from repro.core.encrypted_column import EncryptedColumn
    from repro.workloads.datasets import unique_uniform

    client = TrustedClient(seed=7)
    rows, row_ids = client.encrypt_dataset(unique_uniform(2000, seed=7))
    column = EncryptedColumn(rows, row_ids)
    bound = client.encryptor.encrypt_bound(2 ** 30)

    def crack_once():
        column.crack(0, len(column), bound, inclusive=False)

    benchmark(crack_once)
