"""Unit tests for the benchmark harness, figure builders, reporting."""

import os

import numpy as np
import pytest

from repro.bench.figures import (
    ablation_leakage,
    ablation_threshold,
    figure12_key_size,
    figure13_client,
    run_grid,
)
from repro.bench.harness import (
    QueryTrace,
    build_plain_engine,
    build_session,
    run_plain_sequence,
    run_session_sequence,
)
from repro.bench.reporting import (
    format_series,
    format_table,
    sample_indices,
    save_report,
)
from repro.workloads.datasets import unique_uniform
from repro.workloads.generators import random_workload


class TestHarness:
    def test_plain_trace(self):
        values = unique_uniform(500, seed=0)
        queries = random_workload(10, (0, 2 ** 31), seed=1)
        trace = run_plain_sequence(build_plain_engine(values), queries)
        assert len(trace.seconds) == 10
        assert len(trace.crack_seconds) == 10
        assert trace.total_seconds() > 0
        cumulative = trace.cumulative()
        assert np.all(np.diff(cumulative) >= 0)

    def test_plain_engine_kinds(self):
        values = unique_uniform(200, seed=0)
        for kind in ("adaptive", "stochastic", "scan", "sort"):
            engine = build_plain_engine(values, kind=kind)
            assert len(engine.query(0, 2 ** 30)) > 0

    def test_unknown_plain_kind(self):
        with pytest.raises(ValueError):
            build_plain_engine([1], kind="quantum")

    def test_session_kinds(self):
        values = unique_uniform(100, seed=0)
        for kind in ("encrypted", "ambiguous", "securescan"):
            session = build_session(values, kind, seed=0)
            assert session.build_seconds > 0
            queries = random_workload(3, (0, 2 ** 31), seed=1)
            trace = run_session_sequence(session, queries)
            assert len(trace.client_seconds) == 3
            assert len(trace.false_positive_rates) == 3

    def test_unknown_session_kind(self):
        with pytest.raises(ValueError):
            build_session([1], "plaintext")

    def test_trace_defaults(self):
        trace = QueryTrace()
        assert trace.total_seconds() == 0
        assert trace.cumulative().size == 0


class TestFigureBuilders:
    def test_run_grid_shapes(self):
        traces = run_grid((100, 200), ("plain", "encrypted"), 5, seed=0)
        assert set(traces) == {
            ("plain", 100),
            ("plain", 200),
            ("encrypted", 100),
            ("encrypted", 200),
        }
        for trace in traces.values():
            assert len(trace.seconds) == 5

    def test_figure12_key_sizes(self):
        traces = figure12_key_size(
            key_lengths=(4, 16), size=400, query_count=5, seed=0
        )
        assert set(traces) == {4, 16}
        # Early queries cost more under the (much) larger key; compare
        # totals, which are robust to single-call jitter.
        assert sum(traces[16].seconds) > sum(traces[4].seconds)

    def test_figure13_fpr(self):
        results = figure13_client(size=400, queries_per_group=4, seed=0)
        enc = np.mean(results["encrypted"].false_positive_rates)
        amb = np.mean(results["ambiguous"].false_positive_rates)
        assert enc == 0.0
        assert 0.2 < amb < 0.8

    def test_ablation_threshold(self):
        out = ablation_threshold(
            size=2000, thresholds=(1, 512), query_count=30, seed=0
        )
        assert out[512]["tree_nodes"] < out[1]["tree_nodes"]
        assert out[512]["resolved_order_fraction"] < out[1][
            "resolved_order_fraction"
        ]

    def test_ablation_leakage_logical_below_physical(self):
        series = ablation_leakage(
            size=400, query_count=50, checkpoints=(50,), seed=0
        )
        __, physical = series["ambiguous_physical"][-1]
        __, logical = series["ambiguous_logical"][-1]
        assert logical < physical


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_series_samples(self):
        text = format_series(
            "title", "query", list(range(1, 101)),
            {"y": [float(i) for i in range(100)]}, samples=5,
        )
        assert text.startswith("title")
        assert "query" in text

    def test_sample_indices_short(self):
        assert sample_indices(5, 10) == [0, 1, 2, 3, 4]

    def test_sample_indices_log_spaced(self):
        picked = sample_indices(1000, 10)
        assert picked[0] == 0 and picked[-1] == 999
        assert picked == sorted(picked)

    def test_save_report(self, tmp_path):
        path = save_report("test.txt", "hello", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"


class TestAsciiChart:
    def test_renders_all_series(self):
        from repro.bench.reporting import ascii_chart

        chart = ascii_chart(
            "t", [1, 10, 100], {"up": [1, 2, 3], "down": [3, 2, 1]}
        )
        assert chart.startswith("t")
        assert "a = up" in chart and "b = down" in chart
        assert "a" in chart and "b" in chart

    def test_skips_nonpositive_under_log(self):
        from repro.bench.reporting import ascii_chart

        chart = ascii_chart("t", [1, 2], {"s": [0.0, 5.0]})
        # Only one plottable point; still renders.
        assert "a = s" in chart

    def test_no_points(self):
        from repro.bench.reporting import ascii_chart

        chart = ascii_chart("t", [1, 2], {"s": [0.0, 0.0]})
        assert "no plottable points" in chart

    def test_linear_axes(self):
        from repro.bench.reporting import ascii_chart

        chart = ascii_chart(
            "t", [0, 1, 2], {"s": [-1.0, 0.0, 1.0]},
            log_x=False, log_y=False,
        )
        assert "a = s" in chart

    def test_constant_series(self):
        from repro.bench.reporting import ascii_chart

        chart = ascii_chart("t", [1, 2, 3], {"s": [5.0, 5.0, 5.0]})
        assert "a = s" in chart
