"""Distributed-tracing unit tests: span identity, remote adoption,
thread safety, trace merging, and the slow-query log.

The integration side (a real TCP session producing one merged
client+server tree) lives in ``tests/test_net_distributed_trace.py``;
this file pins down the :class:`~repro.obs.tracing.Tracer` mechanics
those tests rely on.
"""

import re
import threading

import pytest

from repro.obs import NULL_SPAN, SlowQueryLog, Tracer, merge_traces
from repro.obs.tracing import load_trace_jsonl

SPAN_ID = re.compile(r"^[0-9a-f]{8}-[0-9a-f]+$")
TRACE_ID = re.compile(r"^[0-9a-f]{16}$")


class TestSpanIdentity:
    def test_span_and_trace_id_formats(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as span:
            assert SPAN_ID.match(span.span_id)
            assert TRACE_ID.match(span.trace_id)
        assert span.parent_id is None

    def test_span_ids_share_the_tracer_prefix(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.span_id.split("-")[0] == tracer.trace_prefix
        assert b.span_id.split("-")[0] == tracer.trace_prefix
        assert a.span_id != b.span_id

    def test_two_tracers_never_collide(self):
        ids = set()
        for _ in range(4):
            tracer = Tracer(enabled=True)
            with tracer.span("x") as span:
                pass
            ids.add(span.span_id)
        assert len(ids) == 4

    def test_children_inherit_trace_id_and_parent_id(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        with tracer.span("next-root") as other:
            assert other.trace_id != outer.trace_id

    def test_to_dict_carries_identity_fields(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.to_dicts()
        assert outer["span_id"] and outer["trace_id"]
        assert "parent_id" not in outer
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]


class TestWireContext:
    def test_disabled_tracer_exports_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.wire_context() is None

    def test_no_active_span_exports_nothing(self):
        tracer = Tracer(enabled=True)
        assert tracer.wire_context() is None

    def test_active_span_exports_its_identity(self):
        tracer = Tracer(enabled=True)
        with tracer.span("rpc") as span:
            ctx = tracer.wire_context()
        assert ctx == {"trace_id": span.trace_id, "parent": span.span_id,
                       "sampled": True}

    def test_remote_adoption_links_across_tracers(self):
        client = Tracer(enabled=True)
        server = Tracer(enabled=True)
        with client.span("rpc") as rpc:
            ctx = client.wire_context()
        with server.span("rpc-serve", remote=ctx) as serve:
            pass
        assert serve.trace_id == rpc.trace_id
        assert serve.parent_id == rpc.span_id
        # Local nesting below the adopted span stays in the same trace.
        with server.span("rpc-serve", remote=ctx):
            with server.span("engine") as engine:
                assert engine.trace_id == rpc.trace_id

    def test_sampled_false_suppresses_the_span(self):
        server = Tracer(enabled=True)
        ctx = {"trace_id": "ab" * 8, "parent": "cafe0000-1",
               "sampled": False}
        assert server.span("rpc-serve", remote=ctx) is NULL_SPAN
        assert server.spans == []

    def test_disabled_tracer_ignores_remote_context(self):
        server = Tracer(enabled=False)
        ctx = {"trace_id": "ab" * 8, "parent": "cafe0000-1",
               "sampled": True}
        assert server.span("rpc-serve", remote=ctx) is NULL_SPAN


class TestThreadSafety:
    def test_per_thread_stacks_keep_parents_intra_thread(self):
        tracer = Tracer(enabled=True)
        threads, errors = [], []

        def worker(name):
            try:
                for _ in range(50):
                    with tracer.span("outer", thread=name) as outer:
                        with tracer.span("inner", thread=name) as inner:
                            assert inner.parent == outer.index
                            assert inner.parent_id == outer.span_id
                            assert inner.attrs["thread"] == \
                                outer.attrs["thread"] == name
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        for i in range(8):
            thread = threading.Thread(target=worker, args=("t%d" % i,))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(tracer.spans) == 8 * 50 * 2
        # Index assignment stayed race-free: ids are unique and match
        # each span's position in the record list.
        assert len({span.span_id for span in tracer.spans}) == 800
        for index, span in enumerate(tracer.spans):
            assert span.index == index
        # Every inner span's parent is an outer span from its own thread.
        by_id = {span.span_id: span for span in tracer.spans}
        for span in tracer.spans:
            if span.name == "inner":
                parent = by_id[span.parent_id]
                assert parent.name == "outer"
                assert parent.attrs["thread"] == span.attrs["thread"]

    def test_main_thread_stack_is_isolated(self):
        tracer = Tracer(enabled=True)
        with tracer.span("main-root"):
            seen = []

            def worker():
                seen.append(tracer.current_span)
                with tracer.span("worker-root") as span:
                    seen.append(span.parent_id)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker saw no inherited stack: no current span, and its
        # root span had no parent.
        assert seen == [None, None]


class TestSubtreeSummary:
    def test_includes_adopted_descendants_only(self):
        tracer = Tracer(enabled=True)
        with tracer.span("rpc-serve") as root:
            ctx = tracer.wire_context()
        with tracer.span("unrelated"):
            pass

        def slot():
            with tracer.span("rpc-serve-slot", remote=ctx):
                with tracer.span("engine"):
                    pass

        thread = threading.Thread(target=slot)
        thread.start()
        thread.join()
        summary = tracer.subtree_summary(root)
        assert set(summary) == {"rpc-serve-slot", "engine"}
        assert summary["engine"]["count"] == 1

    def test_null_span_yields_empty_summary(self):
        tracer = Tracer(enabled=True)
        assert tracer.subtree_summary(NULL_SPAN) == {}


class TestMergeTraces:
    def _dump(self, tracer):
        return tracer.to_dicts()

    def test_client_server_dumps_form_one_tree(self):
        client = Tracer(enabled=True)
        server = Tracer(enabled=True)
        with client.span("rpc"):
            ctx = client.wire_context()
            with server.span("rpc-serve", remote=ctx):
                with server.span("engine"):
                    pass
        merged = merge_traces(self._dump(client), self._dump(server))
        assert [r["name"] for r in merged] == ["rpc", "rpc-serve", "engine"]
        assert [r["tree_depth"] for r in merged] == [0, 1, 2]

    def test_duplicate_span_ids_collapse(self):
        tracer = Tracer(enabled=True)
        with tracer.span("rpc"):
            pass
        dump = self._dump(tracer)
        merged = merge_traces(dump, dump)
        assert len(merged) == 1

    def test_missing_parent_becomes_root(self):
        orphan = {"name": "lost", "span_id": "dead0000-1",
                  "parent_id": "beef0000-9", "start": 1.0}
        merged = merge_traces([orphan])
        assert merged[0]["tree_depth"] == 0

    def test_round_trips_through_jsonl(self, tmp_path):
        client = Tracer(enabled=True)
        server = Tracer(enabled=True)
        with client.span("rpc"):
            ctx = client.wire_context()
        with server.span("rpc-serve", remote=ctx):
            pass
        client_path = str(tmp_path / "client.jsonl")
        server_path = str(tmp_path / "server.jsonl")
        client.dump_jsonl(client_path)
        server.dump_jsonl(server_path)
        merged = merge_traces(load_trace_jsonl(client_path),
                              load_trace_jsonl(server_path))
        assert [r["name"] for r in merged] == ["rpc", "rpc-serve"]
        assert merged[1]["parent_id"] == merged[0]["span_id"]


class TestSlowQueryLog:
    def test_threshold_zero_records_everything(self):
        log = SlowQueryLog(threshold=0.0, capacity=8)
        log.record("query_request", 0.001, column="values")
        assert len(log) == 1
        (entry,) = log.entries()
        assert entry["kind"] == "query_request"
        assert entry["column"] == "values"
        assert entry["seconds"] == pytest.approx(0.001)

    def test_capacity_bounds_the_ring(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        for i in range(10):
            log.record("query_request", float(i))
        snapshot = log.snapshot()
        assert snapshot["recorded"] == 10
        assert len(snapshot["entries"]) == 4
        # Oldest entries fell off the ring.
        assert [e["seconds"] for e in snapshot["entries"]] == \
            [6.0, 7.0, 8.0, 9.0]

    def test_optional_fields_only_present_when_given(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        log.record("merge_request", 0.5)
        log.record("batch_request", 0.7, trace_id="ab" * 8,
                   breakdown={"engine": {"count": 1, "seconds": 0.4}},
                   slots=3)
        bare, full = log.entries()
        assert "trace_id" not in bare and "breakdown" not in bare
        assert full["trace_id"] == "ab" * 8
        assert full["slots"] == 3
        assert full["breakdown"]["engine"]["count"] == 1

    def test_clear_resets_counts(self):
        log = SlowQueryLog(threshold=0.0, capacity=4)
        log.record("query_request", 1.0)
        log.clear()
        assert len(log) == 0
        assert log.snapshot()["recorded"] == 0

    def test_concurrent_record_is_safe(self):
        log = SlowQueryLog(threshold=0.0, capacity=1000)
        threads = [
            threading.Thread(
                target=lambda: [log.record("query_request", 0.1)
                                for _ in range(100)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.snapshot()["recorded"] == 800
