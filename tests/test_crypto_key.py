"""Unit tests for key generation (paper, Section 3.4)."""

import pytest

from repro.crypto.key import (
    DEFAULT_LENGTH,
    MIN_LENGTH,
    SecretKey,
    generate_key,
)
from repro.errors import KeyGenerationError
from repro.linalg.intmat import identity, mat_mul, mat_vec
from repro.linalg.vectors import dot


class TestGenerateKey:
    def test_default_length_matches_paper(self):
        key = generate_key(seed=0)
        assert key.length == DEFAULT_LENGTH == 4

    @pytest.mark.parametrize("length", [3, 4, 5, 8, 16, 32, 64])
    def test_lengths(self, length):
        key = generate_key(length=length, seed=length)
        assert key.length == length
        assert len(key.u) == length - 2
        assert len(key.noise_positions) == length - 2

    def test_matrix_inverse_is_exact(self):
        key = generate_key(seed=1)
        assert mat_mul(key.matrix, key.matrix_inverse) == identity(key.length)

    def test_payload_and_noise_positions_partition(self):
        key = generate_key(seed=2)
        all_positions = set(key.payload_positions) | set(key.noise_positions)
        assert all_positions == set(range(key.length))
        assert len(set(key.payload_positions)) == 2

    def test_ambiguity_row_contract(self):
        # r . x == u . noise(M @ x) for arbitrary x.
        key = generate_key(seed=3)
        for x in [(1, 0, 0, 0), (0, 1, 0, 0), (3, -7, 2, 9)]:
            image = mat_vec(key.matrix, x)
            noise = key.noise_projection(image)
            assert dot(key.ambiguity_row, x) == dot(key.u, noise)

    def test_ambiguity_row_ends_nonzero(self):
        # Both ambiguity variants divide by an end of r.
        for seed in range(10):
            key = generate_key(seed=seed)
            assert key.ambiguity_row[0] != 0
            assert key.ambiguity_row[-1] != 0

    def test_too_short_rejected(self):
        with pytest.raises(KeyGenerationError):
            generate_key(length=MIN_LENGTH - 1, seed=0)

    def test_deterministic_with_seed(self):
        assert generate_key(seed=11) == generate_key(seed=11)

    def test_different_seeds_differ(self):
        assert generate_key(seed=11) != generate_key(seed=12)


class TestSecretKeyValidation:
    def _fields(self, key):
        return dict(
            length=key.length,
            payload_positions=key.payload_positions,
            noise_positions=key.noise_positions,
            u=key.u,
            matrix=key.matrix,
            matrix_inverse=key.matrix_inverse,
            ambiguity_row=key.ambiguity_row,
        )

    def test_duplicate_payload_positions_rejected(self):
        fields = self._fields(generate_key(seed=4))
        fields["payload_positions"] = (1, 1)
        with pytest.raises(KeyGenerationError):
            SecretKey(**fields)

    def test_inconsistent_noise_positions_rejected(self):
        fields = self._fields(generate_key(seed=4))
        fields["noise_positions"] = tuple(reversed(fields["noise_positions"]))
        if len(fields["noise_positions"]) > 1:
            with pytest.raises(KeyGenerationError):
                SecretKey(**fields)

    def test_zero_u_rejected(self):
        fields = self._fields(generate_key(seed=4))
        fields["u"] = (0,) * (fields["length"] - 2)
        with pytest.raises(KeyGenerationError):
            SecretKey(**fields)


class TestAssemble:
    def test_assemble_places_contents(self):
        key = generate_key(seed=5)
        p0, p1 = key.payload_positions
        vector = key.assemble(10, -3, tuple(range(1, key.length - 1)))
        assert vector[p0] == 10
        assert vector[p1] == -3
        assert key.noise_projection(vector) == tuple(range(1, key.length - 1))

    def test_assemble_wrong_noise_length(self):
        key = generate_key(seed=5)
        with pytest.raises(ValueError):
            key.assemble(1, 2, (1,) * (key.length - 1))

    def test_payload_projection_inverts_assemble(self):
        key = generate_key(seed=6)
        vector = key.assemble(42, -17, (0,) * (key.length - 2))
        assert key.payload_projection(vector) == (42, -17)
