"""Unit tests for the pending-update buffer."""

import pytest

from repro.errors import UpdateError
from repro.store.updates import PendingUpdates


class TestInsert:
    def test_ids_are_sequential(self):
        buffer = PendingUpdates(10)
        assert buffer.insert("a") == 10
        assert buffer.insert("b") == 11
        assert buffer.next_row_id == 12
        assert len(buffer) == 2

    def test_pending_snapshot_is_copy(self):
        buffer = PendingUpdates(0)
        buffer.insert("a")
        snapshot = buffer.pending
        snapshot.append((99, "z"))
        assert len(buffer.pending) == 1

    def test_negative_start_rejected(self):
        with pytest.raises(UpdateError):
            PendingUpdates(-1)


class TestDelete:
    def test_tombstones_recorded(self):
        buffer = PendingUpdates(5)
        buffer.delete(3)
        assert buffer.is_deleted(3)
        assert not buffer.is_deleted(2)

    def test_delete_pending_row(self):
        buffer = PendingUpdates(0)
        row_id = buffer.insert("a")
        buffer.delete(row_id)
        assert buffer.is_deleted(row_id)

    def test_unassigned_id_rejected(self):
        buffer = PendingUpdates(5)
        with pytest.raises(UpdateError):
            buffer.delete(5)
        with pytest.raises(UpdateError):
            buffer.delete(-1)

    def test_double_delete_idempotent(self):
        buffer = PendingUpdates(5)
        buffer.delete(1)
        buffer.delete(1)
        assert buffer.tombstones == {1}


class TestDrain:
    def test_drain_clears_state(self):
        buffer = PendingUpdates(0)
        buffer.insert("a")
        buffer.delete(0)
        live, tombstones = buffer.drain()
        assert live == []
        assert tombstones == {0}
        assert len(buffer) == 0
        assert buffer.tombstones == set()

    def test_drain_excludes_deleted_pending(self):
        buffer = PendingUpdates(10)
        keep = buffer.insert("keep")
        drop = buffer.insert("drop")
        buffer.delete(drop)
        live, tombstones = buffer.drain()
        assert [row_id for row_id, __ in live] == [keep]
        assert drop in tombstones

    def test_ids_continue_after_drain(self):
        buffer = PendingUpdates(0)
        buffer.insert("a")
        buffer.drain()
        assert buffer.insert("b") == 1
