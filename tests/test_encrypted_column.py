"""Unit tests for the encrypted cracker column."""

import numpy as np
import pytest

from repro.core.encrypted_column import EncryptedColumn
from repro.errors import IndexStateError

VALUES = [13, 16, 4, 9, 2, 12, 7, 1, 19, 3]


@pytest.fixture()
def column(encryptor):
    rows = [encryptor.encrypt_value(v) for v in VALUES]
    return EncryptedColumn(rows)


def decrypted_values(encryptor, column):
    return [
        encryptor.decrypt_value(column.row(i)) for i in range(len(column))
    ]


class TestConstruction:
    def test_length_and_ids(self, column):
        assert len(column) == len(VALUES)
        assert column.row_ids.tolist() == list(range(len(VALUES)))

    def test_custom_ids(self, encryptor):
        rows = [encryptor.encrypt_value(v) for v in (1, 2)]
        column = EncryptedColumn(rows, row_ids=[7, 9])
        assert column.row_ids.tolist() == [7, 9]

    def test_id_length_mismatch_rejected(self, encryptor):
        rows = [encryptor.encrypt_value(1)]
        with pytest.raises(IndexStateError):
            EncryptedColumn(rows, row_ids=[1, 2])

    def test_mixed_lengths_rejected(self, encryptor, encryptor8):
        with pytest.raises(IndexStateError):
            EncryptedColumn(
                [encryptor.encrypt_value(1), encryptor8.encrypt_value(2)]
            )

    def test_empty_column(self):
        column = EncryptedColumn([])
        assert len(column) == 0


class TestProducts:
    def test_signs_match_plaintext(self, column, encryptor):
        bound = encryptor.encrypt_bound(9)
        products = column.products(0, len(column), bound)
        for value, product in zip(VALUES, products):
            expected = (value > 9) - (value < 9)
            got = (int(product) > 0) - (int(product) < 0)
            assert got == expected

    def test_piece_slice(self, column, encryptor):
        bound = encryptor.encrypt_bound(9)
        products = column.products(2, 5, bound)
        assert len(products) == 3


class TestCrack:
    def test_crack_partitions(self, column, encryptor):
        bound = encryptor.encrypt_bound(10)
        split = column.crack(0, len(column), bound, inclusive=False)
        values = decrypted_values(encryptor, column)
        assert split == sum(1 for v in VALUES if v < 10)
        assert all(v < 10 for v in values[:split])
        assert all(v >= 10 for v in values[split:])

    def test_crack_inclusive_ties(self, encryptor):
        rows = [encryptor.encrypt_value(v) for v in (5, 10, 15, 10)]
        column = EncryptedColumn(rows)
        bound = encryptor.encrypt_bound(10)
        split = column.crack(0, 4, bound, inclusive=True)
        assert split == 3

    def test_row_ids_follow_rows(self, column, encryptor):
        bound = encryptor.encrypt_bound(10)
        column.crack(0, len(column), bound, inclusive=False)
        for i in range(len(column)):
            row_id = int(column.row_ids[i])
            assert encryptor.decrypt_value(column.row(i)) == VALUES[row_id]

    def test_inplace_algorithm_equivalent(self, encryptor):
        rows = [encryptor.encrypt_value(v) for v in VALUES]
        fast = EncryptedColumn(rows)
        slow = EncryptedColumn(rows, use_inplace_algorithm=True)
        bound = encryptor.encrypt_bound(9)
        assert fast.crack(0, len(VALUES), bound, False) == slow.crack(
            0, len(VALUES), bound, False
        )

    def test_crack_three(self, column, encryptor):
        low = encryptor.encrypt_bound(4)
        high = encryptor.encrypt_bound(12)
        split0, split1 = column.crack_three(
            0, len(column), low, True, high, True
        )
        values = decrypted_values(encryptor, column)
        assert all(v < 4 for v in values[:split0])
        assert all(4 <= v <= 12 for v in values[split0:split1])
        assert all(v > 12 for v in values[split1:])

    def test_out_of_range_rejected(self, column, encryptor):
        with pytest.raises(IndexStateError):
            column.crack(0, len(column) + 1, encryptor.encrypt_bound(1), False)


class TestScanQualifying:
    def test_matches_plaintext_filter(self, column, encryptor):
        low = encryptor.encrypt_bound(4)
        high = encryptor.encrypt_bound(12)
        indices = column.scan_qualifying(0, len(column), low, True, high, True)
        expected = [i for i, v in enumerate(VALUES) if 4 <= v <= 12]
        assert indices.tolist() == expected

    def test_exclusive_bounds(self, column, encryptor):
        low = encryptor.encrypt_bound(4)
        high = encryptor.encrypt_bound(12)
        indices = column.scan_qualifying(
            0, len(column), low, False, high, False
        )
        expected = [i for i, v in enumerate(VALUES) if 4 < v < 12]
        assert indices.tolist() == expected


class TestUpdates:
    def test_insert_at(self, column, encryptor):
        row = encryptor.encrypt_value(999)
        column.insert_at(3, row, row_id=100)
        assert len(column) == len(VALUES) + 1
        assert encryptor.decrypt_value(column.row(3)) == 999
        assert int(column.row_ids[3]) == 100

    def test_delete_at(self, column, encryptor):
        column.delete_at(0)
        assert len(column) == len(VALUES) - 1
        assert encryptor.decrypt_value(column.row(0)) == VALUES[1]

    def test_physical_index_of(self, column):
        assert column.physical_index_of(4) == 4
        with pytest.raises(IndexStateError):
            column.physical_index_of(999)

    def test_insert_bounds_checked(self, column, encryptor):
        with pytest.raises(IndexStateError):
            column.insert_at(len(column) + 1, encryptor.encrypt_value(1), 0)

    def test_insert_into_empty(self, encryptor):
        column = EncryptedColumn([])
        column.insert_at(0, encryptor.encrypt_value(5), 0)
        assert len(column) == 1
        assert encryptor.decrypt_value(column.row(0)) == 5
