"""Replication tests: WAL streaming, read-only replicas, ReplicaSet.

Everything runs over loopback transports — the same envelopes and
codecs as TCP without the sockets.  The kill -9 / restart path is
covered separately in ``test_crash_recovery.py``.
"""

import threading

import pytest

from repro.core.session import OutsourcedDatabase
from repro.core.wal import WalWriter
from repro.errors import (
    PersistenceError,
    ProtocolError,
    ReadOnlyError,
    TransportError,
)
from repro.net.catalog import ColumnCatalog
from repro.net.client import RemoteColumn
from repro.net.protocol import (
    MergeRequest,
    QueryRequest,
    decode_frame,
    encode_frame,
)
from repro.net.replication import ReplicaSet, ReplicationClient
from repro.net.transport import LoopbackTransport, Transport


def make_primary(tmp_path, values=(5, 1, 9, 3), column="t", seed=7):
    catalog = ColumnCatalog()
    catalog.bind_wal(WalWriter(str(tmp_path), fsync="never"))
    db = OutsourcedDatabase(
        list(values), transport=LoopbackTransport(catalog),
        column=column, seed=seed,
    )
    return catalog, db


def make_replica(primary, replica_id="r1"):
    replica = ColumnCatalog()
    replica.set_read_only("primary.example:9045")
    client = ReplicationClient(
        replica, LoopbackTransport(primary), replica_id, poll_interval=0.01
    )
    return replica, client


class TestReadOnlyReplica:
    def test_mutations_refused_with_typed_error(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        handle = RemoteColumn(LoopbackTransport(replica), "t")
        for call in (
            lambda: handle.insert([]),
            lambda: handle.delete([0]),
            lambda: handle.merge(),
            lambda: handle.rotate_begin(),
            lambda: handle.create([], []),
        ):
            with pytest.raises(ReadOnlyError) as err:
                call()
            assert "primary.example:9045" in str(err.value)
            assert "read replica" in str(err.value)

    def test_reads_still_served(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        query = db.client.make_query(0, 100)
        via_primary = RemoteColumn(LoopbackTransport(primary), "t")
        via_replica = RemoteColumn(LoopbackTransport(replica), "t")
        assert sorted(map(int, via_replica.query(query).row_ids)) == sorted(
            map(int, via_primary.query(query).row_ids)
        )

    def test_batch_mutation_slot_refused(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        handle = RemoteColumn(LoopbackTransport(replica), "t")
        responses = handle.call_many([
            QueryRequest(column="t", query=db.client.make_query(0, 100)),
            MergeRequest(column="t"),
        ])
        assert type(responses[0]).__name__ == "QueryResponse"
        assert type(responses[1]).__name__ == "ErrorResponse"
        assert responses[1].code == "read_only"

    def test_refusal_counter_increments(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        handle = RemoteColumn(LoopbackTransport(replica), "t")
        with pytest.raises(ReadOnlyError):
            handle.merge()
        assert replica.obs.metrics.counter_value(
            "replication.mutations_refused"
        ) == 1


class TestReplicationClient:
    def test_subscribe_restores_snapshot(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        applied = client.sync_once()
        assert applied == 0  # everything arrived via the snapshot
        assert replica.epochs() == primary.epochs()
        assert replica.column_names == primary.column_names

    def test_incremental_entries_apply(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        db.insert(42)
        db.merge()
        applied = client.sync_once()
        assert applied == 2  # insert + merge envelopes
        assert replica.epochs() == primary.epochs()

    def test_ack_publishes_lag_gauge_on_primary(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        gauges = primary.obs.metrics.snapshot()["gauges"]
        assert gauges.get("replication.lag_epochs.r1") == 0
        section = primary._replication_telemetry()
        assert section["role"] == "primary"
        assert "r1" in section["replicas"]

    def test_replica_telemetry_section(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        handle = RemoteColumn(LoopbackTransport(replica), "t")
        section = handle.telemetry(["replication"])["replication"]
        assert section["role"] == "replica"
        assert section["replica_id"] == "r1"
        assert section["lag_entries"] == 0
        assert section["epochs"] == primary.epochs()

    def test_compacted_position_triggers_resubscribe(self, tmp_path):
        primary = ColumnCatalog()
        writer = WalWriter(str(tmp_path), segment_bytes=256, fsync="never")
        primary.bind_wal(writer)
        db = OutsourcedDatabase(
            [1, 2, 3], transport=LoopbackTransport(primary),
            column="t", seed=7,
        )
        replica, client = make_replica(primary)
        client.sync_once()
        stale_seq = client.applied_seq
        for value in range(10, 40):
            db.insert(value)
        db.merge()
        from repro.core.persistence import checkpoint_catalog

        checkpoint_catalog(primary, str(tmp_path), writer)
        from repro.core.wal import wal_start_seq

        assert wal_start_seq(str(tmp_path)) > stale_seq + 1
        client.sync_once()  # reset reply -> fresh snapshot
        assert client.applied_seq >= stale_seq
        assert replica.epochs() == primary.epochs()
        assert replica.obs.metrics.counter_value("replication.resets") == 1

    def test_background_thread_catches_up(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.start()
        try:
            db.insert(42)
            db.merge()
            done = threading.Event()
            for _ in range(200):
                if replica.epochs() == primary.epochs() and len(replica):
                    done.set()
                    break
                threading.Event().wait(0.01)
            assert done.is_set()
        finally:
            client.stop()

    def test_subscribe_requires_wal_on_primary(self, tmp_path):
        primary = ColumnCatalog()  # no WAL bound
        replica, client = make_replica(primary)
        with pytest.raises(ProtocolError):
            client.subscribe()

    def test_apply_epoch_gap_is_a_typed_error(self, tmp_path):
        from repro.net.protocol import request_to_dict

        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        entry = {
            "seq": client.applied_seq + 1,
            "column": "t",
            "epoch": replica.epoch("t") + 5,
            "request": request_to_dict(MergeRequest(column="t")),
        }
        with pytest.raises(PersistenceError) as err:
            replica.apply_wal_entry(entry)
        assert "missing entries" in str(err.value)

    def test_malformed_request_envelope_is_a_typed_error(self, tmp_path):
        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        entry = {
            "seq": client.applied_seq + 1,
            "column": "t",
            "epoch": replica.epoch("t") + 1,
            "request": {"kind": "merge_request", "column": "t"},  # no version
        }
        with pytest.raises(PersistenceError):
            replica.apply_wal_entry(entry)

    def test_stale_entry_is_skipped_idempotently(self, tmp_path):
        from repro.net.protocol import request_to_dict

        primary, db = make_primary(tmp_path)
        replica, client = make_replica(primary)
        client.sync_once()
        entry = {
            "seq": 1,
            "column": "t",
            "epoch": 0,
            "request": request_to_dict(MergeRequest(column="t")),
        }
        epochs_before = replica.epochs()
        assert replica.apply_wal_entry(entry) is False
        assert replica.epochs() == epochs_before


class FailingTransport(Transport):
    """Raises TransportError on every exchange."""

    def exchange(self, frame, retryable=False):
        raise TransportError("wire down")

    def close(self):
        self.negotiated_codec = None


class TestReplicaSet:
    def _topology(self, tmp_path):
        primary = ColumnCatalog()
        primary.bind_wal(WalWriter(str(tmp_path), fsync="never"))
        replica, client = make_replica(primary)
        replica_set = ReplicaSet(
            LoopbackTransport(primary),
            [LoopbackTransport(replica)],
            watermark_interval=0.0,
        )
        db = OutsourcedDatabase(
            [10, 20, 30], transport=replica_set, column="t", seed=9
        )
        return primary, replica, client, replica_set, db

    def test_create_fence_prevents_missing_column_reads(self, tmp_path):
        primary, replica, client, replica_set, db = self._topology(tmp_path)
        assert replica_set.fences() == {"t": 0}
        # Replica has not subscribed yet: the read must divert to the
        # primary, not fail against a replica missing the column.
        assert sorted(db.query(0, 100).values) == [10, 20, 30]
        counters = replica_set._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.reads_primary", 0) >= 1

    def test_reads_route_to_caught_up_replica(self, tmp_path):
        primary, replica, client, replica_set, db = self._topology(tmp_path)
        client.sync_once()
        assert sorted(db.query(0, 100).values) == [10, 20, 30]
        counters = replica_set._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.reads_replica", 0) >= 1

    def test_read_your_writes_pins_to_primary_until_catchup(self, tmp_path):
        primary, replica, client, replica_set, db = self._topology(tmp_path)
        client.sync_once()
        db.insert(15)
        db.merge()
        assert replica_set.fences()["t"] == primary.epoch("t")
        before = replica_set._obs.metrics.snapshot()["counters"].get(
            "replicaset.reads_replica", 0
        )
        assert sorted(db.query(0, 100).values) == [10, 15, 20, 30]
        counters = replica_set._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.reads_replica", 0) == before
        client.sync_once()
        assert sorted(db.query(0, 100).values) == [10, 15, 20, 30]
        counters = replica_set._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.reads_replica", 0) == before + 1

    def test_max_staleness_relaxes_the_fence(self, tmp_path):
        primary = ColumnCatalog()
        primary.bind_wal(WalWriter(str(tmp_path), fsync="never"))
        replica, client = make_replica(primary)
        replica_set = ReplicaSet(
            LoopbackTransport(primary),
            [LoopbackTransport(replica)],
            max_staleness_epochs=100,
            watermark_interval=0.0,
        )
        db = OutsourcedDatabase(
            [10, 20, 30], transport=replica_set, column="t", seed=9
        )
        client.sync_once()
        db.insert(15)
        db.merge()
        # The replica trails by 2 epochs but the bound allows it; its
        # (stale) answer omits the unreplicated insert.
        assert sorted(db.query(0, 100).values) == [10, 20, 30]
        counters = replica_set._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.reads_replica", 0) >= 1

    def test_transport_failure_fails_over_to_primary(self, tmp_path):
        primary = ColumnCatalog()
        primary.bind_wal(WalWriter(str(tmp_path), fsync="never"))
        db = OutsourcedDatabase(
            [10, 20, 30], transport=LoopbackTransport(primary),
            column="t", seed=9,
        )
        # A fresh ReplicaSet holds no fences for "t", so the read is
        # routed to the (dead) replica first and must fall back.
        replica_set = ReplicaSet(
            LoopbackTransport(primary), [FailingTransport()],
            watermark_interval=0.0,
        )
        frame = encode_frame(
            {"kind": "query_request", "column": "t", **_query_payload(db)},
            codec="json",
        )
        reply = decode_frame(replica_set.exchange(frame))
        assert reply["kind"] == "query_response"
        counters = replica_set._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.failovers", 0) == 1

    def test_error_envelope_fails_over_to_primary(self, tmp_path):
        primary = ColumnCatalog()
        primary.bind_wal(WalWriter(str(tmp_path), fsync="never"))
        empty_replica = ColumnCatalog()  # never subscribed: no columns
        empty_replica.set_read_only("primary.example:9045")
        replica_set = ReplicaSet(
            LoopbackTransport(primary),
            [LoopbackTransport(empty_replica)],
            watermark_interval=0.0,
        )
        db = OutsourcedDatabase(
            [10, 20, 30], transport=replica_set, column="t", seed=9
        )
        # A second handle with no fences (fresh ReplicaSet) picks the
        # replica; the unknown-column error there must fall back.
        fresh = ReplicaSet(
            LoopbackTransport(primary),
            [LoopbackTransport(empty_replica)],
            watermark_interval=0.0,
        )
        frame = encode_frame(
            {"kind": "query_request", "column": "t",
             **_query_payload(db)},
            codec="json",
        )
        reply = decode_frame(fresh.exchange(frame))
        assert reply["kind"] == "query_response"
        counters = fresh._obs.metrics.snapshot()["counters"]
        assert counters.get("replicaset.failovers", 0) == 1

    def test_mutations_always_go_to_primary(self, tmp_path):
        primary, replica, client, replica_set, db = self._topology(tmp_path)
        client.sync_once()
        db.insert(40)
        db.merge()
        assert primary.epoch("t") == 2
        counters = replica_set._obs.metrics.snapshot()["counters"]
        # No mutation ever counts as a replica read.
        assert counters.get("replicaset.reads_replica", 0) == 0

    def test_close_closes_all_transports(self, tmp_path):
        primary, replica, client, replica_set, db = self._topology(tmp_path)
        replica_set.close()  # must not raise


def _query_payload(db):
    from repro.net.protocol import request_to_dict

    payload = request_to_dict(
        QueryRequest(column="t", query=db.client.make_query(0, 100))
    )
    payload.pop("kind")
    payload.pop("column")
    return payload
