"""Unit tests for exact integer vector operations."""

import random

import pytest

from repro.linalg.vectors import (
    dot,
    is_zero,
    orthogonal_vector,
    scale,
    vec_add,
    vec_sub,
)


class TestDot:
    def test_basic(self):
        assert dot((1, 2, 3), (4, 5, 6)) == 32

    def test_empty(self):
        assert dot((), ()) == 0

    def test_negative_components(self):
        assert dot((-1, 2), (3, -4)) == -11

    def test_big_integers_exact(self):
        a = (10 ** 40, -(10 ** 39))
        b = (10 ** 41, 10 ** 38)
        assert dot(a, b) == 10 ** 81 - 10 ** 77

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dot((1, 2), (1, 2, 3))


class TestArithmetic:
    def test_scale(self):
        assert scale((1, -2, 3), -3) == (-3, 6, -9)

    def test_scale_zero(self):
        assert scale((5, 7), 0) == (0, 0)

    def test_add(self):
        assert vec_add((1, 2), (3, 4)) == (4, 6)

    def test_sub(self):
        assert vec_sub((1, 2), (3, 5)) == (-2, -3)

    def test_add_length_mismatch(self):
        with pytest.raises(ValueError):
            vec_add((1,), (1, 2))

    def test_sub_length_mismatch(self):
        with pytest.raises(ValueError):
            vec_sub((1,), (1, 2))

    def test_is_zero(self):
        assert is_zero((0, 0, 0))
        assert not is_zero((0, 1, 0))
        assert is_zero(())


class TestOrthogonalVector:
    def test_orthogonality(self):
        rng = random.Random(0)
        for _ in range(50):
            dim = rng.randint(2, 8)
            u = tuple(rng.randint(-100, 100) for _ in range(dim))
            if is_zero(u):
                continue
            n = orthogonal_vector(u, rng)
            assert dot(u, n) == 0
            assert not is_zero(n)

    def test_dimension_one_returns_zero_vector(self):
        rng = random.Random(0)
        assert orthogonal_vector((5,), rng) == (0,)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            orthogonal_vector((0, 0), random.Random(0))

    def test_fallback_on_exhausted_attempts(self):
        # With max_attempts=0 the projection loop never runs, so the
        # deterministic coordinate-swap fallback must fire.
        rng = random.Random(0)
        u = (3, 5)
        n = orthogonal_vector(u, rng, max_attempts=0)
        assert dot(u, n) == 0
        assert not is_zero(n)

    def test_respects_magnitude(self):
        rng = random.Random(3)
        u = (1, 2, 3)
        n = orthogonal_vector(u, rng, magnitude=4)
        # Components are projections of draws in [-4, 4]: bounded by
        # (u.u)*4 + |u.w|*|u| <= 14*4 + 24*3.
        assert all(abs(x) <= 14 * 4 + 24 * 3 for x in n)
