"""Unit tests for the exact rational solver."""

from fractions import Fraction

import pytest

from repro.linalg.solve import solve_affine


def F(x):
    return Fraction(x)


class TestSolveAffine:
    def test_unique_solution(self):
        particular, basis = solve_affine(
            [[F(2), F(0)], [F(0), F(3)]], [F(4), F(9)]
        )
        assert particular == [F(2), F(3)]
        assert basis == []

    def test_inconsistent_returns_none(self):
        assert solve_affine([[F(1), F(1)], [F(1), F(1)]], [F(1), F(2)]) is None

    def test_underdetermined_nullspace(self):
        particular, basis = solve_affine([[F(1), F(1), F(0)]], [F(2)])
        # Particular solves the equation.
        assert particular[0] + particular[1] == 2
        assert len(basis) == 2
        for vector in basis:
            assert vector[0] + vector[1] == 0

    def test_nullspace_vectors_satisfy_homogeneous_system(self):
        coefficients = [
            [F(1), F(2), F(3), F(4)],
            [F(0), F(1), F(1), F(0)],
        ]
        particular, basis = solve_affine(coefficients, [F(5), F(1)])
        for vector in basis:
            for row in coefficients:
                assert sum(c * x for c, x in zip(row, vector)) == 0
        for row, rhs in zip(coefficients, [F(5), F(1)]):
            assert sum(c * x for c, x in zip(row, particular)) == rhs

    def test_homogeneous_system(self):
        particular, basis = solve_affine(
            [[F(1), F(-1)]], [F(0)]
        )
        assert particular == [F(0), F(0)]
        assert len(basis) == 1
        assert basis[0][0] == basis[0][1]

    def test_redundant_rows_are_fine(self):
        particular, basis = solve_affine(
            [[F(1), F(1)], [F(2), F(2)]], [F(3), F(6)]
        )
        assert particular[0] + particular[1] == 3
        assert len(basis) == 1

    def test_zero_columns_become_free(self):
        particular, basis = solve_affine([[F(0), F(1)]], [F(7)])
        assert particular == [F(0), F(7)]
        assert len(basis) == 1
        assert basis[0][1] == 0

    def test_exact_fractions(self):
        particular, basis = solve_affine([[F(3)]], [F(1)])
        assert particular == [Fraction(1, 3)]
        assert basis == []

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            solve_affine([[F(1), F(2)], [F(1)]], [F(0), F(0)])

    def test_more_rows_than_unknowns_consistent(self):
        particular, basis = solve_affine(
            [[F(1)], [F(2)], [F(3)]], [F(2), F(4), F(6)]
        )
        assert particular == [F(2)]
        assert basis == []
