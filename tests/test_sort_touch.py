"""Tests for the sort-on-first-touch hybrid cracking variant."""

import random

import numpy as np
import pytest

from repro.analysis.leakage import resolved_order_fraction
from repro.cracking.index import AdaptiveIndex
from repro.cracking.sort_touch import SortTouchAdaptiveIndex

from conftest import reference_positions

VALUES = np.random.default_rng(71).permutation(3000).astype(np.int64)


class TestCorrectness:
    def test_matches_reference(self):
        index = SortTouchAdaptiveIndex(VALUES, sort_threshold=256)
        rng = random.Random(0)
        for _ in range(200):
            low = rng.randrange(0, 2900)
            high = low + rng.randrange(0, 150)
            low_inclusive = rng.random() < 0.5
            high_inclusive = rng.random() < 0.5
            got = np.sort(
                index.query(low, high, low_inclusive, high_inclusive)
            )
            expected = reference_positions(
                VALUES, low, high, low_inclusive, high_inclusive
            )
            assert np.array_equal(got, expected)
        index.check_invariants()

    def test_one_sided(self):
        index = SortTouchAdaptiveIndex(VALUES, sort_threshold=256)
        got = np.sort(index.query(high=1000))
        assert np.array_equal(got, reference_positions(VALUES, -10, 1000))

    def test_duplicates(self):
        index = SortTouchAdaptiveIndex([7, 3, 7, 1, 7], sort_threshold=8)
        assert len(index.query_point(7)) == 3
        index.check_invariants()

    def test_whole_column_threshold_sorts_everything_on_first_query(self):
        index = SortTouchAdaptiveIndex(VALUES, sort_threshold=len(VALUES))
        index.query(100, 200)
        assert index.sorted_row_count == len(VALUES)
        assert np.all(np.diff(index.column.values) >= 0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SortTouchAdaptiveIndex(VALUES, sort_threshold=1)


class TestHybridBehaviour:
    def test_sorted_pieces_answer_without_movement(self):
        index = SortTouchAdaptiveIndex(VALUES, sort_threshold=4096)
        index.query(500, 600)       # sorts everything (one piece <= 4096)
        before = index.column.values.copy()
        index.query(700, 800)       # resolved by binary search
        assert np.array_equal(index.column.values, before)
        assert index.stats_log[1].cracks == 0
        assert index.stats_log[1].cracked_rows == 0

    def test_big_pieces_still_crack(self):
        index = SortTouchAdaptiveIndex(VALUES, sort_threshold=64)
        index.query(500, 600)
        assert index.stats_log[0].cracks >= 1
        assert index.sorted_row_count <= 2 * 64

    def test_sorted_ranges_refine(self):
        index = SortTouchAdaptiveIndex(VALUES, sort_threshold=len(VALUES))
        index.query(500, 600)
        index.query(550, 560)  # inside the sorted range: binary search
        index.check_invariants()
        assert index.sorted_row_count == len(VALUES)

    def test_converges_faster_than_plain_cracking_in_hot_region(self):
        rng = random.Random(1)
        hot_queries = [
            (rng.randrange(1000, 1900), rng.randrange(0, 50))
            for _ in range(60)
        ]
        hybrid = SortTouchAdaptiveIndex(VALUES, sort_threshold=1024)
        plain = AdaptiveIndex(VALUES)
        for low, span in hot_queries:
            hybrid.query(low, low + span)
            plain.query(low, low + span)
        hybrid_moved = sum(s.cracked_rows for s in hybrid.stats_log[3:])
        plain_moved = sum(s.cracked_rows for s in plain.stats_log[3:])
        assert hybrid_moved < plain_moved

    def test_leaks_more_order_than_plain(self):
        # The security trade the paper's design avoids: sorting pieces
        # reveals their full internal order.
        rng = random.Random(2)
        queries = [(rng.randrange(0, 2900), 30) for _ in range(40)]
        hybrid = SortTouchAdaptiveIndex(VALUES, sort_threshold=len(VALUES))
        plain = AdaptiveIndex(VALUES, min_piece_size=128)
        for low, span in queries:
            hybrid.query(low, low + span)
            plain.query(low, low + span)
        # Sorted intervals are fully ordered -> count them as singleton
        # pieces for the leakage measure.
        hybrid_boundaries = set(hybrid.piece_boundaries())
        for lo, hi in hybrid._sorted_ranges:
            hybrid_boundaries.update(range(lo, hi + 1))
        hybrid_leak = resolved_order_fraction(
            sorted(hybrid_boundaries), len(VALUES)
        )
        plain_leak = resolved_order_fraction(
            plain.piece_boundaries(), len(VALUES)
        )
        assert hybrid_leak > plain_leak
        assert hybrid_leak == 1.0  # whole column got sorted on touch
