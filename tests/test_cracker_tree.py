"""Unit tests for find_piece / add_crack over the cracker AVL tree."""

import pytest

from repro.cracking.avl import AVLTree
from repro.cracking.cracker_tree import add_crack, find_piece


def int_cmp(a, b):
    return (a > b) - (a < b)


@pytest.fixture()
def tree():
    return AVLTree(int_cmp)


class TestFindPiece:
    def test_empty_tree_whole_column(self, tree):
        assert find_piece(tree, 42, 1000) == (0, 1000)

    def test_between_two_bounds(self, tree):
        tree.insert(10, 100)
        tree.insert(20, 200)
        assert find_piece(tree, 15, 1000) == (100, 200)

    def test_below_all(self, tree):
        tree.insert(10, 100)
        assert find_piece(tree, 5, 1000) == (0, 100)

    def test_above_all(self, tree):
        tree.insert(10, 100)
        assert find_piece(tree, 50, 1000) == (100, 1000)

    def test_exact_match_collapses(self, tree):
        tree.insert(10, 100)
        assert find_piece(tree, 10, 1000) == (100, 100)

    def test_many_bounds(self, tree):
        for bound, position in [(10, 1), (20, 2), (30, 3), (40, 4)]:
            tree.insert(bound, position * 100)
        assert find_piece(tree, 25, 1000) == (200, 300)
        assert find_piece(tree, 35, 1000) == (300, 400)
        assert find_piece(tree, 5, 1000) == (0, 100)
        assert find_piece(tree, 45, 1000) == (400, 1000)


class TestAddCrack:
    def test_boundary_positions_not_stored(self, tree):
        assert add_crack(tree, 10, 0, 1000) is None
        assert add_crack(tree, 10, 1000, 1000) is None
        assert len(tree) == 0

    def test_inserts_fresh_node(self, tree):
        node = add_crack(tree, 10, 100, 1000)
        assert node is not None
        assert tree.find(10) is node
        assert node.position == 100

    def test_existing_key_position_refreshed(self, tree):
        add_crack(tree, 10, 100, 1000)
        node = add_crack(tree, 10, 120, 1000)
        assert len(tree) == 1
        assert node.position == 120

    def test_neighbour_same_position_reused(self, tree):
        # Case 1/2: no values between bounds 10 and 12, so the crack
        # position is identical — no new node is added.
        add_crack(tree, 10, 100, 1000)
        node = add_crack(tree, 12, 100, 1000)
        assert len(tree) == 1
        assert node.key == 10

    def test_neighbour_reuse_from_above(self, tree):
        add_crack(tree, 12, 100, 1000)
        node = add_crack(tree, 10, 100, 1000)
        assert len(tree) == 1
        assert node.key == 12

    def test_distinct_positions_create_nodes(self, tree):
        add_crack(tree, 10, 100, 1000)
        add_crack(tree, 20, 200, 1000)
        add_crack(tree, 15, 150, 1000)
        assert len(tree) == 3
        assert find_piece(tree, 12, 1000) == (100, 150)

    def test_tree_stays_balanced(self, tree):
        for i in range(1, 200):
            add_crack(tree, i, i, 1000)
        tree.check_invariants()
        assert tree.height() <= 12
