"""Unit tests for the plaintext baselines (full scan, sort-once)."""

import random

import numpy as np
import pytest

from repro.cracking.baselines import FullScanIndex, FullSortIndex
from repro.errors import QueryError

from conftest import reference_positions


@pytest.mark.parametrize("engine_cls", [FullScanIndex, FullSortIndex])
class TestBaselineCorrectness:
    def test_matches_reference(self, engine_cls, small_values):
        engine = engine_cls(small_values)
        rng = random.Random(0)
        for _ in range(100):
            low = rng.randrange(0, 480)
            high = low + rng.randrange(0, 60)
            low_inclusive = rng.random() < 0.5
            high_inclusive = rng.random() < 0.5
            result = np.sort(
                engine.query(low, high, low_inclusive, high_inclusive)
            )
            expected = reference_positions(
                small_values, low, high, low_inclusive, high_inclusive
            )
            assert np.array_equal(result, expected)

    def test_point_query(self, engine_cls, small_values):
        engine = engine_cls(small_values)
        target = int(small_values[3])
        assert engine.query_point(target).tolist() == [3]

    def test_inverted_rejected(self, engine_cls, small_values):
        with pytest.raises(QueryError):
            engine_cls(small_values).query(10, 0)

    def test_duplicates(self, engine_cls):
        engine = engine_cls([4, 4, 1, 4])
        assert sorted(engine.query_point(4).tolist()) == [0, 1, 3]

    def test_stats(self, engine_cls, small_values):
        engine = engine_cls(small_values)
        engine.query(0, 100)
        assert len(engine.stats_log) == 1
        assert engine.stats_log[0].result_count == 101


class TestSortSpecifics:
    def test_build_cost_recorded(self, small_values):
        engine = FullSortIndex(small_values)
        assert engine.build_seconds >= 0

    def test_queries_touch_no_data(self, small_values):
        engine = FullSortIndex(small_values)
        engine.query(0, 250)
        # Binary searching is orders faster than the build; this just
        # pins the stats channel (search only, no crack/scan).
        stats = engine.stats_log[0]
        assert stats.crack_seconds == 0
        assert stats.scan_seconds == 0
        assert stats.search_seconds > 0
