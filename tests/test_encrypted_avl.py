"""Unit tests for the encrypted AVL key order and the paper-literal
``findpiece`` / ``addCrack`` transcriptions (Section 4.3)."""

import random

import pytest

from repro.cracking.avl import AVLTree
from repro.cracking.cracker_tree import add_crack, find_piece
from repro.core.encrypted_avl import add_crack_encrypted, find_piece_encrypted
from repro.core.query import (
    EncryptedBound,
    EncryptedBoundKey,
    compare_encrypted_keys,
)


def make_key(encryptor, bound, inclusive=False):
    return EncryptedBoundKey(
        EncryptedBound(
            eb=encryptor.encrypt_bound(bound),
            ev=encryptor.encrypt_value(bound),
        ),
        inclusive=inclusive,
    )


class TestEncryptedKeyOrder:
    def test_orders_by_plaintext(self, encryptor):
        small = make_key(encryptor, 10)
        large = make_key(encryptor, 20)
        assert compare_encrypted_keys(small, large) < 0
        assert compare_encrypted_keys(large, small) > 0

    def test_equal_bounds_tie_break_on_flavour(self, encryptor):
        strict = make_key(encryptor, 10, inclusive=False)
        inclusive = make_key(encryptor, 10, inclusive=True)
        assert compare_encrypted_keys(strict, inclusive) < 0
        assert compare_encrypted_keys(inclusive, strict) > 0
        assert compare_encrypted_keys(strict, strict) == 0

    def test_fresh_encryptions_of_same_bound_compare_equal(self, encryptor):
        first = make_key(encryptor, 10)
        second = make_key(encryptor, 10)
        assert compare_encrypted_keys(first, second) == 0

    def test_total_order_on_random_bounds(self, encryptor, rng):
        bounds = rng.sample(range(10 ** 6), 40)
        keys = [make_key(encryptor, b) for b in bounds]
        tree = AVLTree(compare_encrypted_keys)
        for key, bound in zip(keys, bounds):
            tree.insert(key, bound)
        in_order = [node.position for node in tree.in_order()]
        assert in_order == sorted(bounds)
        tree.check_invariants()


class TestPaperLiteralEquivalence:
    """The pseudocode transcriptions must agree with the generic
    floor/ceiling helpers on every reachable state."""

    def build_random_tree(self, encryptor, rng, count=30):
        tree = AVLTree(compare_encrypted_keys)
        bounds = rng.sample(range(0, 100000, 7), count)
        for bound in bounds:
            # Positions: any monotone-in-bound assignment works for
            # findpiece; use the bound itself.
            add_crack(tree, make_key(encryptor, bound), bound, 10 ** 6)
        return tree, sorted(bounds)

    def test_find_piece_agrees(self, encryptor, rng):
        tree, bounds = self.build_random_tree(encryptor, rng)
        for _ in range(60):
            probe = rng.randrange(0, 100000)
            if probe in bounds:
                continue
            key = make_key(encryptor, probe)
            assert find_piece_encrypted(tree, key, 10 ** 6) == find_piece(
                tree, key, 10 ** 6
            )

    def test_find_piece_empty_tree(self, encryptor):
        tree = AVLTree(compare_encrypted_keys)
        key = make_key(encryptor, 5)
        assert find_piece_encrypted(tree, key, 100) == (0, 100)

    def test_find_piece_case1_beyond_max(self, encryptor, rng):
        tree, bounds = self.build_random_tree(encryptor, rng, count=10)
        key = make_key(encryptor, max(bounds) + 1)
        pos_lo, pos_hi = find_piece_encrypted(tree, key, 10 ** 6)
        assert pos_lo == max(bounds)
        assert pos_hi == 10 ** 6

    def test_find_piece_case2_below_min(self, encryptor, rng):
        tree, bounds = self.build_random_tree(encryptor, rng, count=10)
        key = make_key(encryptor, min(bounds) - 1)
        assert find_piece_encrypted(tree, key, 10 ** 6) == (0, min(bounds))

    def test_add_crack_agrees(self, encryptor, rng):
        generic_tree = AVLTree(compare_encrypted_keys)
        paper_tree = AVLTree(compare_encrypted_keys)
        total = 10 ** 6
        for _ in range(60):
            bound = rng.randrange(0, 100000)
            position = bound  # monotone
            key_generic = make_key(encryptor, bound)
            key_paper = make_key(encryptor, bound)
            add_crack(generic_tree, key_generic, position, total)
            add_crack_encrypted(paper_tree, key_paper, position, total)
            assert len(generic_tree) == len(paper_tree)
            assert [n.position for n in generic_tree.in_order()] == [
                n.position for n in paper_tree.in_order()
            ]
        paper_tree.check_invariants()

    def test_add_crack_boundary_skipped(self, encryptor):
        tree = AVLTree(compare_encrypted_keys)
        assert add_crack_encrypted(tree, make_key(encryptor, 5), 0, 100) is None
        assert (
            add_crack_encrypted(tree, make_key(encryptor, 5), 100, 100) is None
        )
        assert len(tree) == 0

    def test_add_crack_duplicate_position_reused(self, encryptor):
        tree = AVLTree(compare_encrypted_keys)
        add_crack_encrypted(tree, make_key(encryptor, 10), 50, 100)
        node = add_crack_encrypted(tree, make_key(encryptor, 11), 50, 100)
        assert len(tree) == 1
        assert node.position == 50

    def test_add_crack_exact_key_updates(self, encryptor):
        tree = AVLTree(compare_encrypted_keys)
        add_crack_encrypted(tree, make_key(encryptor, 10), 50, 100)
        node = add_crack_encrypted(tree, make_key(encryptor, 10), 60, 100)
        assert len(tree) == 1
        assert node.position == 60
