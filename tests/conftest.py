"""Shared fixtures.

Expensive artefacts (keys, encryptors, encrypted sessions) are module-
or session-scoped; tests must not mutate them unless the fixture says
otherwise.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.crypto.key import generate_key
from repro.crypto.scheme import Encryptor


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-cases",
        action="store",
        type=int,
        default=500,
        help="round-trip cases per envelope type in the codec fuzz "
        "tests (tests/test_net_fuzz.py); raising it to 5000+ also "
        "enables the deep nightly-scale fuzz test",
    )


@pytest.fixture(scope="session")
def fuzz_cases(request):
    """How many fuzz cases per envelope type (``--fuzz-cases``)."""
    return int(request.config.getoption("--fuzz-cases"))


@pytest.fixture(scope="session")
def key4():
    """Default-size key (paper default l = 4)."""
    return generate_key(length=4, seed=20160626)


@pytest.fixture(scope="session")
def key8():
    """A larger key for size-dependent behaviour."""
    return generate_key(length=8, seed=4242)


@pytest.fixture()
def encryptor(key4):
    """A fresh encryptor over the shared default key."""
    return Encryptor(key4, seed=7)


@pytest.fixture()
def encryptor8(key8):
    """A fresh encryptor over the shared l=8 key."""
    return Encryptor(key8, seed=8)


@pytest.fixture()
def rng():
    """Deterministic python RNG for test-local sampling."""
    return random.Random(1234)


@pytest.fixture()
def small_values():
    """A shuffled permutation of 0..499 (unique, easy to reason about)."""
    values = np.arange(500, dtype=np.int64)
    np.random.default_rng(99).shuffle(values)
    return values


def reference_positions(values, low, high, low_inclusive=True, high_inclusive=True):
    """Ground-truth qualifying base positions by brute force."""
    values = np.asarray(values)
    mask = values >= low if low_inclusive else values > low
    mask &= values <= high if high_inclusive else values < high
    return np.flatnonzero(mask)
