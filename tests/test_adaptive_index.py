"""Unit tests for the plaintext adaptive (cracking) index."""

import random

import numpy as np
import pytest

from repro.cracking.index import AdaptiveIndex
from repro.errors import QueryError

from conftest import reference_positions


@pytest.fixture()
def index(small_values):
    return AdaptiveIndex(small_values)


class TestQueryCorrectness:
    def test_single_query(self, index, small_values):
        result = np.sort(index.query(100, 200))
        assert np.array_equal(result, reference_positions(small_values, 100, 200))

    def test_inclusive_exclusive_combinations(self, index, small_values):
        for low_inclusive in (True, False):
            for high_inclusive in (True, False):
                result = np.sort(
                    index.query(100, 200, low_inclusive, high_inclusive)
                )
                expected = reference_positions(
                    small_values, 100, 200, low_inclusive, high_inclusive
                )
                assert np.array_equal(result, expected)

    def test_random_sequence(self, index, small_values):
        rng = random.Random(0)
        for _ in range(300):
            low = rng.randrange(0, 480)
            high = low + rng.randrange(0, 60)
            result = np.sort(index.query(low, high))
            assert np.array_equal(
                result, reference_positions(small_values, low, high)
            )
        index.check_invariants()

    def test_point_query(self, index, small_values):
        target = int(small_values[17])
        result = index.query_point(target)
        assert result.tolist() == [np.flatnonzero(small_values == target)[0]]

    def test_point_query_missing_value(self, index):
        assert len(index.query_point(10 ** 9)) == 0

    def test_whole_domain(self, index, small_values):
        result = index.query(-(10 ** 9), 10 ** 9)
        assert len(result) == len(small_values)

    def test_empty_range(self, index):
        assert len(index.query(5, 5, False, True)) == 0
        assert len(index.query(5, 5, True, False)) == 0

    def test_inverted_range_rejected(self, index):
        with pytest.raises(QueryError):
            index.query(10, 5)

    def test_repeated_query_same_result(self, index, small_values):
        first = np.sort(index.query(50, 150))
        second = np.sort(index.query(50, 150))
        assert np.array_equal(first, second)

    def test_duplicates_in_data(self):
        values = np.array([5, 5, 5, 1, 9, 5, 9, 1])
        index = AdaptiveIndex(values)
        assert len(index.query_point(5)) == 4
        assert len(index.query(5, 9, False, False)) == 0
        assert len(index.query(1, 5)) == 6
        index.check_invariants()

    def test_empty_column(self):
        index = AdaptiveIndex([])
        assert len(index.query(0, 10)) == 0

    def test_single_row_column(self):
        index = AdaptiveIndex([7])
        assert index.query(0, 10).tolist() == [0]
        assert len(index.query(8, 10)) == 0
        index.check_invariants()


class TestAdaptiveBehaviour:
    def test_tree_grows_with_queries(self, index):
        assert len(index.tree) == 0
        index.query(100, 200)
        assert len(index.tree) >= 1
        index.query(300, 350)
        assert len(index.tree) >= 3

    def test_exact_repeat_does_not_crack(self, index):
        index.query(100, 200)
        cracks_before = sum(s.cracks for s in index.stats_log)
        index.query(100, 200)
        assert sum(s.cracks for s in index.stats_log) == cracks_before

    def test_at_most_two_cracks_per_query(self, index):
        rng = random.Random(1)
        for _ in range(100):
            low = rng.randrange(0, 480)
            index.query(low, low + 10)
        assert all(s.cracks <= 2 for s in index.stats_log)

    def test_crack_cost_decreases(self, index):
        rng = random.Random(2)
        for _ in range(200):
            low = rng.randrange(0, 480)
            index.query(low, low + 5)
        touched = [s.cracked_rows for s in index.stats_log]
        # The first query touches the whole column; late queries touch
        # far less.
        assert touched[0] >= len(index)
        assert np.mean(touched[-50:]) < np.mean(touched[:10]) / 5

    def test_piece_boundaries_sorted(self, index):
        rng = random.Random(3)
        for _ in range(50):
            low = rng.randrange(0, 480)
            index.query(low, low + 20)
        boundaries = index.piece_boundaries()
        assert boundaries == sorted(boundaries)
        assert boundaries[0] == 0 and boundaries[-1] == len(index)


class TestThreshold:
    def test_threshold_limits_tree_growth(self, small_values):
        unlimited = AdaptiveIndex(small_values, min_piece_size=1)
        limited = AdaptiveIndex(small_values, min_piece_size=100)
        rng = random.Random(4)
        queries = [
            (rng.randrange(0, 480), rng.randrange(0, 480)) for _ in range(150)
        ]
        for low, high in queries:
            low, high = min(low, high), max(low, high)
            a = np.sort(unlimited.query(low, high))
            b = np.sort(limited.query(low, high))
            assert np.array_equal(a, b)
        assert len(limited.tree) < len(unlimited.tree)
        limited.check_invariants()

    def test_threshold_equal_column_size_never_cracks(self, small_values):
        index = AdaptiveIndex(small_values, min_piece_size=len(small_values))
        index.query(10, 400)
        assert len(index.tree) == 0
        assert all(s.cracks == 0 for s in index.stats_log)


class TestThreeWay:
    def test_three_way_correct(self, small_values):
        index = AdaptiveIndex(small_values, use_three_way=True)
        rng = random.Random(5)
        for _ in range(150):
            low = rng.randrange(0, 480)
            high = low + rng.randrange(0, 50)
            result = np.sort(index.query(low, high))
            assert np.array_equal(
                result, reference_positions(small_values, low, high)
            )
        index.check_invariants()

    def test_first_query_single_crack(self, small_values):
        index = AdaptiveIndex(small_values, use_three_way=True)
        index.query(100, 200)
        assert index.stats_log[0].cracks == 1
        assert len(index.tree) == 2


class TestStats:
    def test_stats_recorded(self, index):
        index.query(10, 20)
        assert len(index.stats_log) == 1
        stats = index.stats_log[0]
        assert stats.crack_seconds >= 0
        assert stats.total_seconds >= stats.crack_seconds
        assert stats.result_count == len(index.query(10, 20))

    def test_stats_disabled(self, small_values):
        index = AdaptiveIndex(small_values, record_stats=False)
        index.query(10, 20)
        assert index.stats_log == []
